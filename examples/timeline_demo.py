#!/usr/bin/env python3
"""Fig. 1 / Fig. 3 demo: what one write's critical path looks like
without BMOs, with serialized BMOs, with parallelized sub-operations,
and with Janus pre-execution.

Run:  python examples/timeline_demo.py
"""

from repro.bmo import build_pipeline
from repro.bmo.base import ExternalInput
from repro.common.config import default_config


def main():
    cfg = default_config()
    pipeline = build_pipeline(cfg)
    graph = pipeline.graph
    units = cfg.janus.bmo_units

    print("Fig. 1: the write critical path")
    print(f"  cache writeback only (no BMOs): "
          f"{cfg.cache.writeback_ns:.0f} ns")
    print(f"  + serialized BMOs: "
          f"{cfg.cache.writeback_ns + pipeline.serial_latency():.0f} ns "
          f"({pipeline.serial_latency() / cfg.cache.writeback_ns:.0f}x "
          f"extra)")
    print()

    print("Fig. 2/6: decomposition and classification")
    print(pipeline.describe())
    print()

    serial = graph.serial_schedule(pipeline.bmo_order)
    print(f"Fig. 3a — serialized ({serial.makespan:.0f} ns):")
    print(serial.render(width=48))
    print()

    parallel = graph.parallel_schedule(units=units)
    print(f"Fig. 3b — parallelized on {units} units "
          f"({parallel.makespan:.0f} ns):")
    print(parallel.render(width=48))
    print()

    addr_only = graph.runnable_with(frozenset({ExternalInput.ADDR}))
    data_only = graph.runnable_with(frozenset({ExternalInput.DATA}))
    both = graph.runnable_with(
        frozenset({ExternalInput.ADDR, ExternalInput.DATA}))
    print("Fig. 3c — pre-execution coverage:")
    print(f"  with the address alone : {sorted(addr_only)}")
    print(f"  with the data alone    : {sorted(data_only)}")
    print(f"  with both              : all {len(both)} sub-ops -> "
          f"0 ns left on the critical path")


if __name__ == "__main__":
    main()
