#!/usr/bin/env python3
"""Extending the framework with a new BMO.

The paper's software interface is deliberately generic: programs only
expose the address and data of future writes, so the hardware BMO set
can change without touching the software (§3.2 requirement 3).  This
example adds an ORAM-flavoured "address scrambling" BMO, composes it
with the standard pipeline, and shows that (a) the dependency analysis
classifies the new sub-operations automatically and (b) existing
pre-execution requests cover them with no program changes.

Run:  python examples/custom_bmo.py
"""

import hashlib

from repro.bmo import BmoPipeline, DedupBmo, EncryptionBmo
from repro.bmo.base import ADDR, BackendOperation, BmoContext, SubOp
from repro.bmo.dedup import DedupTable
from repro.bmo.executor import BmoExecutor
from repro.common.config import default_config
from repro.sim import Resource, Simulator


class ScramblingBmo(BackendOperation):
    """Toy ORAM-style location scrambling (Table 1 lists ORAM at
    ~1000 ns — we model a lightweight one-hop variant)."""

    name = "scrambling"

    def __init__(self, latency_ns: float = 120.0, regions: int = 1 << 20):
        super().__init__()
        self.latency_ns = latency_ns
        self.regions = regions
        self.epoch = 0

    def _s1(self, ctx: BmoContext) -> None:
        digest = hashlib.sha1(
            ctx.addr.to_bytes(8, "little")
            + self.epoch.to_bytes(4, "little")).digest()
        slot = int.from_bytes(digest[:4], "little") % self.regions
        ctx.values["scrambled_slot"] = slot

    def subops(self):
        return (
            SubOp("S1", self.name, self.latency_ns,
                  external=frozenset({ADDR}), run=self._s1),
        )

    def commit(self, ctx: BmoContext) -> None:
        pass

    def stale_subops(self, ctx: BmoContext) -> set:
        return set()


def main():
    cfg = default_config()
    scrambler = ScramblingBmo()
    pipeline = BmoPipeline([
        scrambler,
        DedupBmo(cfg.bmo_latencies, cfg.dedup,
                 table=DedupTable(shadow_base=1 << 30),
                 with_encryption=True),
        EncryptionBmo(cfg.bmo_latencies, with_dedup=True),
    ])

    print("pipeline with a custom BMO:")
    print(pipeline.describe())
    print()

    labels = pipeline.classification()
    print(f"S1 classified automatically as: {labels['S1']!r} "
          "(pre-executable with the address alone)")

    # The generic interface needs no change: an address-only
    # pre-execution covers S1 together with E1-E2.
    sim = Simulator()
    executor = BmoExecutor(sim, pipeline,
                           Resource(sim, capacity=4, name="units"))
    ctx = pipeline.make_context(addr=0x4000)  # address known early
    sim.process(executor.run_pre_execution(ctx))
    sim.run()
    print(f"address-only pre-execution completed: "
          f"{sorted(ctx.completed)}")
    assert "S1" in ctx.completed
    assert "scrambled_slot" in ctx.values

    # When the write arrives, only the data-dependent work remains.
    ctx.data = bytes(64)
    remaining = [name for name in pipeline.all_subops
                 if name not in ctx.completed]
    print(f"remaining at write time: {remaining}")


if __name__ == "__main__":
    main()
