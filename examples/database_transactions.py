#!/usr/bin/env python3
"""OLTP-style evaluation: TATP and TPC-C kernels across all four
design points (serialized / parallelized / Janus / ideal), printing a
per-workload speedup table like the paper's Fig. 9/10.

Run:  python examples/database_transactions.py
"""

from repro.harness.report import Table
from repro.harness.runner import (
    fully_pre_executed_fraction,
    run_point,
    speedup_over,
)
from repro.workloads import WorkloadParams


def main():
    params = WorkloadParams(n_items=32, value_size=64,
                            n_transactions=40)
    table = Table(
        "OLTP kernels: speedup over the serialized design",
        ["workload", "parallel", "janus(manual)", "janus(auto)",
         "ideal", "fully pre-exec"])
    for name in ("tatp", "tpcc"):
        serialized = run_point(name, mode="serialized", params=params)
        rows = {}
        for mode, variant in (("parallel", None),
                              ("janus", "manual"),
                              ("janus", "auto"),
                              ("ideal", None)):
            result = run_point(name, mode=mode, variant=variant,
                               params=params)
            rows[(mode, variant)] = result
        janus_manual = rows[("janus", "manual")]
        table.add_row(
            name,
            speedup_over(serialized, rows[("parallel", None)]),
            speedup_over(serialized, janus_manual),
            speedup_over(serialized, rows[("janus", "auto")]),
            speedup_over(serialized, rows[("ideal", None)]),
            f"{fully_pre_executed_fraction(janus_manual) * 100:.0f}%",
        )
        throughput = (janus_manual.transactions
                      / (janus_manual.elapsed_ns / 1e9))
        print(f"{name}: janus throughput "
              f"{throughput / 1e6:.2f} M txn/s "
              f"({janus_manual.ns_per_transaction:.0f} ns/txn)")
    print()
    print(table.render())


if __name__ == "__main__":
    main()
