#!/usr/bin/env python3
"""Where does a write's critical-path latency go?

Attaches the per-write tracer to identical B-Tree runs under each
design point and prints the Fig. 1-style phase breakdown (cache
transfer / BMOs / persist), plus a CSV sample for offline analysis.

Run:  python examples/write_path_analysis.py
"""

from repro.common.config import default_config
from repro.core import NvmSystem
from repro.harness.report import Table
from repro.harness.trace import WriteTracer
from repro.workloads import WorkloadParams, make_workload


def traced_run(mode, variant):
    system = NvmSystem(default_config(mode=mode))
    tracer = WriteTracer.attach(system)
    workload = make_workload(
        "btree", system, system.cores[0],
        WorkloadParams(n_items=16, value_size=64, n_transactions=20),
        variant=variant)
    system.run_programs([workload.run()])
    return tracer


def main():
    table = Table(
        "critical-path phase breakdown per write (mean ns)",
        ["design", "transfer", "BMO", "persist", "total",
         "zero-BMO writes"])
    tracers = {}
    for mode, variant in (("serialized", "baseline"),
                          ("parallel", "baseline"),
                          ("janus", "manual"),
                          ("ideal", "baseline")):
        tracer = traced_run(mode, variant)
        tracers[mode] = tracer
        means = tracer.phase_means()
        table.add_row(mode, means["transfer"], means["bmo"],
                      means["persist"], means["total"],
                      f"{tracer.zero_bmo_fraction() * 100:.0f}%")
    print(table.render())
    print()
    print("sample of the janus trace (CSV):")
    csv_text = tracers["janus"].to_csv()
    for line in csv_text.splitlines()[:6]:
        print("  " + line)
    print(f"  ... {len(tracers['janus'])} rows total")


if __name__ == "__main__":
    main()
