#!/usr/bin/env python3
"""The §6 tooling in action: instrumentation plans, static window
estimation, and runtime misuse detection.

The paper's future-work section sketches tools that (1) estimate
whether a pre-execution window suffices and (2) detect interface
misuse.  Both are implemented here; this example shows them catching
a deliberately buggy program.

Run:  python examples/instrumentation_tools.py
"""

from repro.bmo import build_pipeline
from repro.common.config import default_config
from repro.compiler.window import render_report
from repro.core import NvmSystem
from repro.janus.misuse import diagnose
from repro.workloads import WORKLOADS
from repro.workloads.registry import plan_for


def buggy_program(system):
    """Violates all three §4.4 guidelines at once."""
    core = system.cores[0]
    addr = system.heap.alloc_line(64)
    obj = core.api.pre_init()

    # Guideline 1 violation: pre-execute one value, write another.
    yield from core.api.pre_both(obj, addr, b"\x01" * 64)
    yield from core.compute(4000)
    yield from core.store(addr, b"\x02" * 64)
    yield from core.persist(addr, 64)

    # Guideline 3 violation: no window at all.
    rushed = core.api.pre_init()
    yield from core.api.pre_both(rushed, addr, b"\x03" * 64)
    yield from core.store(addr, b"\x03" * 64)
    yield from core.persist(addr, 64)

    # Misuse 2: pre-execution without a subsequent write.
    orphan = core.api.pre_init()
    yield from core.api.pre_both(orphan, system.heap.alloc_line(64),
                                 b"\x04" * 64)
    yield from core.compute(2000)


def main():
    # Static analysis: plans + window estimates for a workload.
    print("=== static: instrumentation plan + window estimate ===")
    cls = WORKLOADS["array_swap"]
    plan = plan_for(cls, "auto")
    print(plan.describe())
    graph = build_pipeline(default_config()).graph
    print(render_report(cls.template(), plan, graph))
    print()

    # Dynamic analysis: run the buggy program and diagnose it.
    print("=== dynamic: misuse report for a buggy program ===")
    system = NvmSystem(default_config(mode="janus"))
    system.run_programs([buggy_program(system)])
    report = diagnose(system)
    print(report.render())
    assert not report.clean, "the buggy program must be flagged"


if __name__ == "__main__":
    main()
