#!/usr/bin/env python3
"""Quickstart: build an NVM system, persist data through the BMO
pipeline, and watch Janus pre-execution take the backend latency off
a write's critical path.

Run:  python examples/quickstart.py
"""

from repro.common.config import default_config
from repro.core import NvmSystem


def program(core, use_janus: bool):
    """One durable update: store 64 bytes, clwb, sfence."""
    data = bytes(range(64))
    addr = core.system.heap.alloc_line(64, label="greeting")

    if use_janus:
        # The Janus software interface (paper Table 2): tell the
        # memory controller about the write while we are still busy
        # doing other work, so the BMOs run off the critical path.
        obj = core.api.pre_init()
        yield from core.api.pre_both(obj, addr, data)

    # ... the program computes for a while (the pre-execution window).
    yield from core.compute(4000)

    t0 = core.sim.now
    yield from core.store(addr, data)
    yield from core.persist(addr, 64)
    print(f"    durable write took {core.sim.now - t0:7.1f} ns "
          f"(mode={core.system.cfg.mode})")
    return addr


def main():
    for mode in ("serialized", "parallel", "janus"):
        cfg = default_config(mode=mode)
        system = NvmSystem(cfg)
        core = system.cores[0]
        print(f"[{mode}]")
        system.run_programs([program(core, use_janus=(mode == "janus"))])

        # The data really is encrypted at rest: NVM holds ciphertext.
        addr = next(a.addr for a in system.heap.live_allocations()
                    if a.label == "greeting")
        stored = system.nvm.read_line(addr)
        engine = system.pipeline.by_name["encryption"].engine
        assert stored != bytes(range(64)), "NVM must hold ciphertext"
        assert engine.decrypt(addr, stored) == bytes(range(64))
        print(f"    NVM line is ciphertext; decrypts correctly: "
              f"{stored[:8].hex()}...")


if __name__ == "__main__":
    main()
