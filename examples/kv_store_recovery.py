#!/usr/bin/env python3
"""A crash-consistent key-value store on encrypted, deduplicated NVM.

This is the scenario the paper's introduction motivates: persistent
data structures manipulated with loads/stores, made crash consistent
with undo logging, while the memory controller transparently runs
encryption + integrity verification + deduplication on every write.

The script updates a hash-table KV store, pulls the plug mid-
transaction, and runs recovery: decrypting the NVM image through the
metadata chain, verifying MACs, and rolling back the interrupted
transaction from the undo log.

Run:  python examples/kv_store_recovery.py
"""

from repro.common.config import default_config
from repro.consistency import recover
from repro.core import NvmSystem
from repro.workloads import WorkloadParams, make_workload


def main():
    cfg = default_config(mode="janus")
    system = NvmSystem(cfg)
    core = system.cores[0]
    params = WorkloadParams(n_items=16, value_size=64,
                            n_transactions=6)
    store = make_workload("hash_table", system, core, params,
                          variant="manual")

    # Run five complete updates, then crash in the middle of the
    # sixth (after its in-place update, before its commit record).
    crash_point = system.sim.event("crash")

    def victim_program():
        for _ in range(5):
            yield from store.transaction()
        # Partial sixth transaction: stop after the update fence.
        key = 3
        new_value = b"\xEE" * 64
        node, value_ptr = yield from store._find(key)
        victim_program.old = system.volatile.read(value_ptr, 64)
        victim_program.addr = value_ptr
        txn = store.log.begin()
        yield from txn.backup(value_ptr, 64)
        yield from txn.fence_backups()
        yield from txn.write(value_ptr, new_value)
        yield from txn.fence_updates()
        crash_point.succeed()   # power failure before commit!

    system.sim.process(victim_program())
    system.sim.run(stop_event=crash_point)
    print(f"crash at t={system.sim.now:.0f} ns, "
          f"mid-transaction (update persisted, commit missing)")

    snapshot = system.crash()
    print(f"ADR flushed the write queue; NVM holds "
          f"{len(snapshot['nvm_lines'])} ciphertext lines")

    state = recover(snapshot, [(store.log.base, store.log.capacity)],
                    verify_macs=True)
    print(f"recovery rolled back transactions: {state.rolled_back}")

    recovered = state.read(victim_program.addr, 64)
    assert recovered == victim_program.old, \
        "uncommitted update must be rolled back"
    print("uncommitted update rolled back to the pre-transaction value")

    # Committed data survives, readable through dedup remap +
    # counter-mode decryption + MAC verification.
    survivors = sum(
        1 for key in range(params.n_items)
        if state.read(
            int.from_bytes(
                state.read(store._bucket_addr(key), 8), "little") or 8,
            8))
    print(f"store contents reachable after recovery "
          f"({survivors} buckets probed) — crash consistency holds")


if __name__ == "__main__":
    main()
