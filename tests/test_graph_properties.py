"""Property-based tests over randomly generated sub-operation DAGs.

The dependency graph and its schedulers are the analytical core of the
reproduction; these tests pin their invariants on arbitrary DAGs, not
just the paper's pipeline.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bmo.base import ADDR, DATA, SubOp
from repro.bmo.graph import DependencyGraph


@st.composite
def random_dag(draw):
    """A random DAG of 1-12 sub-ops with random external inputs.

    Edges only point from lower to higher indices, guaranteeing
    acyclicity by construction.
    """
    n = draw(st.integers(1, 12))
    subops = []
    for i in range(n):
        deps = tuple(
            f"op{j}" for j in range(i)
            if draw(st.booleans()) and draw(st.integers(0, 2)) == 0)
        external = frozenset(
            inp for inp in (ADDR, DATA) if draw(st.booleans()))
        latency = draw(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False))
        subops.append(SubOp(f"op{i}", bmo=f"b{i % 3}",
                            latency_ns=latency, deps=deps,
                            external=external))
    return DependencyGraph(subops)


@settings(max_examples=60)
@given(graph=random_dag())
def test_topological_order_respects_all_edges(graph):
    order = graph.topological_order
    position = {name: i for i, name in enumerate(order)}
    for name, op in graph.subops.items():
        for dep in op.deps:
            assert position[dep] < position[name]


@settings(max_examples=60)
@given(graph=random_dag())
def test_external_closure_is_monotone_along_edges(graph):
    """A sub-op requires at least everything its dependencies do."""
    for name, op in graph.subops.items():
        needs = graph.external_requirements(name)
        for dep in op.deps:
            assert graph.external_requirements(dep) <= needs


@settings(max_examples=60)
@given(graph=random_dag())
def test_runnable_sets_are_downward_closed_and_monotone(graph):
    none = set(graph.runnable_with(frozenset()))
    addr = set(graph.runnable_with(frozenset({ADDR})))
    data = set(graph.runnable_with(frozenset({DATA})))
    both = set(graph.runnable_with(frozenset({ADDR, DATA})))
    # More inputs never shrink the runnable set.
    assert none <= addr <= both
    assert none <= data <= both
    # Each set is closed under dependencies.
    for runnable in (none, addr, data, both):
        for name in runnable:
            assert set(graph.subops[name].deps) <= runnable


@settings(max_examples=40)
@given(graph=random_dag(), units=st.integers(1, 6))
def test_parallel_schedule_respects_dependencies(graph, units):
    schedule = graph.parallel_schedule(units=units)
    start = {name: s for name, s, _e in schedule.slots}
    end = {name: e for name, _s, e in schedule.slots}
    for name, op in graph.subops.items():
        for dep in op.deps:
            assert end[dep] <= start[name] + 1e-9


@settings(max_examples=40)
@given(graph=random_dag(), units=st.integers(1, 6))
def test_parallel_schedule_never_oversubscribes_units(graph, units):
    events = []
    for _name, start, finish in graph.parallel_schedule(
            units=units).slots:
        if finish > start:
            events.append((start, 1))
            events.append((finish, -1))
    events.sort()
    active = 0
    for _time, delta in events:
        active += delta
        assert active <= units


@settings(max_examples=40)
@given(graph=random_dag(), units=st.integers(1, 6))
def test_makespan_bounds(graph, units):
    """critical path <= makespan <= serial sum (classic bounds)."""
    schedule = graph.parallel_schedule(units=units)
    serial_sum = sum(op.latency_ns for op in graph.subops.values())
    critical = graph.parallel_schedule(units=len(graph.subops)
                                       or 1).makespan
    assert critical - 1e-6 <= schedule.makespan <= serial_sum + 1e-6


@settings(max_examples=40)
@given(graph=random_dag())
def test_more_units_never_hurt(graph):
    previous = None
    for units in (1, 2, 4, 16):
        makespan = graph.parallel_schedule(units=units).makespan
        if previous is not None:
            # Greedy list scheduling is not strictly monotone in
            # theory, but with the earliest-start policy it is for
            # these small DAGs; allow a tiny anomaly margin (Graham's
            # bound guarantees within 2x of optimal).
            assert makespan <= previous * 2.0 + 1e-6
        previous = makespan


@settings(max_examples=40)
@given(graph=random_dag())
def test_serial_schedule_is_a_permutation_of_all_ops(graph):
    schedule = graph.serial_schedule(["b0", "b1", "b2"])
    names = [name for name, _s, _e in schedule.slots]
    assert sorted(names) == sorted(graph.subops)
    # Back-to-back, no overlap.
    slots = sorted(schedule.slots, key=lambda s: s[1])
    for (_n1, _s1, e1), (_n2, s2, _e2) in zip(slots, slots[1:]):
        assert e1 <= s2 + 1e-9


@settings(max_examples=40)
@given(graph=random_dag())
def test_can_parallelise_is_symmetric(graph):
    names = list(graph.subops)
    if len(names) < 2:
        return
    a, b = {names[0]}, {names[-1]}
    assert graph.can_parallelise(a, b) == graph.can_parallelise(b, a)
