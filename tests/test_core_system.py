"""Integration tests for the assembled NVM system."""

import pytest

from repro.common.config import default_config
from repro.core import NvmSystem


def small_config(**overrides):
    base = dict(mode="serialized",
                memory=None)
    cfg = default_config()
    cfg = cfg.replace(**overrides) if overrides else cfg
    return cfg.validate()


def make_system(**overrides):
    return NvmSystem(default_config(**overrides))


def simple_write_program(core, addr, data, critical=False):
    yield from core.store(addr, data)
    yield from core.clwb(addr, len(data), critical=critical)
    yield from core.sfence()


def test_store_then_read_roundtrip():
    system = make_system(mode="serialized")
    core = system.cores[0]
    results = []

    def prog():
        yield from core.store(0x1000, b"hello")
        value = yield from core.read(0x1000, 5)
        results.append(value)

    system.run_programs([prog()])
    assert results == [b"hello"]


@pytest.mark.parametrize("mode", ["serialized", "parallel", "janus",
                                  "ideal"])
def test_persisted_line_lands_encrypted_in_nvm(mode):
    system = make_system(mode=mode)
    core = system.cores[0]
    data = bytes([7]) * 64
    system.run_programs([simple_write_program(core, 0x2000, data)])
    system.run()  # let background drains finish
    stored = system.nvm.read_line(0x2000)
    assert stored != bytes(64)
    assert stored != data  # ciphertext, not plaintext
    engine = system.pipeline.by_name["encryption"].engine
    assert engine.decrypt(0x2000, stored) == data


def test_mode_ordering_serialized_slowest_ideal_fastest():
    times = {}
    for mode in ("serialized", "parallel", "janus", "ideal"):
        system = make_system(mode=mode)
        core = system.cores[0]

        def prog(core=core):
            for i in range(8):
                yield from simple_write_program(
                    core, 0x4000 + 64 * i, bytes([i + 1]) * 64)

        times[mode] = system.run_programs([prog()])
    assert times["ideal"] < times["janus"] <= times["parallel"] + 1e-9
    assert times["parallel"] < times["serialized"]


def test_janus_mode_without_requests_behaves_like_parallel():
    """With no PRE_* calls the IRB never hits; latency tracks the
    parallel design (the engine falls back to full dataflow runs)."""
    t = {}
    for mode in ("parallel", "janus"):
        system = make_system(mode=mode)
        core = system.cores[0]
        t[mode] = system.run_programs(
            [simple_write_program(core, 0x4000, bytes([9]) * 64)])
    assert t["janus"] == pytest.approx(t["parallel"], rel=0.01)


def test_janus_pre_execution_accelerates_write():
    def instrumented(core):
        obj = core.api.pre_init()
        data = bytes([3]) * 64
        yield from core.api.pre_both(obj, 0x5000, data)
        yield from core.compute(2000)  # window for pre-execution
        yield from simple_write_program(core, 0x5000, data)

    def uninstrumented(core):
        data = bytes([3]) * 64
        yield from core.compute(2000)
        yield from simple_write_program(core, 0x5000, data)

    sys_janus = make_system(mode="janus")
    t_janus = sys_janus.run_programs([instrumented(sys_janus.cores[0])])
    sys_par = make_system(mode="parallel")
    t_par = sys_par.run_programs([uninstrumented(sys_par.cores[0])])
    assert t_janus < t_par
    assert sys_janus.janus.stats.counters["fully_pre_executed"].value == 1


def test_duplicate_write_skips_device_write():
    system = make_system(mode="serialized")
    core = system.cores[0]
    data = bytes([0x5A]) * 64

    def prog():
        yield from simple_write_program(core, 0x6000, data)
        yield from simple_write_program(core, 0x7000, data)

    system.run_programs([prog()])
    system.run()
    assert system.controller.stats.counters[
        "writes_cancelled_by_dedup"].value == 1
    # The second line was never physically written.
    assert system.nvm.read_line(0x7000) == bytes(64)
    dedup = system.pipeline.by_name["dedup"]
    assert dedup.table.remap[0x7000] == dedup.table.remap[0x6000]


def test_multi_core_programs_share_memory_system():
    system = make_system(mode="serialized", cores=4)
    lines = []

    def prog(core, base):
        yield from simple_write_program(core, base, bytes([core.core_id + 1]) * 64)
        lines.append(base)

    system.run_programs([prog(c, 0x8000 + 0x1000 * i)
                         for i, c in enumerate(system.cores)])
    assert len(lines) == 4
    system.run()
    for i, base in enumerate(sorted(lines)):
        engine = system.pipeline.by_name["encryption"].engine
        assert engine.decrypt(base, system.nvm.read_line(base)) \
            == bytes([i + 1]) * 64


def test_multicore_contention_stretches_time():
    """With a constrained shared memory system (one bank, tiny write
    queue), four cores' writes back-pressure each other."""
    import dataclasses
    from repro.common.config import MemoryConfig

    def make(cores):
        cfg = default_config(cores=cores)
        cfg = cfg.replace(memory=MemoryConfig(
            channels=1, write_service_ns=600, write_queue_entries=2))
        return NvmSystem(cfg.validate())

    def workload(core, base):
        for i in range(8):
            yield from simple_write_program(core, base + 64 * i,
                                            bytes([i + 1]) * 64)

    single = make(1)
    t1 = single.run_programs([workload(single.cores[0], 0x10000)])
    quad = make(4)
    t4 = quad.run_programs([workload(c, 0x10000 + 0x10000 * i)
                            for i, c in enumerate(quad.cores)])
    # 4x the work on a saturated memory system: strictly slower than
    # one core's run, but far better than 4x serial.
    assert t1 < t4 < 4 * t1


def test_critical_write_waits_for_metadata():
    system = make_system(mode="serialized")
    core = system.cores[0]
    system.run_programs([simple_write_program(core, 0x9000,
                                              bytes([1]) * 64,
                                              critical=True)])
    assert system.controller.stats.counters[
        "metadata_atomic_waits"].value == 1


def test_selective_atomicity_off_makes_every_write_wait():
    system = make_system(mode="serialized",
                         selective_metadata_atomicity=False)
    core = system.cores[0]
    system.run_programs([simple_write_program(core, 0x9000,
                                              bytes([1]) * 64)])
    assert system.controller.stats.counters[
        "metadata_atomic_waits"].value == 1


def test_sfence_with_nothing_outstanding_is_cheap():
    system = make_system(mode="serialized")
    core = system.cores[0]

    def prog():
        yield from core.sfence()

    t = system.run_programs([prog()])
    assert t < 1.0


def test_crash_flushes_adr_domain():
    system = make_system(mode="serialized")
    core = system.cores[0]
    data = bytes([0x42]) * 64
    # Run only until the persist point; device write still in flight.
    proc = system.sim.process(simple_write_program(core, 0xA000, data))
    system.sim.run(until=None, stop_event=proc)
    snapshot = system.crash()
    assert 0xA000 in snapshot["nvm_lines"]
    engine = system.pipeline.by_name["encryption"].engine
    assert engine.decrypt(0xA000, snapshot["nvm_lines"][0xA000]) == data
