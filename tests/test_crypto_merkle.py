"""Tests for the sparse Bonsai Merkle tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import IntegrityError
from repro.crypto import MerkleTree


def small_tree():
    return MerkleTree(arity=2, height=3)  # 8 leaves


def test_empty_tree_has_stable_root():
    assert MerkleTree(arity=2, height=3).root == small_tree().root


def test_update_changes_root():
    tree = small_tree()
    before = tree.root
    tree.update_leaf(0, b"value")
    assert tree.root != before


def test_update_then_verify():
    tree = small_tree()
    tree.update_leaf(3, b"hello")
    assert tree.verify_leaf(3, b"hello")
    assert not tree.verify_leaf(3, b"tampered")


def test_unwritten_leaf_verifies_as_empty():
    tree = small_tree()
    tree.update_leaf(1, b"x")
    # Leaf 2 was never written; a forged value must not verify.
    assert not tree.verify_leaf(2, b"forged")


def test_same_leaves_same_root_regardless_of_order():
    t1, t2 = small_tree(), small_tree()
    t1.update_leaf(0, b"a")
    t1.update_leaf(5, b"b")
    t2.update_leaf(5, b"b")
    t2.update_leaf(0, b"a")
    assert t1.root == t2.root


def test_path_digests_do_not_mutate():
    tree = small_tree()
    root = tree.root
    path = tree.path_digests(2, b"pending")
    assert tree.root == root  # pure
    assert len(path) == tree.height + 1
    tree.apply_path(path)
    assert tree.verify_leaf(2, b"pending")


def test_apply_stale_path_breaks_verification():
    """A pre-executed path computed before a sibling changed is stale —
    this is exactly the hazard the IRB invalidation logic exists for."""
    tree = small_tree()
    stale = tree.path_digests(0, b"mine")
    tree.update_leaf(1, b"sibling-moved")  # invalidates the path
    tree.apply_path(stale)
    assert not tree.verify_leaf(0, b"mine")


def test_leaf_index_bounds():
    tree = small_tree()
    with pytest.raises(IntegrityError):
        tree.update_leaf(8, b"x")
    with pytest.raises(IntegrityError):
        tree.update_leaf(-1, b"x")


def test_bad_shape_rejected():
    with pytest.raises(IntegrityError):
        MerkleTree(arity=1, height=3)
    with pytest.raises(IntegrityError):
        MerkleTree(arity=2, height=0)


def test_snapshot_restore():
    tree = small_tree()
    tree.update_leaf(0, b"a")
    snap = tree.snapshot()
    tree.update_leaf(0, b"b")
    tree.restore(snap)
    assert tree.verify_leaf(0, b"a")


def test_paper_height_nine_tree_is_cheap_to_touch():
    tree = MerkleTree(arity=8, height=9)
    assert tree.leaf_capacity == 8 ** 9
    tree.update_leaf(123_456_789, b"deep")
    assert tree.verify_leaf(123_456_789, b"deep")


@settings(max_examples=25)
@given(writes=st.lists(
    st.tuples(st.integers(0, 7), st.binary(min_size=1, max_size=16)),
    min_size=1, max_size=12))
def test_last_write_per_leaf_always_verifies(writes):
    tree = small_tree()
    final = {}
    for index, value in writes:
        tree.update_leaf(index, value)
        final[index] = value
    for index, value in final.items():
        assert tree.verify_leaf(index, value)
