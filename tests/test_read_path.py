"""Tests for the decryption-aware read path and counter cache."""

import pytest

from repro.common.config import default_config
from repro.core import NvmSystem


def make_system(**overrides):
    return NvmSystem(default_config(mode="serialized", **overrides))


def timed_read(system, addr, size):
    core = system.cores[0]
    out = {}

    def prog():
        t0 = system.sim.now
        yield from core.read(addr, size)
        out["ns"] = system.sim.now - t0

    proc = system.sim.process(prog())
    system.sim.run(stop_event=proc)
    return out["ns"]


def test_cold_read_pays_decryption_penalty():
    enc = make_system()
    cold_enc = timed_read(enc, 0x10000, 64)
    plain = make_system(bmos=("dedup",))
    cold_plain = timed_read(plain, 0x10000, 64)
    # Counter-cache miss: counter fetch + AES + XOR on top.
    cfg = default_config()
    expected_extra = (cfg.memory.read_service_ns
                      + cfg.bmo_latencies.aes_ns
                      + cfg.bmo_latencies.xor_ns)
    assert cold_enc == pytest.approx(cold_plain + expected_extra)


def test_warm_counter_cache_read_overlaps_decryption():
    system = make_system()
    first = timed_read(system, 0x20000, 64)
    # Evict the line from L1/L2 but keep the counter cached: touch
    # enough other lines to churn the data caches.  Simpler: read a
    # line whose counter entry was just cached via a neighbour.
    # Directly exercise the controller's penalty function instead.
    controller = system.controller
    miss = controller.read_decrypt_penalty_ns(0x30000, streamed=False)
    hit = controller.read_decrypt_penalty_ns(0x30000, streamed=False)
    assert miss > hit == pytest.approx(
        default_config().bmo_latencies.xor_ns)
    assert first > 0


def test_l1_hit_has_no_decrypt_penalty():
    system = make_system()
    timed_read(system, 0x40000, 64)       # cold
    warm = timed_read(system, 0x40000, 64)  # L1 hit
    assert warm == pytest.approx(default_config().cache.l1_hit_ns)


def test_streamed_lines_pay_reduced_penalty():
    system = make_system()
    single = timed_read(system, 0x50000, 64)
    system2 = make_system()
    bulk = timed_read(system2, 0x60000, 8 * 64)
    # Eight lines cost far less than eight cold single-line reads.
    assert bulk < 3 * single


def test_counter_cache_hit_rate_reported():
    system = make_system()
    controller = system.controller
    for i in range(4):
        controller.read_decrypt_penalty_ns(0x1000, streamed=False)
    assert controller.counter_cache_hit_rate() == pytest.approx(0.75)


def test_no_encryption_no_penalty():
    system = make_system(bmos=("dedup", "integrity"))
    assert system.controller.read_decrypt_penalty_ns(
        0x1000, streamed=False) == 0.0


def test_stores_unaffected_by_read_penalty():
    enc = make_system()
    plain = make_system(bmos=("dedup",))
    out = {}

    def prog(system, key):
        core = system.cores[0]
        t0 = system.sim.now
        yield from core.store(0x70000, b"\x01" * 64)
        out[key] = system.sim.now - t0

    for system, key in ((enc, "enc"), (plain, "plain")):
        proc = system.sim.process(prog(system, key))
        system.sim.run(stop_event=proc)
    assert out["enc"] == pytest.approx(out["plain"])
