"""``tools/check_docs.py``: green on the real docs, red on fixtures.

The checker is CI's ``docs-check`` step; these tests pin both
directions — the repository's own documentation must be clean, and a
deliberately broken fixture tree must fail with one problem per
defect (the negative test the acceptance criteria ask for).
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402  (tools/ is not a package)

SUBCOMMANDS = check_docs.cli_subcommands()


def _write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


class TestRealRepoDocs:
    def test_repo_docs_are_clean(self):
        problems = check_docs.check_docs(subcommands=SUBCOMMANDS)
        assert problems == []

    def test_doc_set_covers_readme_and_docs_dir(self):
        files = {p.name for p in check_docs.default_doc_files()}
        assert {"README.md", "EXPERIMENTS.md", "DESIGN.md",
                "architecture.md"} <= files

    def test_cli_subcommands_read_from_argparse(self):
        assert {"run", "figure", "crashtest", "bench"} <= SUBCOMMANDS


class TestNegativeFixtures:
    def test_broken_relative_link_fails(self, tmp_path):
        doc = _write(tmp_path, "README.md", "[gone](docs/nope.md)\n")
        problems = check_docs.check_links(doc, tmp_path)
        assert len(problems) == 1
        assert "broken link" in problems[0]

    def test_valid_relative_link_passes(self, tmp_path):
        _write(tmp_path, "docs/real.md", "hi\n")
        doc = _write(tmp_path, "README.md",
                     "[ok](docs/real.md) [anchor](#x) "
                     "[web](https://example.org)\n")
        assert check_docs.check_links(doc, tmp_path) == []

    def test_missing_src_path_fails(self, tmp_path):
        doc = _write(tmp_path, "README.md",
                     "see `src/repro/ghost/missing.py`\n")
        problems = check_docs.check_src_paths(doc, tmp_path)
        assert len(problems) == 1
        assert "does not exist" in problems[0]

    def test_placeholder_src_path_skipped(self, tmp_path):
        doc = _write(tmp_path, "README.md",
                     "`src/repro/<pkg>/...` and `src/repro/*.py`\n")
        assert check_docs.check_src_paths(doc, tmp_path) == []

    def test_unknown_subcommand_fails(self, tmp_path):
        doc = _write(tmp_path, "README.md",
                     "run `repro frobnicate --now`\n")
        problems = check_docs.check_subcommands(doc, tmp_path,
                                                SUBCOMMANDS)
        assert len(problems) == 1
        assert "repro frobnicate" in problems[0]

    def test_fenced_block_subcommands_checked(self, tmp_path):
        doc = _write(tmp_path, "README.md",
                     "```bash\npython -m repro nosuchcmd\n```\n")
        problems = check_docs.check_subcommands(doc, tmp_path,
                                                SUBCOMMANDS)
        assert len(problems) == 1

    def test_module_reference_is_not_a_subcommand(self, tmp_path):
        # `repro.harness` is a dotted module path, not `repro <sub>`.
        doc = _write(tmp_path, "README.md",
                     "`repro.harness.parallel` drives `repro figures`\n")
        assert check_docs.check_subcommands(doc, tmp_path,
                                            SUBCOMMANDS) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        _write(tmp_path, "README.md", "[bad](missing.md)\n")
        assert check_docs.main([str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "broken link" in captured.err
        _write(tmp_path, "missing.md", "now present\n")
        assert check_docs.main([str(tmp_path)]) == 0


class TestCheckDocsAggregation:
    def test_all_defect_kinds_reported_together(self, tmp_path):
        _write(tmp_path, "README.md",
               "[gone](nope.md)\n`src/repro/ghost.py`\n"
               "`repro frobnicate`\n")
        problems = check_docs.check_docs(
            files=check_docs.default_doc_files(tmp_path),
            root=tmp_path, subcommands=SUBCOMMANDS)
        assert len(problems) == 3
