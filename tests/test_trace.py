"""Tests for the per-write latency tracer."""

import pytest

from repro.common.config import default_config
from repro.core import NvmSystem
from repro.harness.trace import WriteTracer
from repro.workloads import WorkloadParams, make_workload


def traced_run(mode="serialized", variant="baseline", n_txns=6):
    system = NvmSystem(default_config(mode=mode))
    tracer = WriteTracer.attach(system)
    workload = make_workload(
        "array_swap", system, system.cores[0],
        WorkloadParams(n_items=16, value_size=64,
                       n_transactions=n_txns),
        variant=variant)
    system.run_programs([workload.run()])
    return tracer


def test_tracer_records_every_writeback():
    tracer = traced_run()
    assert len(tracer) > 0
    for record in tracer.records:
        assert record.start_ns <= record.mc_arrival_ns \
            <= record.bmo_done_ns <= record.persisted_ns


def test_serialized_bmo_phase_dominates():
    tracer = traced_run(mode="serialized")
    means = tracer.phase_means()
    assert means["bmo"] > means["transfer"]
    assert means["bmo"] > 500  # the ~794 ns serial chain
    assert means["transfer"] == pytest.approx(15.0)


def test_janus_run_has_zero_bmo_writes():
    tracer = traced_run(mode="janus", variant="manual")
    # Fully pre-executed writes spend ~0 ns in BMOs at the MC.
    assert tracer.zero_bmo_fraction() > 0.2


def test_ideal_mode_charges_no_bmo_time():
    tracer = traced_run(mode="ideal")
    assert tracer.phase_means()["bmo"] == pytest.approx(0.0)


def test_mode_ordering_visible_in_trace():
    ser = traced_run(mode="serialized")["bmo"] if False else \
        traced_run(mode="serialized").phase_means()["bmo"]
    jan = traced_run(mode="janus", variant="manual").phase_means()["bmo"]
    assert jan < ser


def test_csv_export_roundtrip(tmp_path):
    tracer = traced_run()
    path = tmp_path / "trace.csv"
    text = tracer.to_csv(str(path))
    lines = text.strip().splitlines()
    assert lines[0].startswith("thread,line_addr")
    assert len(lines) == len(tracer) + 1
    assert path.read_text() == text


def test_commit_records_marked_critical():
    tracer = traced_run()
    critical = [r for r in tracer.records if r.critical]
    assert len(critical) == 6  # one commit record per transaction


def test_empty_tracer_summary_safe():
    tracer = WriteTracer()
    assert tracer.zero_bmo_fraction() == 0.0
    assert "0 writes traced" in tracer.summary()
    assert tracer.phase_means()["total"] == 0.0
