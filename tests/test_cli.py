"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_figures_lists_everything(capsys):
    code, out = run_cli(capsys, "figures")
    assert code == 0
    for name in FIGURES:
        assert name in out


def test_figure_static(capsys):
    code, out = run_cli(capsys, "figure", "table1")
    assert code == 0
    assert "backend memory operations" in out


def test_figure_overhead(capsys):
    code, out = run_cli(capsys, "figure", "overhead")
    assert code == 0
    assert "IRB" in out


def test_run_command(capsys):
    code, out = run_cli(capsys, "run", "array_swap", "--txns", "4",
                        "--mode", "janus")
    assert code == 0
    assert "ns/txn" in out and "janus" in out


def test_compare_command_orders_designs(capsys):
    code, out = run_cli(capsys, "compare", "queue", "--txns", "6")
    assert code == 0
    for label in ("serialized", "parallel", "janus-manual", "ideal"):
        assert label in out


def test_plan_command(capsys):
    code, out = run_cli(capsys, "plan", "array_swap")
    assert code == 0
    assert "PRE_ADDR" in out
    assert "window estimate" in out


def test_misuse_command(capsys):
    code, out = run_cli(capsys, "misuse", "array_swap", "--txns", "4")
    assert code == 0
    assert "misuse report" in out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "not-a-workload"])


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])
