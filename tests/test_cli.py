"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_figures_lists_everything(capsys):
    code, out = run_cli(capsys, "figures")
    assert code == 0
    for name in FIGURES:
        assert name in out


def test_figure_static(capsys):
    code, out = run_cli(capsys, "figure", "table1")
    assert code == 0
    assert "backend memory operations" in out


def test_figure_overhead(capsys):
    code, out = run_cli(capsys, "figure", "overhead")
    assert code == 0
    assert "IRB" in out


def test_figure_out_writes_then_rerenders_in_place(capsys, tmp_path):
    path = tmp_path / "table1.txt"
    code, _ = run_cli(capsys, "figure", "table1", "--out", str(path))
    assert code == 0
    first = path.read_text()
    assert "backend memory operations" in first
    # Refreshing a previously rendered report in place is fine: the
    # first line identifies it as our own output.
    code, _ = run_cli(capsys, "figure", "table1", "--out", str(path))
    assert code == 0
    assert path.read_text() == first


def test_figure_out_refuses_to_clobber_foreign_file(capsys, tmp_path):
    path = tmp_path / "notes.txt"
    path.write_text("my precious notes\n")
    code = main(["figure", "table1", "--out", str(path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "refusing" in captured.err
    assert "--force" in captured.err
    assert path.read_text() == "my precious notes\n"  # untouched


def test_figure_out_force_overwrites(capsys, tmp_path):
    path = tmp_path / "notes.txt"
    path.write_text("my precious notes\n")
    code, _ = run_cli(capsys, "figure", "table1", "--out", str(path),
                      "--force")
    assert code == 0
    content = path.read_text()
    assert "my precious notes" not in content
    assert "backend memory operations" in content


def test_figure_out_refuses_directory_target(capsys, tmp_path):
    code = main(["figure", "table1", "--out", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "refusing" in captured.err


def test_run_command(capsys):
    code, out = run_cli(capsys, "run", "array_swap", "--txns", "4",
                        "--mode", "janus")
    assert code == 0
    assert "ns/txn" in out and "janus" in out


def test_compare_command_orders_designs(capsys):
    code, out = run_cli(capsys, "compare", "queue", "--txns", "6")
    assert code == 0
    for label in ("serialized", "parallel", "janus-manual", "ideal"):
        assert label in out


def test_plan_command(capsys):
    code, out = run_cli(capsys, "plan", "array_swap")
    assert code == 0
    assert "PRE_ADDR" in out
    assert "window estimate" in out


def test_misuse_command(capsys):
    code, out = run_cli(capsys, "misuse", "array_swap", "--txns", "4")
    assert code == 0
    assert "misuse report" in out


def test_scrub_command_clean_crash(capsys):
    code, out = run_cli(capsys, "scrub", "array_swap", "--txns", "6",
                        "--items", "8", "--crash-at", "6000")
    assert code == 0
    assert "power failure" in out
    assert "recovery:" in out and "committed" in out
    assert "image clean" in out


def test_scrub_command_with_faults_never_silent(capsys):
    code, out = run_cli(capsys, "scrub", "queue", "--txns", "6",
                        "--items", "8", "--crash-at", "6000",
                        "--faults", "meta_merkle")
    assert "injected:" in out
    # An injected metadata fault must surface somewhere: a rejected
    # recovery or an unclean scrub (exit 1) — never a clean exit with
    # no evidence.
    assert code == 1
    assert "MERKLE FAILURE" in out or "REJECTED" in out


def test_crashtest_quick_passes_and_writes(capsys, tmp_path):
    out_path = tmp_path / "CRASHTEST_ci.json"
    code, out = run_cli(capsys, "crashtest", "--quick",
                        "--points", "2", "--out", str(out_path))
    assert code == 0
    assert "crash points" in out
    assert "fault scenarios" in out
    assert out_path.exists()


def test_crashtest_subset_no_write(capsys):
    code, out = run_cli(capsys, "crashtest", "--workloads",
                        "array_swap", "--modes", "janus", "--points",
                        "1", "--no-scenarios", "--no-write")
    assert code == 0
    assert "report ->" not in out


def test_crashtest_rejects_unknown_workload(capsys):
    code = main(["crashtest", "--workloads", "nope", "--no-write"])
    assert code == 2


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "not-a-workload"])


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_profile_emits_ranked_hotspots_and_artifacts(capsys, tmp_path):
    out_json = tmp_path / "profile.json"
    folded = tmp_path / "profile.folded"
    code, out = run_cli(capsys, "profile", "queue", "--mode", "janus",
                        "--quick", "--out", str(out_json),
                        "--folded", str(folded))
    assert code == 0
    assert "repro profile" in out
    assert "self sim-ns" in out
    import json as _json
    report = _json.loads(out_json.read_text())
    assert report["schema"] == "repro-profile-v1"
    assert report["components"]
    # Every folded line is "frames... <integer weight>".
    for line in folded.read_text().splitlines():
        stack, _sep, weight = line.rpartition(" ")
        assert ";" in stack and int(weight) > 0


def test_profile_report_byte_identical_across_jobs(capsys, tmp_path):
    outs = []
    for jobs, name in (("1", "a"), ("2", "b")):
        path = tmp_path / f"{name}.json"
        code, _out = run_cli(capsys, "profile", "queue", "--mode",
                             "janus", "--quick", "--jobs", jobs,
                             "--out", str(path))
        assert code == 0
        outs.append(path.read_bytes())
    assert outs[0] == outs[1]


def test_timeseries_byte_identical_across_jobs(capsys, tmp_path):
    outs = []
    for jobs, name in (("1", "a"), ("2", "b")):
        path = tmp_path / f"{name}.jsonl"
        code, _out = run_cli(capsys, "run", "queue", "--mode", "janus",
                             "--txns", "4", "--jobs", jobs,
                             "--timeseries", "500",
                             "--timeseries-out", str(path))
        assert code == 0
        outs.append(path.read_bytes())
    assert outs[0] == outs[1]


def test_chart_lists_and_plots(capsys, tmp_path):
    ts = tmp_path / "ts.jsonl"
    run_cli(capsys, "run", "queue", "--mode", "janus", "--txns", "4",
            "--timeseries", "300", "--timeseries-out", str(ts))
    code, out = run_cli(capsys, "chart", str(ts))
    assert code == 0
    assert "wq.accepted" in out and "--metric" in out
    code, out = run_cli(capsys, "chart", str(ts),
                        "--metric", "wq.accepted")
    assert code == 0
    assert "wq.accepted" in out and "sim-ns" in out


def test_run_prom_exposition(capsys, tmp_path):
    prom = tmp_path / "metrics.prom"
    code, _out = run_cli(capsys, "run", "queue", "--txns", "4",
                         "--prom", str(prom))
    assert code == 0
    text = prom.read_text()
    assert "# TYPE repro_wq_accepted counter" in text
    assert "_sum" in text


def test_run_digest_artifact_is_topology_blind(capsys, tmp_path):
    """--digest crashes+recovers after the run and writes canonical
    JSON; serialized runs produce identical bytes at any --shards
    width (docs/sharding.md) — the CI sharded-smoke `cmp`."""
    import json as jsonlib

    unsharded = tmp_path / "d1.json"
    sharded = tmp_path / "d2.json"
    code, out = run_cli(capsys, "run", "queue", "--txns", "4",
                        "--mode", "serialized", "--digest",
                        str(unsharded))
    assert code == 0
    assert "recovered-structure digest" in out
    code, _out = run_cli(capsys, "run", "queue", "--txns", "4",
                         "--mode", "serialized", "--shards", "2",
                         "--digest", str(sharded))
    assert code == 0
    assert unsharded.read_bytes() == sharded.read_bytes()
    payload = jsonlib.loads(unsharded.read_text())
    assert payload["schema"] == "repro-digest-v1"
    assert len(payload["digest"]) == 64
    assert payload["transactions"] == 4
