"""Tests for the composed BMO pipeline (paper Fig. 6 configuration)."""

import pytest

from repro.bmo import build_pipeline
from repro.bmo.base import ADDR, DATA
from repro.common.config import default_config
from repro.common.errors import SimulationError


def paper_pipeline(**overrides):
    cfg = default_config(**overrides)
    return build_pipeline(cfg)


def line(pattern: int) -> bytes:
    return bytes([pattern & 0xFF]) * 64


def run_write(pipeline, addr, data):
    ctx = pipeline.make_context(addr=addr, data=data)
    pipeline.execute_all(ctx)
    action = pipeline.commit(ctx)
    return ctx, action


class TestFig6Structure:
    def test_paper_classification(self):
        """Fig. 6: E1-E2 addr-only, D1-D2 data-only, rest both."""
        labels = paper_pipeline().classification()
        assert labels["E1"] == "addr"
        assert labels["E2"] == "addr"
        assert labels["D1"] == "data"
        assert labels["D2"] == "data"
        for name, label in labels.items():
            if name not in ("E1", "E2", "D1", "D2"):
                assert label == "both", (name, label)

    def test_inter_operation_edges(self):
        graph = paper_pipeline().graph
        assert "D2" in graph.subops["E3"].deps    # cancel dup writes
        assert "E1" in graph.subops["D4"].deps    # co-located metadata
        assert "E1" in graph.subops["I1"].deps    # leaf covers counter
        assert "D2" in graph.subops["I1"].deps    # leaf covers remap

    def test_parallel_groups_of_paper(self):
        """E3-E4, I1..In, D3-D4 can run in parallel (section 4.2)."""
        graph = paper_pipeline().graph
        integrity = [n for n in graph.subops if n.startswith("I")]
        assert graph.can_parallelise({"E3", "E4"}, integrity)
        assert graph.can_parallelise({"E3", "E4"}, {"D3", "D4"})
        assert graph.can_parallelise(integrity, {"D3", "D4"})

    def test_serial_latency_matches_table1_arithmetic(self):
        cfg = default_config()
        lat = cfg.bmo_latencies
        expected = (
            lat.md5_ns + lat.dedup_lookup_ns + 2 * lat.remap_update_ns  # D
            + lat.counter_gen_ns + lat.aes_ns + lat.xor_ns + lat.sha1_ns  # E
            + cfg.integrity.height * lat.sha1_ns)                      # I
        assert paper_pipeline().serial_latency() == pytest.approx(expected)

    def test_integrity_height_charged_per_level(self):
        pipeline = paper_pipeline()
        integrity_ops = [op for op in pipeline.graph.subops.values()
                         if op.bmo == "integrity"]
        cfg = default_config()
        assert len(integrity_ops) == cfg.integrity.height
        assert sum(op.latency_ns for op in integrity_ops) == \
            pytest.approx(cfg.integrity.height * cfg.bmo_latencies.sha1_ns)


class TestFunctionalWrites:
    def test_unique_write_produces_ciphertext_and_action(self):
        pipeline = paper_pipeline()
        ctx, action = run_write(pipeline, 0x1000, line(0xAB))
        assert action.write_data
        assert action.payload is not None
        assert action.payload != line(0xAB)
        assert action.device_addr == 0x1000
        assert action.metadata_lines == 1

    def test_ciphertext_decrypts_back(self):
        pipeline = paper_pipeline()
        data = line(0x5C)
        ctx, action = run_write(pipeline, 0x40, data)
        engine = pipeline.by_name["encryption"].engine
        assert engine.decrypt(0x40, action.payload) == data

    def test_duplicate_write_is_cancelled(self):
        pipeline = paper_pipeline()
        run_write(pipeline, 0x1000, line(0x77))
        ctx, action = run_write(pipeline, 0x2000, line(0x77))
        assert ctx.values["is_dup"]
        assert not action.write_data
        assert action.payload is None
        dedup = pipeline.by_name["dedup"]
        assert dedup.duplicate_writes == 1
        assert dedup.table.remap[0x2000] == dedup.table.remap[0x1000]

    def test_unique_writes_not_marked_duplicate(self):
        pipeline = paper_pipeline()
        _, first = run_write(pipeline, 0x1000, line(0x01))
        _, second = run_write(pipeline, 0x2000, line(0x02))
        assert first.write_data and second.write_data

    def test_merkle_root_changes_with_each_commit(self):
        pipeline = paper_pipeline()
        integrity = pipeline.by_name["integrity"]
        roots = {integrity.root()}
        for i in range(3):
            run_write(pipeline, 0x1000 + 64 * i, line(i + 1))
            roots.add(integrity.root())
        assert len(roots) == 4

    def test_committed_leaf_verifies(self):
        pipeline = paper_pipeline()
        ctx, _action = run_write(pipeline, 0x40, line(0x3C))
        integrity = pipeline.by_name["integrity"]
        from repro.bmo.integrity import leaf_value_for
        index = integrity.leaf_index(0x40)
        assert integrity.tree.verify_leaf(index, leaf_value_for(ctx))

    def test_commit_requires_complete_context(self):
        pipeline = paper_pipeline()
        ctx = pipeline.make_context(addr=0, data=line(1))
        with pytest.raises(SimulationError):
            pipeline.commit(ctx)

    def test_counter_advances_only_for_unique_writes(self):
        pipeline = paper_pipeline()
        engine = pipeline.by_name["encryption"].engine
        run_write(pipeline, 0x0, line(9))
        assert engine.current_counter(0x0) == 1
        run_write(pipeline, 0x40, line(9))  # duplicate, cancelled
        assert engine.current_counter(0x40) == 0


class TestPipelineVariants:
    def test_encryption_only(self):
        pipeline = build_pipeline(default_config(bmos=("encryption",)))
        ctx, action = run_write(pipeline, 0x80, line(0x11))
        assert action.write_data and action.payload != line(0x11)
        assert "D2" not in pipeline.graph.subops["E3"].deps

    def test_dedup_without_encryption(self):
        pipeline = build_pipeline(default_config(bmos=("dedup",)))
        run_write(pipeline, 0x0, line(0x22))
        ctx, action = run_write(pipeline, 0x40, line(0x22))
        assert not action.write_data
        assert "E1" not in pipeline.graph.subops["D4"].deps

    def test_all_six_bmos_compose(self):
        cfg = default_config(bmos=("compression", "wear_leveling", "dedup",
                                   "encryption", "integrity", "ecc"))
        pipeline = build_pipeline(cfg)
        ctx, action = run_write(pipeline, 0x1000, line(0x42))
        assert action.write_data
        assert ctx.values["ecc_code"] is not None
        assert ctx.values["compressed_size"] <= 64
        assert "wl_addr" in ctx.values

    def test_empty_pipeline_rejected(self):
        cfg = default_config()
        cfg = cfg.replace(bmos=())
        with pytest.raises(SimulationError):
            build_pipeline(cfg)

    def test_describe_mentions_every_subop(self):
        pipeline = paper_pipeline()
        text = pipeline.describe()
        for name in pipeline.all_subops:
            assert name in text


class TestStaleness:
    def test_fresh_context_has_no_stale_subops(self):
        pipeline = paper_pipeline()
        ctx = pipeline.make_context(addr=0x40, data=line(5))
        pipeline.execute_all(ctx)
        assert pipeline.stale_subops(ctx) == set()

    def test_intervening_write_stales_counter(self):
        pipeline = paper_pipeline()
        ctx = pipeline.make_context(addr=0x40, data=line(5))
        pipeline.execute_all(ctx)  # pre-executed, counter = 1
        run_write(pipeline, 0x40, line(6))  # another write commits first
        stale = pipeline.stale_subops(ctx)
        assert "E1" in stale
        # Everything downstream of E1 must re-run too.
        assert "E2" in stale and "I1" in stale

    def test_dedup_verdict_stales_when_table_changes(self):
        pipeline = paper_pipeline()
        ctx = pipeline.make_context(addr=0x80, data=line(0x99))
        pipeline.execute_all(ctx)
        assert not ctx.values["is_dup"]
        # Someone else commits the same value: verdict flips.
        run_write(pipeline, 0x0, line(0x99))
        stale = pipeline.stale_subops(ctx)
        assert "D2" in stale and "E3" in stale

    def test_sibling_merkle_update_stales_partially(self):
        import dataclasses
        cfg = default_config()
        cfg = cfg.replace(integrity=dataclasses.replace(
            cfg.integrity, strict_sibling_invalidation=True))
        pipeline = build_pipeline(cfg)
        ctx = pipeline.make_context(addr=0x40, data=line(1))
        pipeline.execute_all(ctx)
        # A write to a far-away leaf disturbs only upper tree levels.
        far = 64 * (cfg.integrity.arity ** 3)
        run_write(pipeline, far, line(2))
        stale = pipeline.stale_subops(ctx)
        assert stale  # some integrity levels must re-run
        assert "I1" not in stale  # but not the leaf level
        assert f"I{cfg.integrity.height}" in stale

    def test_refreshing_stale_context_commits_cleanly(self):
        pipeline = paper_pipeline()
        ctx = pipeline.make_context(addr=0x40, data=line(5))
        pipeline.execute_all(ctx)
        run_write(pipeline, 0x40, line(6))
        stale = pipeline.stale_subops(ctx)
        pipeline.invalidate(ctx, stale)
        pipeline.execute_all(ctx)
        action = pipeline.commit(ctx)
        assert action.write_data
        engine = pipeline.by_name["encryption"].engine
        assert engine.decrypt(0x40, action.payload) == line(5)
