"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Simulator


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(10)
        yield sim.timeout(5)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert sim.now == 15
    assert p.value == 15


def test_float_delays_quantize_to_integer_ns():
    """The clock is integer-ns: float delays round half-up exactly
    once, at the scheduling boundary, so repeated fractional delays
    can never accumulate float drift."""
    sim = Simulator()

    def proc():
        yield sim.timeout(10)
        yield sim.timeout(5.5)   # -> 6
        yield sim.timeout(0.25)  # -> 0
        yield sim.timeout(0.5)   # -> 1
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert sim.now == 17
    assert isinstance(sim.now, int)
    assert p.value == 17


def test_zero_timeout_runs_same_time():
    sim = Simulator()

    def proc():
        yield sim.timeout(0)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 0.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_processes_interleave_in_time_order():
    sim = Simulator()
    order = []

    def worker(name, delay):
        yield sim.timeout(delay)
        order.append((name, sim.now))

    sim.process(worker("slow", 20))
    sim.process(worker("fast", 5))
    sim.process(worker("mid", 10))
    sim.run()
    assert order == [("fast", 5), ("mid", 10), ("slow", 20)]


def test_event_succeed_wakes_waiter_with_value():
    sim = Simulator()
    ev = sim.event("signal")
    got = []

    def waiter():
        value = yield ev
        got.append((value, sim.now))

    def signaller():
        yield sim.timeout(7)
        ev.succeed("payload")

    sim.process(waiter())
    sim.process(signaller())
    sim.run()
    assert got == [("payload", 7)]


def test_event_double_trigger_is_error():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_wait_on_already_triggered_event():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(99)
    got = []

    def late_waiter():
        yield sim.timeout(3)
        value = yield ev
        got.append(value)

    sim.process(late_waiter())
    sim.run()
    assert got == [99]


def test_process_waits_on_process_return_value():
    sim = Simulator()

    def child():
        yield sim.timeout(4)
        return "done"

    def parent():
        result = yield sim.process(child())
        return (result, sim.now)

    p = sim.process(parent())
    sim.run()
    assert p.value == ("done", 4)


def test_all_of_waits_for_every_child():
    sim = Simulator()

    def parent():
        values = yield sim.all_of([sim.timeout(3, "a"), sim.timeout(9, "b")])
        return (values, sim.now)

    p = sim.process(parent())
    sim.run()
    assert p.value == (["a", "b"], 9)


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def parent():
        values = yield sim.all_of([])
        return values

    p = sim.process(parent())
    sim.run()
    assert p.value == []


def test_all_of_propagates_child_failure():
    """A failed member must fail the whole AllOf — silent swallowing
    of process errors once hid a real bug in the memory controller."""
    sim = Simulator()
    caught = []

    def failing_child():
        yield sim.timeout(1)
        raise ValueError("child exploded")

    def ok_child():
        yield sim.timeout(5)

    def parent():
        try:
            yield sim.all_of([sim.process(failing_child()),
                              sim.process(ok_child())])
        except ValueError as err:
            caught.append(str(err))

    sim.process(parent())
    sim.run()
    assert caught == ["child exploded"]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as err:
            caught.append(str(err))

    sim.process(waiter())
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    p = sim.process(bad())
    sim.run()
    assert p.triggered
    assert isinstance(p._exc, SimulationError)


def test_run_until_limit_stops_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)

    sim.process(proc())
    sim.run(until=30)
    assert sim.now == 30


def test_run_with_stop_event():
    sim = Simulator()
    stop = sim.event()

    def proc():
        yield sim.timeout(5)
        stop.succeed()
        yield sim.timeout(100)

    sim.process(proc())
    sim.run(stop_event=stop)
    assert sim.now <= 6


def test_run_until_with_untriggered_stop_event_advances_clock():
    """A stop_event that never fires must not change run(until=...)
    semantics: the clock still advances to `until` when the heap
    drains early."""
    def make():
        sim = Simulator()

        def proc():
            yield sim.timeout(5)

        sim.process(proc())
        return sim

    plain = make()
    plain.run(until=30)
    with_stop = make()
    with_stop.run(until=30, stop_event=with_stop.event("never"))
    assert plain.now == with_stop.now == 30


def test_run_until_with_triggered_stop_event_keeps_stop_time():
    sim = Simulator()
    stop = sim.event()

    def proc():
        yield sim.timeout(5)
        stop.succeed()
        yield sim.timeout(100)

    sim.process(proc())
    sim.run(until=300, stop_event=stop)
    assert sim.now <= 6


def test_schedule_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim._schedule(-0.5, lambda: None)


def test_timeout_succeeded_early_is_not_double_triggered():
    """succeed() racing a pending timeout completes the event exactly
    once: waiters see the early value, the later timer firing is a
    silent no-op (early wake is legitimate), and a second succeed()
    still raises."""
    sim = Simulator()
    timer = sim.timeout(5, value="late")
    got = []

    def waiter():
        got.append((yield timer))

    sim.process(waiter())
    timer.succeed("early")
    sim.run()
    assert got == ["early"]
    assert timer.value == "early"  # the no-op firing kept the value
    with pytest.raises(SimulationError):
        timer.succeed("again")


def test_all_of_over_already_failed_child():
    sim = Simulator()
    child = sim.event("doomed")
    child.fail(ValueError("pre-failed"))
    caught = []

    def parent():
        try:
            yield sim.all_of([child])
        except ValueError as err:
            caught.append(str(err))

    sim.process(parent())
    sim.run()
    assert caught == ["pre-failed"]


def test_events_counter_tracks_dispatches():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        yield sim.timeout(1)

    sim.process(proc())
    sim.run()
    assert sim.events > 0
