"""Chrome trace-event (Perfetto) exporter: schema and CLI tests."""

import json

from repro.cli import main
from repro.common.config import default_config
from repro.core import NvmSystem
from repro.obs import Tracer, export_chrome_trace, to_chrome_trace
from repro.workloads import WorkloadParams, make_workload


def traced_janus_run(n_txns=6):
    tracer = Tracer(enabled=True)
    system = NvmSystem(default_config(mode="janus"), tracer=tracer)
    workload = make_workload(
        "hash_table", system, system.cores[0],
        WorkloadParams(n_items=16, value_size=64, n_transactions=n_txns),
        variant="manual")
    system.run_programs([workload.run()])
    return tracer


class TestSchema:
    def test_envelope_and_required_fields(self):
        tracer = traced_janus_run()
        doc = to_chrome_trace(tracer.events)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert isinstance(event["ts"], float)
                assert isinstance(event["dur"], float)
                assert event["dur"] >= 0.0

    def test_ns_to_us_conversion(self):
        tracer = Tracer(enabled=True)
        tracer.complete("x", "c", ("p", "t"), start_ns=2000.0,
                        dur_ns=500.0)
        doc = to_chrome_trace(tracer.events)
        span = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
        assert span["ts"] == 2.0 and span["dur"] == 0.5

    def test_track_metadata_records(self):
        tracer = traced_janus_run()
        doc = to_chrome_trace(tracer.events)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        processes = {e["args"]["name"] for e in meta
                     if e["name"] == "process_name"}
        threads = {e["args"]["name"] for e in meta
                   if e["name"] == "thread_name"}
        assert {"bmo", "write-path"} <= processes
        assert "irb" in threads and "core0" in threads

    def test_stable_track_ids(self):
        tracer = Tracer(enabled=True)
        for i in range(3):
            tracer.complete("x", "c", ("p", "t"), float(i), 1.0)
        doc = to_chrome_trace(tracer.events)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len({(e["pid"], e["tid"]) for e in spans}) == 1

    def test_bmo_suboperations_overlap_on_distinct_tracks(self):
        """The Fig. 3 property: concurrent sub-ops of one write are
        visible as overlapping spans on different timeline rows."""
        tracer = traced_janus_run()
        doc = to_chrome_trace(tracer.events)
        bmo = sorted((e for e in doc["traceEvents"]
                      if e["ph"] == "X" and e["cat"] == "bmo"),
                     key=lambda e: e["ts"])
        assert len({e["tid"] for e in bmo}) > 1
        overlaps = any(
            a["tid"] != b["tid"]
            and a["ts"] < b["ts"] + b["dur"]
            and b["ts"] < a["ts"] + a["dur"]
            for i, a in enumerate(bmo) for b in bmo[i + 1:i + 12])
        assert overlaps

    def test_export_writes_valid_json(self, tmp_path):
        tracer = traced_janus_run()
        path = tmp_path / "trace.json"
        text = export_chrome_trace(tracer, str(path))
        assert json.loads(path.read_text()) == json.loads(text)


class TestCli:
    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_run_with_trace_and_stats(self, capsys, tmp_path):
        tpath = tmp_path / "t.json"
        spath = tmp_path / "s.json"
        code, out = self.run_cli(
            capsys, "run", "hash_table", "--mode", "janus",
            "--txns", "6", "--trace", str(tpath), "--stats", str(spath))
        assert code == 0
        assert "perfetto" in out
        trace = json.loads(tpath.read_text())
        assert trace["traceEvents"]
        snap = json.loads(spath.read_text())
        assert snap["schema"] == "repro-stats-v1"
        assert snap["counters"]["irb.hits"] >= 0
        assert snap["counters"]["irb.misses"] >= 0
        assert "wq.occupancy" in snap["histograms"]
        assert any(k.startswith("bmo.subop.")
                   for k in snap["histograms"])
        assert snap["meta"]["workload"] == "hash_table"

    def test_stats_subcommand_single(self, capsys, tmp_path):
        spath = tmp_path / "s.json"
        self.run_cli(capsys, "run", "queue", "--txns", "4",
                     "--stats", str(spath))
        code, out = self.run_cli(capsys, "stats", str(spath))
        assert code == 0
        assert "mc.writebacks" in out

    def test_stats_subcommand_diff(self, capsys, tmp_path):
        a = tmp_path / "serialized.json"
        b = tmp_path / "janus.json"
        self.run_cli(capsys, "run", "queue", "--txns", "4",
                     "--mode", "serialized", "--stats", str(a))
        self.run_cli(capsys, "run", "queue", "--txns", "4",
                     "--mode", "janus", "--stats", str(b))
        code, out = self.run_cli(capsys, "stats", str(a), str(b))
        assert code == 0
        assert "delta:" in out
        # Janus-only counters appear as pure additions.
        assert "irb.hits" in out or "janus.requests" in out


class TestObsV2Events:
    """PR 6: fault/violation instants and time-series counter tracks
    land in the Chrome trace alongside the spans."""

    def test_timeseries_counter_tracks_in_trace(self, capsys, tmp_path):
        tpath = tmp_path / "t.json"
        code = main(["run", "hash_table", "--mode", "janus",
                     "--txns", "6", "--trace", str(tpath),
                     "--timeseries", "500",
                     "--timeseries-out", str(tmp_path / "ts.jsonl")])
        capsys.readouterr()
        assert code == 0
        doc = json.loads(tpath.read_text())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert any(n.startswith("ts:") for n in names)
        assert "ts:wq.accepted" in names
        # Counter samples carry the sampled value for Perfetto's
        # counter-track rendering.
        sample = [e for e in counters
                  if e["name"] == "ts:wq.accepted"][-1]
        assert "wq.accepted" in sample["args"]

    def test_violation_instant_round_trips(self):
        tracer = Tracer(enabled=True)
        tracer.instant("violation:wq-duplicate", "validate",
                       ("validate", "mem"), ts_ns=120.0,
                       args={"invariant": "wq-duplicate"})
        doc = to_chrome_trace(tracer.events)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants[0]["name"] == "violation:wq-duplicate"
        assert instants[0]["s"] == "t"
        assert instants[0]["args"]["invariant"] == "wq-duplicate"
