"""The coalesced and async-epoch scheduling modes.

Contract under test (``docs/scheduling-modes.md``):

* ``coalesced`` is a pure *timing* optimization — final NVM images
  match the serialized baseline byte-for-byte, and batching shared
  integrity-node charges never makes a run slower than plain
  ``parallel``;
* ``async-epoch`` relaxes durability to epoch granularity — completed
  runs still match the baseline (``run_programs`` quiesces the open
  epoch), while a mid-run crash recovers to the last fully-flushed
  epoch boundary with staleness bounded by the dial
  (:func:`repro.validate.oracles.check_bounded_staleness`, the
  satellite torn-epoch campaign).
"""

import argparse

import pytest

from repro.bmo.policy import POLICIES, build_policy
from repro.common.config import (
    ConfigError,
    SchedulingConfig,
    SystemConfig,
    default_config,
)
from repro.common.errors import SimulationError
from repro.harness.runner import run_point
from repro.validate.oracles import (
    check_bounded_staleness,
    check_mode_equivalence,
    check_workload_equivalence,
    run_staleness_crash,
)
from repro.workloads import WorkloadParams

SMALL = WorkloadParams(n_items=12, value_size=64, n_transactions=6)


class TestSchedulingConfig:
    def test_defaults_validate(self):
        default_config(mode="async-epoch")
        default_config(mode="coalesced")

    def test_every_mode_has_a_policy(self):
        assert set(SystemConfig.MODES) == set(POLICIES)

    @pytest.mark.parametrize("field,value", [
        ("epoch_writes", 0),
        ("staleness_epochs", 0),
        ("buffer_ns", -1.0),
    ])
    def test_bad_dials_rejected(self, field, value):
        sched = SchedulingConfig(**{field: value})
        with pytest.raises(ConfigError):
            sched.validate()

    def test_unknown_mode_rejected_by_policy_factory(self):
        cfg = default_config().replace(mode="no-such-mode")

        class FakeController:
            def __init__(self):
                self.cfg = cfg
        with pytest.raises(SimulationError, match="no-such-mode"):
            build_policy(FakeController())


class TestCoalesced:
    def test_final_image_matches_serialized(self):
        ops = [("store", 0, 1), ("store", 1, 2), ("hinted", 2, 3),
               ("store", 0, 4), ("split", 3, 5)]
        check_mode_equivalence(ops, modes=("coalesced",), n_lines=8)

    def test_workload_digest_matches_serialized(self):
        check_workload_equivalence(
            "array_swap", txns=6, items=12, modes=("coalesced",))

    def test_never_slower_than_parallel(self):
        # The discount only ever *removes* charged latency.
        par = run_point("queue", mode="parallel", params=SMALL)
        coal = run_point("queue", mode="coalesced", params=SMALL)
        assert coal.elapsed_ns <= par.elapsed_ns

    def test_batches_and_discounts_are_counted(self):
        res = run_point("btree", mode="coalesced", params=SMALL,
                        cores=2)
        assert res.stats.get("sched.coalesce_batches", 0) > 0
        # With two cores writebacks overlap, so some shared ancestor
        # nodes must have been discounted.
        assert res.stats.get("sched.coalesced_node_updates", 0) > 0


class TestAsyncEpoch:
    def test_completed_run_matches_serialized(self):
        # run_programs closes the open epoch and drains the flusher,
        # so a clean run is fully durable: final-image equivalence.
        check_workload_equivalence(
            "queue", txns=6, items=12, modes=("async-epoch",))

    def test_ops_program_equivalence(self):
        ops = [("store", 0, 1), ("stale", 1, 2, 3), ("store", 2, 4),
               ("swap", 0, 2), ("store", 1, 5)]
        check_mode_equivalence(ops, modes=("async-epoch",), n_lines=8)

    def test_epoch_stats_are_emitted(self):
        res = run_point("hash_table", mode="async-epoch", params=SMALL)
        assert res.stats.get("sched.epochs_closed", 0) >= 1
        assert res.stats["sched.epochs_closed"] == \
            res.stats.get("sched.epochs_flushed", 0)

    @pytest.mark.parametrize("workload",
                             ["array_swap", "queue", "hash_table"])
    def test_torn_epoch_recovery_lands_on_boundary(self, workload):
        # Satellite 4: seeded crash points inside open epochs across
        # three workloads — committed set is a prefix covered by the
        # watermark, digest matches the reference trajectory, zero
        # invariant violations (check=True runs the checkers).
        points = check_bounded_staleness(
            workload, txns=8, items=8,
            crash_fractions=(0.4, 0.75), check=True)
        assert points == 2

    def test_crash_mid_run_demotes_beyond_watermark(self):
        out = run_staleness_crash("array_swap", txns=10, items=8,
                                  crash_fraction=0.5)
        sched = out["scheduling"]
        assert sched["mode"] == "async-epoch"
        flushed = set(sched["flushed_txns"])
        assert set(out["committed"]) <= flushed
        assert not flushed.intersection(out["demoted"])
        assert sched["epochs_closed"] - sched["epochs_flushed"] \
            <= sched["staleness_epochs"]


class TestCliDials:
    def test_scheduling_overrides_thread_into_config(self):
        from repro.cli import _scheduling_overrides
        args = argparse.Namespace(staleness_epochs=4, epoch_writes=16)
        overrides = _scheduling_overrides(args)
        sched = overrides["scheduling"]
        assert (sched.staleness_epochs, sched.epoch_writes) == (4, 16)
        cfg = default_config(mode="async-epoch", **overrides)
        assert cfg.scheduling.staleness_epochs == 4

    def test_no_dials_means_no_overrides(self):
        from repro.cli import _scheduling_overrides
        args = argparse.Namespace(staleness_epochs=None,
                                  epoch_writes=None)
        assert _scheduling_overrides(args) == {}

    def test_dials_shrink_staleness_window(self):
        out = run_staleness_crash("queue", txns=10, items=8,
                                  crash_fraction=0.6,
                                  staleness_epochs=1, epoch_writes=8)
        sched = out["scheduling"]
        assert sched["staleness_epochs"] == 1
        assert sched["epochs_closed"] - sched["epochs_flushed"] <= 1
