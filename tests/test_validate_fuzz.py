"""The seeded stateful fuzz harness (``repro fuzz``).

Covers the deterministic contract (same seed + any job count →
byte-identical reports and repro files), the delta-debugging reducer,
replayability of written repros, and the acceptance-criterion planted
bug: the IRB merge mutation must be found by fuzzing with a minimized
repro of at most 20 ops.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.janus.irb import IntermediateResultBuffer
from repro.validate.fuzz import (
    FuzzCase,
    failure_key,
    generate_cases,
    reduce_case,
    run_case,
    run_fuzz,
)
from repro.validate.fuzz import replay as replay_repro

_HERE = __name__


def buggy_merge(self, existing, incoming):
    """Planted mutation: the entry gains its address but is never
    re-filed into the address indexes (see
    tests/test_validate_invariants.py)."""
    existing.ctx.merge_from(incoming.ctx)
    if existing.line_addr is None and incoming.line_addr is not None:
        existing.line_addr = incoming.line_addr
    if existing.data is None:
        existing.data = incoming.data
    existing.complete = False


def run_batch_with_bug(case_dicts):
    """Worker-side batch runner that plants the merge bug first —
    spawned worker processes do not inherit the parent's monkeypatch."""
    original = IntermediateResultBuffer._merge
    IntermediateResultBuffer._merge = buggy_merge
    try:
        from repro.validate.fuzz import run_batch
        return run_batch(case_dicts)
    finally:
        IntermediateResultBuffer._merge = original


@pytest.fixture
def planted_merge_bug(monkeypatch):
    monkeypatch.setattr(IntermediateResultBuffer, "_merge", buggy_merge)


def _tree(directory):
    return {p.name: p.read_bytes()
            for p in sorted(Path(directory).glob("*.json"))}


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
def test_generated_cases_are_seed_deterministic():
    one = [c.to_dict() for c in generate_cases(9, 20)]
    two = [c.to_dict() for c in generate_cases(9, 20)]
    assert one == two
    other = [c.to_dict() for c in generate_cases(10, 20)]
    assert one != other


def test_case_round_trips_through_json():
    case = generate_cases(4, 8)[0]
    round_trip = FuzzCase.from_dict(
        json.loads(json.dumps(case.to_dict())))
    assert round_trip == case


def test_clean_campaign_finds_nothing():
    report = run_fuzz(cases=8, seed=1, jobs=1, write=False)
    assert report["failures"] == 0
    assert report["cases"] == 8


def test_report_identical_across_job_counts():
    inline = run_fuzz(cases=8, seed=2, jobs=1, write=False)
    sharded = run_fuzz(cases=8, seed=2, jobs=2, write=False)
    assert json.dumps(inline, sort_keys=True) == \
        json.dumps(sharded, sort_keys=True)


def test_repro_files_byte_identical_across_job_counts(
        planted_merge_bug, tmp_path):
    """The acceptance contract for --jobs: same seed, same minimized
    repro bytes, whether inline or sharded over worker processes."""
    dir_inline, dir_sharded = tmp_path / "inline", tmp_path / "sharded"
    run_fuzz(cases=10, seed=3, jobs=1, workloads=(),
             out_dir=str(dir_inline))
    run_fuzz(cases=10, seed=3, jobs=2, workloads=(),
             out_dir=str(dir_sharded),
             worker_fn=f"{_HERE}:run_batch_with_bug")
    inline, sharded = _tree(dir_inline), _tree(dir_sharded)
    assert "fuzz_report.json" in inline
    assert any(name.startswith("repro_") for name in inline)
    assert inline == sharded


# ---------------------------------------------------------------------------
# the planted bug: found, minimized, replayable
# ---------------------------------------------------------------------------
def test_fuzz_finds_planted_bug_with_minimal_repro(planted_merge_bug):
    report = run_fuzz(cases=10, seed=3, jobs=1, workloads=(),
                      write=False)
    assert report["failures"] > 0
    reduced = [entry for entry in report["repros"]
               if "reduced" in entry]
    assert reduced, "no api failure was reduced"
    for entry in reduced:
        assert entry["failure"]["invariant"] == "irb-bijection"
        assert len(entry["reduced"]["ops"]) <= 20
        assert len(entry["reduced"]["ops"]) <= \
            len(entry["case"]["ops"])


def test_reducer_minimizes_to_the_triggering_op(planted_merge_bug):
    case = FuzzCase(
        kind="api", seed=5,
        ops=[("store", 0, 1), ("compute", 300), ("split", 1, 2),
             ("hinted", 2, 3), ("store", 3, 4)],
        params={"n_lines": 4, "threads": 2})
    failure = run_case(case)
    assert failure is not None and failure["class"] == "invariant"
    reduced, runs = reduce_case(case, failure)
    assert runs > 0
    assert len(reduced.ops) == 1 and reduced.ops[0][0] == "split"
    # The reduced case still fails the same way.
    assert failure_key(run_case(reduced)) == failure_key(failure)


def test_written_repro_replays_and_heals(monkeypatch, tmp_path):
    monkeypatch.setattr(IntermediateResultBuffer, "_merge", buggy_merge)
    report = run_fuzz(cases=10, seed=3, jobs=1, workloads=(),
                      out_dir=str(tmp_path))
    repro_files = [p for p in sorted(tmp_path.glob("repro_*.json"))
                   if "reduced" in json.loads(p.read_text())]
    assert repro_files
    target = repro_files[0]
    failure = replay_repro(str(target))
    assert failure is not None and failure["class"] == "invariant"
    monkeypatch.undo()  # fixed code: the repro no longer fails
    assert replay_repro(str(target)) is None


def test_failure_key_distinguishes_classes():
    invariant = {"class": "invariant", "invariant": "irb-bijection"}
    oracle = {"class": "oracle", "detail": "diverged"}
    error = {"class": "exception", "type": "KeyError"}
    keys = {failure_key(f) for f in (invariant, oracle, error)}
    assert len(keys) == 3
    assert failure_key(invariant) == failure_key(dict(invariant))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_fuzz_quick_smoke(capsys):
    assert main(["fuzz", "--quick", "--no-write", "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "fuzz:" in out and "0 failure(s)" in out


def test_cli_fuzz_rejects_unknown_workload(capsys):
    assert main(["fuzz", "--workloads", "nope", "--no-write"]) == 2


def test_cli_fuzz_replay_reports_healthy_repro(tmp_path, capsys):
    case = FuzzCase(kind="api", seed=5, ops=[("store", 0, 1)],
                    params={"n_lines": 4})
    path = tmp_path / "repro_000.json"
    path.write_text(json.dumps({"case": case.to_dict()}))
    assert main(["fuzz", "--replay", str(path)]) == 0
    assert "no longer fails" in capsys.readouterr().out
