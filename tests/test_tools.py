"""Tests for the §6 tooling: misuse detection and window estimation."""

import pytest

from repro.common.config import default_config
from repro.compiler.window import (
    WindowEstimate,
    estimate_windows,
    render_report,
)
from repro.core import NvmSystem
from repro.janus.misuse import diagnose
from repro.workloads import WORKLOADS, WorkloadParams, make_workload
from repro.workloads.registry import plan_for


def run_system(workload="array_swap", variant="manual", n_txns=8,
               program=None):
    cfg = default_config(mode="janus")
    system = NvmSystem(cfg)
    if program is not None:
        system.run_programs([program(system)])
        return system, None
    wl = make_workload(workload, system, system.cores[0],
                       WorkloadParams(n_items=16, value_size=64,
                                      n_transactions=n_txns),
                       variant=variant)
    system.run_programs([wl.run()])
    return system, wl


class TestMisuseDetection:
    def test_non_janus_system_reports_empty(self):
        system = NvmSystem(default_config(mode="serialized"))
        report = diagnose(system)
        assert report.findings == [] and report.requests == 0

    def test_well_instrumented_workload_is_mostly_clean(self):
        system, _ = run_system("array_swap", "manual")
        report = diagnose(system)
        assert report.waste_ratio < 0.2
        assert not any(f.kind == "useless" and f.severity == "warn"
                       for f in report.findings)

    def test_stale_data_misuse_detected(self):
        def buggy(system):
            core = system.cores[0]
            addr = system.heap.alloc_line(64)
            obj = core.api.pre_init()
            # Misuse: pre-execute one value...
            yield from core.api.pre_both(obj, addr, b"\x01" * 64)
            yield from core.compute(4000)
            # ...then write a different one.
            yield from core.store(addr, b"\x02" * 64)
            yield from core.persist(addr, 64)

        system, _ = run_system(program=buggy)
        report = diagnose(system)
        stale = [f for f in report.findings if f.kind == "stale-input"]
        assert stale and stale[0].severity == "warn"
        assert "guideline 1" in stale[0].guideline

    def test_useless_preexecution_detected(self):
        def buggy(system):
            core = system.cores[0]
            obj = core.api.pre_init()
            # Misuse: pre-execute writes that never happen.
            for i in range(8):
                addr = system.heap.alloc_line(64)
                yield from core.api.pre_both(obj, addr,
                                             bytes([i]) * 64)
            yield from core.compute(4000)

        system, _ = run_system(program=buggy)
        report = diagnose(system)
        useless = [f for f in report.findings if f.kind == "useless"]
        assert useless
        assert report.waste_ratio > 0.9

    def test_short_window_detected(self):
        def rushed(system):
            core = system.cores[0]
            addr = system.heap.alloc_line(64)
            data = b"\x03" * 64
            obj = core.api.pre_init()
            # Misuse: pre-execute immediately before the write.
            yield from core.api.pre_both(obj, addr, data)
            yield from core.store(addr, data)
            yield from core.persist(addr, 64)

        system, _ = run_system(program=rushed)
        report = diagnose(system)
        short = [f for f in report.findings
                 if f.kind == "short-window"]
        assert short and short[0].count >= 1
        assert "guideline 3" in short[0].guideline

    def test_render_mentions_every_finding(self):
        system, _ = run_system("tatp", "manual")
        report = diagnose(system)
        text = report.render()
        assert "line-ops issued" in text
        for finding in report.findings:
            assert finding.kind in text


class TestWindowEstimation:
    def graph(self):
        from repro.bmo import build_pipeline
        return build_pipeline(default_config()).graph

    def test_estimates_exist_for_auto_plan(self):
        cls = WORKLOADS["array_swap"]
        estimates = estimate_windows(cls.template(),
                                     plan_for(cls, "auto"),
                                     self.graph())
        assert estimates
        assert all(isinstance(e, WindowEstimate) for e in estimates)

    def test_early_hooks_have_bigger_windows(self):
        cls = WORKLOADS["array_swap"]
        estimates = estimate_windows(cls.template(),
                                     plan_for(cls, "auto"),
                                     self.graph())
        by_hook = {}
        for estimate in estimates:
            by_hook.setdefault(estimate.hook, []).append(estimate)
        if "entry" in by_hook and "after_read" in by_hook:
            assert max(e.window_ns for e in by_hook["entry"]) >= \
                max(e.window_ns for e in by_hook["after_read"])

    def test_addr_directives_need_less_than_both(self):
        cls = WORKLOADS["array_swap"]
        estimates = estimate_windows(cls.template(),
                                     plan_for(cls, "auto"),
                                     self.graph())
        addr = [e.required_ns for e in estimates if e.kind == "addr"]
        data = [e.required_ns for e in estimates if e.kind == "data"]
        assert addr and data
        # Address-only work (E1-E2, 42 ns) is far below the data side
        # (MD5-dominated).
        assert min(addr) < min(data)

    def test_array_swap_main_windows_sufficient(self):
        cls = WORKLOADS["array_swap"]
        estimates = estimate_windows(cls.template(),
                                     plan_for(cls, "auto"),
                                     self.graph())
        main = [e for e in estimates if e.obj in ("item_i", "item_j")]
        assert main
        assert all(e.sufficient for e in main)

    def test_render_report_shape(self):
        cls = WORKLOADS["hash_table"]
        text = render_report(cls.template(), plan_for(cls, "auto"),
                             self.graph())
        assert "window estimate" in text
        assert "windows sufficient" in text

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_workload_template_estimable(self, name):
        cls = WORKLOADS[name]
        text = render_report(cls.template(), plan_for(cls, "auto"),
                             self.graph())
        assert cls.name in text
