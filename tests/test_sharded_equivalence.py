"""Sharded-topology differential campaign (docs/sharding.md).

The contract under test: **sharding is a timing-only relaxation**.
For every workload kernel, every scheduling mode, and every shard
count, the recovered logical structure is byte-identical to the
unsharded serialized reference — the shard router, per-shard write
queues/IRBs/policies, and the cross-shard sfence barrier never change
what crashes can observe, only when events happen.

Every run executes with the invariant checker attached, so the sweep
also proves per-shard irb-bijection / wq-epoch-order / merkle-root
and the cross-shard sfence-barrier invariant hold throughout.
"""

import pytest

from repro.common.config import default_config
from repro.core import NvmSystem
from repro.validate.oracles import (
    check_bounded_staleness,
    check_workload_equivalence,
    run_workload_digest,
)
from repro.workloads import WORKLOADS

SHARDS = (1, 2, 4)
ALL_MODES = ("serialized", "parallel", "janus", "ideal",
             "coalesced", "async-epoch")


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_all_modes_all_shard_counts_recover_identically(workload):
    """Every mode x shard count recovers to the unsharded serialized
    reference image — the full 7-workload differential campaign."""
    check_workload_equivalence(workload, txns=5, items=8,
                               modes=ALL_MODES, shards=SHARDS,
                               check=True)


@pytest.mark.parametrize("shards", (2, 4))
def test_sharded_digest_matches_unsharded(shards):
    """Direct digest equality, no oracle plumbing in between."""
    reference = run_workload_digest("serialized", "hash_table",
                                    txns=5, items=8)
    candidate = run_workload_digest("serialized", "hash_table",
                                    txns=5, items=8, shards=shards)
    assert candidate == reference


@pytest.mark.parametrize("shards", SHARDS)
def test_async_epoch_bounded_staleness_sharded(shards):
    """Crashed async-epoch runs land on the cross-shard consistent
    cut and respect the per-shard staleness bound."""
    points = check_bounded_staleness("hash_table", txns=8, items=8,
                                     shards=shards)
    assert points >= 3


@pytest.mark.parametrize("shards", (2, 4))
def test_sharded_topology_construction(shards):
    """The sharded machine builds one controller / queue / device /
    engine per shard, with shard 0 aliased to the legacy names."""
    system = NvmSystem(default_config(shards=shards))
    assert len(system.controllers) == shards
    assert len(system.write_queues) == shards
    assert len(system.devices) == shards
    assert len(system.janus_engines) == shards
    assert system.controller is system.controllers[0]
    assert system.write_queue is system.write_queues[0]
    assert system.device is system.devices[0]
    assert system.janus is system.janus_engines[0]
    # Stats scopes are per shard; shard 0 keeps the legacy names only
    # on the unsharded machine.
    assert system.scope_name("mc", 0) == "mc0"
    assert system.scope_name("wq", 1) == "wq1"


def test_unsharded_topology_keeps_legacy_scope_names():
    system = NvmSystem(default_config())
    assert len(system.controllers) == 1
    assert system.scope_name("mc", 0) == "mc"
    assert system.scope_name("irb", 0) == "irb"


@pytest.mark.parametrize("shards", (2, 4))
def test_router_consistent_with_controllers(shards):
    system = NvmSystem(default_config(shards=shards))
    for addr in range(0, 64 * 64, 64):
        sid = system.router.shard_of(addr)
        assert system.controller_for(addr) is system.controllers[sid]
        assert system.write_queue_for(addr) is \
            system.write_queues[sid]
