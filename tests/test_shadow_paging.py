"""Tests for shadow-paging crash consistency."""

import pytest

from repro.common.config import default_config
from repro.common.errors import SimulationError
from repro.consistency import recover
from repro.consistency.shadow import ShadowObject
from repro.core import NvmSystem


def make(mode="serialized", object_bytes=128, initial=b"v0"):
    system = NvmSystem(default_config(mode=mode))
    obj = ShadowObject(system.cores[0], object_bytes, initial=initial)
    return system, obj


def drive(system, gen):
    proc = system.sim.process(gen)
    system.sim.run(stop_event=proc)
    if proc._exc:
        raise proc._exc
    return proc.value


def pad(data, n=128):
    return data.ljust(n, b"\x00")


class TestFunctional:
    def test_initial_contents_readable(self):
        system, obj = make(initial=b"hello")
        assert drive(system, obj.read()) == pad(b"hello")

    def test_update_switches_contents(self):
        system, obj = make()
        drive(system, obj.update(pad(b"v1")))
        assert drive(system, obj.read()) == pad(b"v1")
        assert obj.versions_retired == 1

    def test_updates_allocate_fresh_then_reclaim(self):
        system, obj = make()
        bases = {obj.current_base()}
        for i in range(4):
            drive(system, obj.update(pad(bytes([i + 1]) * 8)))
            bases.add(obj.current_base())
        assert len(bases) >= 2  # versions move (freed slots may reuse)

    def test_wrong_size_rejected(self):
        system, obj = make()
        with pytest.raises(SimulationError):
            drive(system, obj.update(b"short"))


class TestCrashConsistency:
    def test_crash_before_switch_keeps_old_version(self):
        system, obj = make()
        stop = system.sim.event("stop")

        def prog():
            # Write a shadow but crash before the root switch.
            shadow = system.heap.alloc_line(obj.object_bytes)
            yield from system.cores[0].store(shadow, pad(b"half-done"))
            yield from system.cores[0].persist(shadow,
                                               obj.object_bytes)
            stop.succeed()

        system.sim.process(prog())
        system.sim.run(stop_event=stop)
        state = recover(system.crash(), verify_macs=True)
        assert obj.recover_contents(state) == pad(b"v0")

    def test_crash_after_switch_shows_new_version(self):
        system, obj = make()
        stop = system.sim.event("stop")

        def prog():
            yield from obj.update(pad(b"v1"))
            stop.succeed()

        system.sim.process(prog())
        system.sim.run(stop_event=stop)
        state = recover(system.crash(), verify_macs=True)
        assert obj.recover_contents(state) == pad(b"v1")

    @pytest.mark.parametrize("crash_at", [100.0, 900.0, 2500.0,
                                          7000.0])
    def test_arbitrary_crash_yields_some_complete_version(self,
                                                          crash_at):
        system, obj = make(mode="janus")
        versions = [pad(bytes([v]) * 16) for v in range(1, 6)]

        def prog():
            for version in versions:
                yield from obj.update(version)

        system.sim.process(prog())
        system.sim.run(until=crash_at)
        state = recover(system.crash(), verify_macs=True)
        recovered = obj.recover_contents(state)
        assert recovered in [pad(b"v0")] + versions


class TestJanusSynergy:
    def test_pre_execution_accelerates_shadow_updates(self):
        def run(mode, pre_execute):
            system, obj = make(mode=mode, object_bytes=256)

            def prog():
                for i in range(6):
                    yield from obj.update(
                        pad(bytes([i + 1]) * 32, 256),
                        pre_execute=pre_execute)

            return drive(system, prog()) or system.sim.now

        t_serialized = run("serialized", pre_execute=False)
        t_janus = run("janus", pre_execute=True)
        # Shadow paging is the best case: both inputs known at
        # allocation time, so nearly all BMO latency hides.
        assert t_serialized / t_janus > 1.8

    def test_fully_pre_executed_shadow_writes(self):
        system, obj = make(mode="janus", object_bytes=128)

        def prog():
            yield from obj.update(pad(b"new"), pre_execute=True)

        drive(system, prog())
        stats = system.janus.stats
        assert stats.counters["fully_pre_executed"].value >= 2
