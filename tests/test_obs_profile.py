"""Tests for the deterministic simulation profiler (repro.obs.profile)."""

import json

from repro.harness.runner import run_point
from repro.obs.profile import (
    SimProfiler,
    classify_callback,
    component_rows,
    fold_spans,
    folded_stacks_text,
    normalize_event_name,
    profile_report,
    render_hotspots,
)
from repro.obs.tracer import Tracer
from repro.sim import Simulator
from repro.workloads import WorkloadParams


class TestNormalization:
    def test_strips_call_arguments(self):
        assert normalize_event_name("timeout(15.0)") == "timeout"

    def test_drops_numeric_tokens(self):
        assert normalize_event_name("clwb:0x180") == "clwb"
        assert normalize_event_name("line:128") == "line"

    def test_strips_trailing_instance_digits(self):
        assert normalize_event_name("program0") == "program"
        assert normalize_event_name("core3") == "core"

    def test_keeps_meaningful_tokens(self):
        assert normalize_event_name("subop:aes") == "subop:aes"

    def test_all_digit_token_survives_as_itself(self):
        # rstrip of a pure-numeric token must not produce "".
        assert normalize_event_name("x:") == "x"

    def test_classify_timeout_and_process(self):
        sim = Simulator()
        timeout = sim.timeout(5.0)
        key = classify_callback(timeout._fire)
        assert key == "timeout"

        def gen():
            yield sim.timeout(1.0)

        proc = sim.process(gen(), name="program0")
        assert classify_callback(proc._step) == "process:program"
        sim.run()


class TestSimProfiler:
    def test_counts_every_dispatch(self):
        sim = Simulator()
        sim.profile = SimProfiler()

        def gen():
            for _ in range(5):
                yield sim.timeout(1.0)

        sim.process(gen(), name="worker1")
        sim.run()
        assert sim.profile.total_events == sim.events
        counts = {row["key"]: row["count"]
                  for row in sim.profile.rows()}
        assert counts["timeout"] == 5
        # initial step + 5 resumes via _resume -> _step is bound to
        # the process; classified under one stable key.
        assert counts["process:worker"] >= 1

    def test_rows_ranked_by_count_then_key(self):
        profiler = SimProfiler()
        profiler.dispatch = {"b": [3, 0], "a": [3, 0], "c": [9, 0]}
        assert [r["key"] for r in profiler.rows()] == ["c", "a", "b"]

    def test_wall_ns_accumulates(self):
        sim = Simulator()
        ticks = iter(range(0, 1000, 10))
        sim.profile = SimProfiler(clock=lambda: next(ticks))
        sim.timeout(1.0)
        sim.run()
        assert sim.profile.total_wall_ns > 0


def _span(name, track, ts, dur):
    return {"name": name, "cat": "t", "ph": "X", "ts": ts,
            "dur": dur, "track": track}


class TestFoldSpans:
    def test_containment_nests(self):
        events = [
            _span("outer", ("p", "t"), 0.0, 100.0),
            _span("inner", ("p", "t"), 10.0, 30.0),
        ]
        folded, frames = fold_spans(events)
        assert folded["p;t;outer"] == 70.0
        assert folded["p;t;outer;inner"] == 30.0
        assert frames[("p", "t", "outer")] == [1, 100.0, 70.0]

    def test_overlap_is_sibling_not_child(self):
        # Two concurrent spans that merely overlap must not nest.
        events = [
            _span("a", ("p", "t"), 0.0, 50.0),
            _span("b", ("p", "t"), 30.0, 50.0),
        ]
        folded, _frames = fold_spans(events)
        assert folded["p;t;a"] == 50.0
        assert folded["p;t;b"] == 50.0
        assert "p;t;a;b" not in folded

    def test_tracks_are_independent(self):
        events = [
            _span("x", ("p1", "t"), 0.0, 10.0),
            _span("x", ("p2", "t"), 0.0, 10.0),
        ]
        folded, frames = fold_spans(events)
        assert folded == {"p1;t;x": 10.0, "p2;t;x": 10.0}
        assert len(frames) == 2

    def test_non_span_events_ignored(self):
        events = [
            {"name": "i", "ph": "i", "ts": 1.0, "track": ("p", "t")},
            {"name": "c", "ph": "C", "ts": 1.0, "track": ("p", "t"),
             "args": {"v": 1}},
        ]
        folded, frames = fold_spans(events)
        assert folded == {} and frames == {}

    def test_folded_text_format(self):
        text = folded_stacks_text({"p;t;a": 10.4, "p;t;a;b": 5.6,
                                   "p;t;zero": 0.2})
        lines = text.splitlines()
        # One "stack weight" pair per line, integer weights, sorted,
        # zero-rounding paths dropped — the flamegraph.pl contract.
        assert lines == ["p;t;a 10", "p;t;a;b 6"]
        for line in lines:
            stack, _sep, weight = line.rpartition(" ")
            assert stack and int(weight) > 0

    def test_component_rows_ranked_by_self(self):
        rows = component_rows({
            ("p", "t", "cold"): [1, 5.0, 5.0],
            ("p", "t", "hot"): [2, 50.0, 40.0],
        })
        assert [r["name"] for r in rows] == ["hot", "cold"]
        assert rows[0]["count"] == 2


class TestProfileReport:
    def _run(self):
        tracer = Tracer(enabled=True)
        profiler = SimProfiler()
        result = run_point(
            "queue", mode="janus", profiler=profiler, tracer=tracer,
            params=WorkloadParams(n_transactions=4))
        return profile_report(profiler, tracer, meta={
            "workload": "queue", "mode": "janus",
            "elapsed_ns": result.elapsed_ns}), profiler

    def test_report_is_deterministic_and_wall_free(self):
        first, _ = self._run()
        second, _ = self._run()
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)
        assert "wall" not in json.dumps(first)

    def test_report_shape(self):
        report, profiler = self._run()
        assert report["schema"] == "repro-profile-v1"
        assert report["meta"]["dispatched_events"] == \
            profiler.total_events
        assert report["dispatch"][0]["count"] >= \
            report["dispatch"][-1]["count"]
        assert report["components"], "janus run must produce spans"
        top = report["components"][0]
        assert top["self_ns"] <= top["cum_ns"]
        assert report["folded"].splitlines()

    def test_render_hotspots_table(self):
        report, profiler = self._run()
        table = render_hotspots(report, profiler, top=5)
        assert "repro profile" in table
        assert "self sim-ns" in table
        assert "wall-clock is host-measured" in table
