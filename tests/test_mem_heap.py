"""Tests for the NVM heap allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AllocationError
from repro.mem import NvmHeap


def test_alloc_returns_aligned_addresses():
    heap = NvmHeap(base=0, size=4096)
    addr = heap.alloc(10, align=64)
    assert addr % 64 == 0
    addr2 = heap.alloc(10, align=8)
    assert addr2 % 8 == 0


def test_alloc_line_is_cache_line_aligned():
    heap = NvmHeap(base=8, size=4096)
    assert heap.alloc_line(100) % 64 == 0


def test_allocations_do_not_overlap():
    heap = NvmHeap(base=0, size=4096)
    spans = []
    for size in (10, 100, 64, 1, 33):
        addr = heap.alloc(size)
        spans.append((addr, addr + size))
    spans.sort()
    for (a_start, a_end), (b_start, _b_end) in zip(spans, spans[1:]):
        assert a_end <= b_start


def test_exhaustion_raises():
    heap = NvmHeap(base=0, size=128)
    heap.alloc(100)
    with pytest.raises(AllocationError):
        heap.alloc(100)


def test_free_then_realloc_reuses_space():
    heap = NvmHeap(base=0, size=128)
    addr = heap.alloc(128)
    heap.free(addr)
    assert heap.alloc(128) == addr


def test_free_coalesces_neighbours():
    heap = NvmHeap(base=0, size=192)
    a = heap.alloc(64)
    b = heap.alloc(64)
    c = heap.alloc(64)
    heap.free(a)
    heap.free(c)
    heap.free(b)
    # A full-size allocation only fits if the three blocks coalesced.
    assert heap.alloc(192) == 0


def test_double_free_rejected():
    heap = NvmHeap(base=0, size=128)
    addr = heap.alloc(16)
    heap.free(addr)
    with pytest.raises(AllocationError):
        heap.free(addr)


def test_bad_requests_rejected():
    heap = NvmHeap(base=0, size=128)
    with pytest.raises(AllocationError):
        heap.alloc(0)
    with pytest.raises(AllocationError):
        heap.alloc(8, align=3)
    with pytest.raises(AllocationError):
        NvmHeap(base=0, size=0)


def test_owner_of_lookup():
    heap = NvmHeap(base=0, size=4096)
    addr = heap.alloc(100, label="node")
    alloc = heap.owner_of(addr + 50)
    assert alloc is not None and alloc.label == "node"
    assert heap.owner_of(addr + 100) is None or \
        heap.owner_of(addr + 100).addr != addr


@settings(max_examples=30)
@given(ops=st.lists(st.integers(1, 200), min_size=1, max_size=30))
def test_accounting_matches_alloc_history(ops):
    heap = NvmHeap(base=0, size=1 << 16)
    live = []
    for i, size in enumerate(ops):
        addr = heap.alloc(size)
        live.append((addr, size))
        if i % 3 == 2:
            addr, size = live.pop(0)
            heap.free(addr)
    assert heap.bytes_allocated == sum(size for _a, size in live)
    assert len(heap.live_allocations()) == len(live)
