"""Tests for the sim-time metric sampler (repro.obs.timeseries)."""

import json

import pytest

from repro.harness.runner import run_point
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    TimeSeriesSampler,
    load_jsonl,
    prometheus_exposition,
    render_series,
    series_of,
)
from repro.obs.tracer import Tracer
from repro.workloads import WorkloadParams


def _registry():
    registry = MetricsRegistry()
    scope = registry.scope("wq")
    return registry, scope.counter("accepted")


class TestSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(0)

    def test_samples_stamped_at_boundaries(self):
        registry, counter = _registry()
        sampler = TimeSeriesSampler(100.0, registry=registry)
        counter.add(3)
        # Clock jumps straight over several boundaries: one sample per
        # crossed boundary, stamped at the boundary, not at 350.
        sampler.on_advance(350.0)
        assert [s["sim_ns"] for s in sampler.samples] == \
            [100.0, 200.0, 300.0]
        assert all(s["metrics"]["wq.accepted"] == 3
                   for s in sampler.samples)
        assert sampler.next_ns == 400.0

    def test_finish_records_partial_interval_once(self):
        registry, counter = _registry()
        sampler = TimeSeriesSampler(100.0, registry=registry)
        sampler.on_advance(100.0)
        counter.add()
        sampler.finish(142.0)
        sampler.finish(142.0)  # idempotent
        assert [s["sim_ns"] for s in sampler.samples] == [100.0, 142.0]
        assert sampler.samples[-1]["metrics"]["wq.accepted"] == 1

    def test_unbound_sampler_raises(self):
        sampler = TimeSeriesSampler(10.0)
        with pytest.raises(ValueError):
            sampler.on_advance(10.0)

    def test_counter_tracks_emitted_to_tracer(self):
        registry, counter = _registry()
        tracer = Tracer(enabled=True)
        sampler = TimeSeriesSampler(50.0, registry=registry,
                                    tracer=tracer,
                                    counter_tracks=("wq.accepted",))
        counter.add(7)
        sampler.on_advance(50.0)
        counters = [e for e in tracer.events if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "ts:wq.accepted"
        assert counters[0]["args"] == {"wq.accepted": 7}
        assert counters[0]["ts"] == 50.0

    def test_jsonl_round_trip(self, tmp_path):
        registry, counter = _registry()
        sampler = TimeSeriesSampler(10.0, registry=registry,
                                    meta={"workload": "queue"})
        counter.add()
        sampler.on_advance(10.0)
        counter.add()
        sampler.finish(15.0)
        path = tmp_path / "ts.jsonl"
        sampler.write_jsonl(str(path))
        header, samples = load_jsonl(str(path))
        assert header["schema"] == "repro-ts-v1"
        assert header["interval_ns"] == 10.0
        assert header["samples"] == 2
        assert header["workload"] == "queue"
        assert series_of(samples, "wq.accepted") == \
            [(10.0, 1), (15.0, 2)]

    def test_load_rejects_other_files(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"schema": "nope"}) + "\n")
        with pytest.raises(ValueError):
            load_jsonl(str(path))

    def test_render_series_chart_and_missing_metric(self):
        samples = [{"sim_ns": float(t),
                    "metrics": {"wq.accepted": float(t // 10)}}
                   for t in range(0, 100, 10)]
        chart = render_series(samples, "wq.accepted", width=20,
                              height=5)
        assert "wq.accepted" in chart and "*" in chart
        missing = render_series(samples, "no.such")
        assert "no samples" in missing and "wq.accepted" in missing


class TestSimulatorIntegration:
    def _series(self):
        sampler = TimeSeriesSampler(500.0)
        run_point("queue", mode="janus", sampler=sampler,
                  params=WorkloadParams(n_transactions=4))
        return sampler

    def test_byte_identical_across_runs(self):
        assert self._series().to_jsonl() == self._series().to_jsonl()

    def test_sampling_does_not_perturb_the_run(self):
        params = WorkloadParams(n_transactions=4)
        plain = run_point("queue", mode="janus", params=params)
        sampler = TimeSeriesSampler(500.0)
        sampled = run_point("queue", mode="janus", sampler=sampler,
                            params=params)
        # Same event count, same sim time: the sampler rides the
        # dispatch loop instead of scheduling events.
        assert sampled.elapsed_ns == plain.elapsed_ns
        assert sampled.stats == plain.stats
        assert len(sampler.samples) >= 2
        assert sampler.samples[-1]["sim_ns"] == sampled.elapsed_ns


class TestPrometheusExposition:
    def _snapshot(self):
        registry = MetricsRegistry()
        scope = registry.scope("wq")
        scope.counter("accepted").add(5)
        hist = scope.histogram("residency_ns")
        for i in range(10):
            hist.observe(float(i))
        return registry.snapshot()

    def test_counter_and_summary_families(self):
        text = prometheus_exposition(self._snapshot())
        assert "# TYPE repro_wq_accepted counter" in text
        assert "repro_wq_accepted 5" in text
        assert "# TYPE repro_wq_residency_ns summary" in text
        assert "repro_wq_residency_ns_count 10" in text
        assert "repro_wq_residency_ns_sum 45.0" in text
        assert 'quantile="0.95"' in text

    def test_exact_percentiles_carry_no_approximate_label(self):
        text = prometheus_exposition(self._snapshot())
        assert 'approximate="true"' not in text

    def test_reservoir_overflow_marks_approximate(self):
        registry = MetricsRegistry()
        hist = registry.scope("wq").histogram("residency_ns",
                                              reservoir_size=16)
        for i in range(1000):
            hist.observe(float(i))
        text = prometheus_exposition(registry.snapshot())
        assert 'approximate="true"' in text

    def test_labeled_counters_render_prometheus_labels(self):
        registry = MetricsRegistry()
        registry.scope("parallel").counter(
            "tasks_done", labels={"worker": "0"}).add(2)
        text = prometheus_exposition(registry.snapshot())
        assert 'worker="0"' in text
