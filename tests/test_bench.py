"""Tests for the ``repro bench`` performance harness."""

import json

import pytest

from repro.harness import bench
from repro.harness.bench import (
    BENCH_SCHEMA, bench_irb_micro, bench_path, bench_workload, calibrate,
    compare, find_baseline, load_report, write_report,
)


def tiny_report(date="2026-01-01", events_per_sec=1000.0,
                calibration=None):
    meta = {"date": date, "quick": True, "txns": 2, "python": "3.x",
            "platform": "test"}
    if calibration is not None:
        meta["calibration_ops_per_sec"] = calibration
    return {
        "schema": BENCH_SCHEMA,
        "meta": meta,
        "workloads": {
            "hash_table": {"wall_s": 0.1, "events": 100,
                           "events_per_sec": events_per_sec,
                           "sim_ns_per_wall_s": 1.0, "sim_ns": 10,
                           "transactions": 2},
        },
        "irb_micro": {"resident_entries": 8, "ops": 8,
                      "indexed_wall_s": 0.1, "linear_wall_s": 0.2,
                      "indexed_ops_per_sec": 80.0,
                      "linear_ops_per_sec": 40.0, "speedup": 2.0},
        "totals": {"wall_s": 0.1, "events": 100,
                   "events_per_sec": events_per_sec,
                   "sim_ns_per_wall_s": 1.0},
    }


def test_bench_workload_reports_progress_and_events():
    result = bench_workload("hash_table", txns=2)
    assert result["transactions"] >= 2
    assert result["events"] > 0
    assert result["sim_ns"] > 0
    assert result["wall_s"] > 0
    assert result["events_per_sec"] > 0


def test_irb_micro_speedup_meets_acceptance_floor():
    """Acceptance criterion: the indexed IRB is >= 2x faster than the
    linear-scan baseline with >= 256 resident entries."""
    micro = bench_irb_micro(resident=256, ops=1200, repeats=2)
    assert micro["resident_entries"] >= 256
    assert micro["speedup"] >= bench.DEFAULT_MIN_IRB_SPEEDUP


def test_irb_micro_streams_are_deterministic():
    one = bench._irb_op_stream(16, 50)
    two = bench._irb_op_stream(16, 50)
    assert one == two


def test_calibrate_returns_positive_score():
    assert calibrate(target_s=0.005) > 0


def test_write_and_load_report_roundtrip(tmp_path):
    report = tiny_report()
    path = write_report(report, str(tmp_path / "BENCH_2026-01-01.json"))
    assert load_report(path) == report


def test_load_report_rejects_wrong_schema(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text(json.dumps({"schema": "other"}))
    with pytest.raises(ValueError):
        load_report(str(path))


def test_find_baseline_picks_latest_and_honours_exclude(tmp_path):
    for date in ("2026-01-01", "2026-02-01", "2026-03-01"):
        write_report(tiny_report(date=date),
                     str(tmp_path / f"BENCH_{date}.json"))
    latest = find_baseline(str(tmp_path))
    assert latest.endswith("BENCH_2026-03-01.json")
    # Excluding the newest (the report being written) falls back.
    prev = find_baseline(str(tmp_path), exclude=latest)
    assert prev.endswith("BENCH_2026-02-01.json")
    assert find_baseline(str(tmp_path / "empty")) is None


def test_bench_path_uses_date(tmp_path):
    assert bench_path(str(tmp_path), date="2026-08-07").endswith(
        "BENCH_2026-08-07.json")


def test_compare_flags_regression_beyond_threshold():
    baseline = tiny_report(events_per_sec=1000.0)
    ok = tiny_report(events_per_sec=900.0)        # -10%: fine
    bad = tiny_report(events_per_sec=500.0)       # -50%: regression
    assert compare(baseline, ok, threshold=0.25) == []
    # -50% trips both tiers: the workload gate (25% + 15% noise
    # allowance) and the aggregate-total gate (25%).
    regressions = compare(baseline, bad, threshold=0.25)
    assert len(regressions) == 2
    assert any("hash_table" in r for r in regressions)
    assert any(r.startswith("total:") for r in regressions)


def test_compare_tolerates_single_workload_noise():
    """A lone workload swinging -30% (within shared-host noise) must
    not trip the gate while the aggregate total holds up."""
    baseline = tiny_report(events_per_sec=1000.0)
    noisy = tiny_report(events_per_sec=700.0)     # workload: -30%
    noisy["totals"]["events_per_sec"] = 900.0     # total: -10%
    assert compare(baseline, noisy, threshold=0.25) == []


def test_compare_total_gate_catches_broad_slowdown():
    """An across-the-board -30% passes every per-workload check (bar
    is 40%) but must still trip on the aggregate total."""
    baseline = tiny_report(events_per_sec=1000.0)
    slow = tiny_report(events_per_sec=700.0)      # workload and total -30%
    regressions = compare(baseline, slow, threshold=0.25)
    assert len(regressions) == 1
    assert regressions[0].startswith("total:")


def test_compare_normalises_by_calibration():
    """A slower host (half the calibration score, half the events/sec)
    must not read as a code regression."""
    baseline = tiny_report(events_per_sec=1000.0, calibration=2_000_000)
    slower_host = tiny_report(events_per_sec=500.0, calibration=1_000_000)
    assert compare(baseline, slower_host, threshold=0.25) == []
    # But a genuine slowdown on the same host is still caught.
    same_host_slow = tiny_report(events_per_sec=500.0,
                                 calibration=2_000_000)
    assert compare(baseline, same_host_slow, threshold=0.25) != []


def test_compare_skips_missing_workloads():
    baseline = tiny_report()
    current = tiny_report()
    current["workloads"] = {}
    assert compare(baseline, current) == []


def test_render_mentions_totals_and_micro():
    text = bench.render(tiny_report())
    assert "TOTAL" in text
    assert "irb micro" in text
    assert "2.0x" in text
