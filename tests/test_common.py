"""Tests for configuration, units, RNG, stats, and report helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import (
    ConfigError,
    DeterministicRng,
    SystemConfig,
    cycles_to_ns,
    ns_to_cycles,
)
from repro.common.config import (
    DedupConfig,
    JanusConfig,
    ShardingError,
    default_config,
)
from repro.common.units import align_down, align_up, line_span
from repro.harness.report import (
    Table,
    arithmetic_mean,
    format_series,
    geometric_mean,
)
from repro.sim.stats import Counter, Histogram, StatSet


class TestUnits:
    def test_cycle_conversions_roundtrip(self):
        assert cycles_to_ns(ns_to_cycles(10.0, 4.0), 4.0) == \
            pytest.approx(10.0)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_ns(10, 0)

    def test_alignment_helpers(self):
        assert align_down(100) == 64
        assert align_up(100) == 128
        assert align_up(128) == 128
        assert align_down(64) == 64

    def test_line_span_boundaries(self):
        assert list(line_span(0, 64)) == [0]
        assert list(line_span(63, 2)) == [0, 64]
        assert list(line_span(64, 128)) == [64, 128]
        assert list(line_span(0, 0)) == []

    @given(addr=st.integers(0, 10_000), size=st.integers(1, 1000))
    def test_line_span_covers_range(self, addr, size):
        lines = list(line_span(addr, size))
        assert lines[0] <= addr
        assert lines[-1] + 64 >= addr + size
        assert all(b - a == 64 for a, b in zip(lines, lines[1:]))


class TestConfig:
    def test_default_config_validates(self):
        cfg = default_config()
        assert cfg.mode == "janus"
        assert cfg.bmos == ("dedup", "encryption", "integrity")

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            default_config(mode="warp-speed")

    def test_bad_bmo_rejected(self):
        with pytest.raises(ConfigError):
            default_config(bmos=("encryption", "teleportation"))

    def test_duplicate_bmo_rejected(self):
        with pytest.raises(ConfigError):
            default_config(bmos=("encryption", "encryption"))

    def test_bad_dedup_ratio_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(dedup=DedupConfig(target_ratio=1.5)).validate()

    def test_bad_pipeline_fraction_rejected(self):
        with pytest.raises(ConfigError):
            default_config(bmo_unit_pipeline_fraction=0.0)

    def test_janus_resource_scaling(self):
        cfg = JanusConfig(irb_entries=64, resource_scale=2.0)
        assert cfg.scaled("irb_entries") == 128
        cfg = JanusConfig(unlimited_resources=True)
        assert cfg.scaled("irb_entries") > 1_000_000

    def test_replace_produces_new_validated_view(self):
        cfg = default_config()
        other = cfg.replace(cores=4)
        assert other.cores == 4 and cfg.cores == 1

    def test_describe_mentions_mode_and_bmos(self):
        info = default_config().describe()
        assert info["mode"] == "janus"
        assert "dedup" in info["bmos"]


class TestShardingValidation:
    """Construction-time sharding checks (mirrors FaultPlanError:
    every defect reported, not just the first)."""

    def test_valid_sharded_configs_accepted(self):
        for shards in (1, 2, 4, 8):
            cfg = default_config(shards=shards)
            assert cfg.shards == shards
        cfg = default_config(shards=2, shard_interleave_bytes=256)
        assert cfg.shard_interleave_bytes == 256

    def test_non_power_of_two_shards_rejected(self):
        with pytest.raises(ShardingError) as info:
            default_config(shards=3)
        assert any(p["field"] == "shards"
                   for p in info.value.problems)

    def test_zero_and_negative_shards_rejected(self):
        for bad in (0, -2):
            with pytest.raises(ShardingError):
                default_config(shards=bad)

    def test_non_power_of_two_interleave_rejected(self):
        with pytest.raises(ShardingError) as info:
            default_config(shard_interleave_bytes=96)
        assert info.value.problems[0]["field"] == \
            "shard_interleave_bytes"

    def test_sub_line_interleave_rejected(self):
        with pytest.raises(ShardingError) as info:
            default_config(shard_interleave_bytes=32)
        assert "cache line" in info.value.problems[0]["detail"]

    def test_capacity_must_cover_whole_stripes(self):
        from repro.common.config import MemoryConfig
        with pytest.raises(ShardingError) as info:
            SystemConfig(
                shards=4, shard_interleave_bytes=64,
                memory=MemoryConfig(capacity_bytes=64 * 4 * 10 + 64),
            ).validate()
        assert any("full stripe" in p["detail"]
                   for p in info.value.problems)

    def test_all_problems_reported_at_once(self):
        with pytest.raises(ShardingError) as info:
            default_config(shards=3, shard_interleave_bytes=96)
        fields = [p["field"] for p in info.value.problems]
        assert fields == ["shards", "shard_interleave_bytes"]
        # The aggregated message names every problem.
        message = str(info.value)
        assert "2 problems" in message
        assert "shards" in message
        assert "shard_interleave_bytes" in message

    def test_sharding_error_is_config_error(self):
        with pytest.raises(ConfigError):
            default_config(shards=5)


class TestRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7).stream("x")
        b = DeterministicRng(7).stream("x")
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        rng = DeterministicRng(7)
        assert rng.stream("x").random() != rng.stream("y").random()

    def test_fork_changes_streams(self):
        rng = DeterministicRng(7)
        child = rng.fork("core0")
        assert child.stream("x").random() != rng.stream("x").random()

    def test_randbytes_deterministic(self):
        rng = DeterministicRng(1)
        assert rng.randbytes(16) == DeterministicRng(1).randbytes(16)


class TestStats:
    def test_counter(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_histogram_summary(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.mean == pytest.approx(2.0)
        assert h.min == 1.0 and h.max == 3.0
        assert h.percentile(50) == pytest.approx(2.0)
        assert h.percentile(100) == pytest.approx(3.0)

    def test_empty_histogram_safe(self):
        h = Histogram("lat")
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_statset_as_dict(self):
        stats = StatSet()
        stats.counter("hits").add(3)
        stats.histogram("lat").observe(10.0)
        d = stats.as_dict()
        assert d["hits"] == 3
        assert d["lat.mean"] == 10.0


class TestReport:
    def test_table_renders_all_rows(self):
        t = Table("caption", ["a", "b"])
        t.add_row("x", 1.5)
        text = t.render()
        assert "caption" in text and "1.50" in text

    def test_table_rejects_wrong_arity(self):
        t = Table("c", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")

    def test_means(self):
        assert arithmetic_mean([1, 2, 3]) == pytest.approx(2.0)
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([]) == 0.0

    def test_format_series(self):
        text = format_series("s", {"a": 1.5, "b": 2.0})
        assert "a=1.50x" in text
