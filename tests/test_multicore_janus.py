"""Multi-core Janus behaviour: thread privacy, shared resources,
correctness of concurrent transaction streams."""

import pytest

from repro.common.config import default_config
from repro.consistency import recover
from repro.core import NvmSystem
from repro.workloads import WorkloadParams, make_workload


def run_multicore(workload="array_swap", cores=4, mode="janus",
                  variant="manual", n_txns=6):
    system = NvmSystem(default_config(mode=mode, cores=cores))
    params = WorkloadParams(n_items=8, value_size=64,
                            n_transactions=n_txns)
    workloads = [make_workload(workload, system, core, params,
                               variant=variant)
                 for core in system.cores]
    elapsed = system.run_programs([w.run() for w in workloads])
    return system, workloads, elapsed


def test_concurrent_streams_all_complete():
    _system, workloads, _ = run_multicore(cores=4)
    assert all(w.completed_transactions == 6 for w in workloads)


def test_irb_entries_are_thread_private():
    """Core 0's pre-execution results must never serve core 1's
    writes, even to coincidentally equal data."""
    system, _workloads, _ = run_multicore(cores=2)
    # After the run everything is consumed or aged; check counters:
    # every hit was matched under the issuing thread.
    hits = system.janus.irb.stats.counters.get("hits")
    assert hits is not None and hits.value > 0
    # Structural check: match_write with the wrong thread misses.
    from repro.bmo.base import BmoContext
    from repro.janus.irb import IrbEntry
    entry = IrbEntry(pre_id=999, thread_id=0, transaction_id=0,
                     line_addr=0x123400, data=None,
                     ctx=BmoContext(addr=0x123400))
    system.janus.irb.insert(entry)
    assert system.janus.irb.match_write(1, 0x123400, b"") is None
    assert system.janus.irb.match_write(0, 0x123400, b"") is entry


def test_multicore_recovery_consistent_per_core():
    """Crash during a 4-core run: every core's log recovers its own
    transactions independently."""
    system = NvmSystem(default_config(mode="janus", cores=4))
    params = WorkloadParams(n_items=8, value_size=64,
                            n_transactions=8)
    workloads = [make_workload("array_swap", system, core, params,
                               variant="manual")
                 for core in system.cores]
    for w in workloads:
        system.sim.process(w.run())
    system.sim.run(until=9000.0)
    snapshot = system.crash()
    state = recover(snapshot,
                    [(w.log.base, w.log.capacity) for w in workloads])
    # Each core's array still holds its seeded multiset.
    for w in workloads:
        item = w.params.value_size
        recovered = sorted(state.read(w.base + i * item, item)
                           for i in range(8))
        assert len(recovered) == 8
        assert all(len(v) == item for v in recovered)


def test_janus_speedup_survives_on_eight_cores():
    import statistics
    _s, _w, t_ser = run_multicore(cores=8, mode="serialized",
                                  variant="baseline")
    _s, _w, t_jan = run_multicore(cores=8, mode="janus",
                                  variant="manual")
    assert t_ser / t_jan > 1.3


def test_shared_bmo_units_scale_with_cores():
    one = NvmSystem(default_config(mode="janus", cores=1))
    four = NvmSystem(default_config(mode="janus", cores=4))
    assert four.bmo_units.capacity == 4 * one.bmo_units.capacity


def test_janus_queues_scale_with_cores():
    cfg = default_config(mode="janus", cores=4)
    system = NvmSystem(cfg)
    assert system.janus.irb.capacity == \
        cfg.janus.scaled("irb_entries") * 4
