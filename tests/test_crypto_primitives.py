"""Tests for crypto primitives: OTPs, MACs, fingerprints."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import CryptoError
from repro.crypto import FingerprintEngine, derive_otp, mac_of, xor_bytes

LINE = st.binary(min_size=64, max_size=64)


def test_xor_roundtrip():
    a = bytes(range(64))
    b = bytes(reversed(range(64)))
    assert xor_bytes(xor_bytes(a, b), b) == a


def test_xor_length_mismatch_raises():
    with pytest.raises(CryptoError):
        xor_bytes(b"ab", b"abc")


def test_otp_is_deterministic():
    assert derive_otp(b"k", 1, 0x40) == derive_otp(b"k", 1, 0x40)


def test_otp_varies_with_counter_and_address_and_key():
    base = derive_otp(b"k", 1, 0x40)
    assert derive_otp(b"k", 2, 0x40) != base
    assert derive_otp(b"k", 1, 0x80) != base
    assert derive_otp(b"k2", 1, 0x40) != base


def test_otp_length_matches_request():
    assert len(derive_otp(b"k", 1, 0, length=64)) == 64
    assert len(derive_otp(b"k", 1, 0, length=100)) == 100


def test_mac_binds_data_and_counter():
    mac = mac_of(b"cipher", 7)
    assert mac_of(b"cipher", 8) != mac
    assert mac_of(b"ciphex", 7) != mac


@given(data=LINE)
def test_md5_and_crc_fingerprints_are_deterministic(data):
    for algo, bits in (("md5", 128), ("crc32", 32)):
        engine = FingerprintEngine(algo, latency_ns=1.0)
        fp = engine.fingerprint(data)
        assert fp == engine.fingerprint(data)
        assert len(fp) * 8 == bits == engine.bits


def test_unknown_fingerprint_algorithm_rejected():
    with pytest.raises(CryptoError):
        FingerprintEngine("sha9000", latency_ns=1.0)


@given(a=LINE, b=LINE)
def test_fingerprint_equality_tracks_data_equality_md5(a, b):
    engine = FingerprintEngine("md5", latency_ns=1.0)
    if a == b:
        assert engine.fingerprint(a) == engine.fingerprint(b)
    else:
        # MD5 collisions on 64-byte random inputs are unobservable.
        assert engine.fingerprint(a) != engine.fingerprint(b)
