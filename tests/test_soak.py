"""The multi-cycle soak harness: determinism and report identity.

The soak report is a committed artifact, so its bytes are part of the
contract: the same config must render byte-identically regardless of
``jobs`` (submission-order merge over the parallel executor) and
across repeated runs (no wall-clock, no unseeded randomness).
"""

import json

from repro.harness.soak import (
    ROTATION,
    SoakConfig,
    render_json,
    render_summary,
    run_soak,
    summarise,
)

CONFIG = dict(workloads=("queue",), modes=("serialized", "janus"),
              cycles=4, txns_per_cycle=6, seed=7)


def small_config():
    return SoakConfig(**CONFIG)


class TestDeterminism:
    def test_same_seed_same_bytes_and_jobs_invariance(self):
        first = render_json(run_soak(small_config(), jobs=1))
        again = render_json(run_soak(small_config(), jobs=1))
        fanned = render_json(run_soak(small_config(), jobs=2))
        assert first == again
        assert first == fanned

    def test_different_seed_different_campaign(self):
        base = render_json(run_soak(small_config(), jobs=1))
        other = SoakConfig(**{**CONFIG, "seed": 8})
        assert render_json(run_soak(other, jobs=1)) != base


class TestReportContract:
    def test_quick_campaign_is_clean_and_accounted(self):
        report = run_soak(small_config(), jobs=1)
        assert report["violations"] == []
        summary = report["summary"]
        assert summary == summarise(report)
        assert summary["cycles"] == 8
        # Cycle 2 of the rotation is a seeded mid-recovery crash: the
        # quick campaign must exercise re-runnable recovery.
        assert ROTATION[2] == "recovery_crash"
        assert summary["mid_recovery_crashes"] >= 1
        assert summary["idempotence_points"] > 0
        # Every cycle resumed on the recovered image and matched its
        # fault-free twin at the committed-transaction boundary.
        assert summary["recovered"] == 8
        assert summary["digests_ok"] == 8

    def test_cycle_records_carry_lifecycle_evidence(self):
        report = run_soak(small_config(), jobs=1)
        cell = report["cells"]["queue"]["serialized"]
        assert len(cell["cycles"]) == 4
        for record in cell["cycles"]:
            assert record["fault"] in ROTATION
            assert record["result"] == "recovered"
            assert "committed" in record and "digest_ok" in record

    def test_render_json_is_canonical(self):
        report = run_soak(small_config(), jobs=1)
        text = render_json(report)
        assert text.endswith("\n")
        assert json.loads(text) == report
        assert text == json.dumps(report, indent=2,
                                  sort_keys=True) + "\n"

    def test_render_summary_mentions_cells(self):
        report = run_soak(small_config(), jobs=1)
        text = render_summary(report)
        assert "queue" in text
        assert "recovered" in text


class TestShardedSoak:
    """The lifecycle campaign on the sharded machine
    (docs/sharding.md): a lifetime of crash/recover/resume cycles —
    including async-epoch cycles whose per-shard flushers sit at
    different depths at the crash — always recovers onto a
    cross-shard consistent cut, and the report stays byte-identical
    at any job count."""

    def sharded_config(self):
        return SoakConfig(workloads=("queue",),
                          modes=("serialized", "async-epoch"),
                          cycles=3, txns_per_cycle=6, seed=7,
                          shards=2)

    def test_sharded_cells_recover_cleanly(self):
        report = run_soak(self.sharded_config(), jobs=1)
        assert report["violations"] == []
        assert report["config"]["shards"] == 2
        for mode in ("serialized", "async-epoch"):
            cell = report["cells"]["queue"][mode]
            assert cell["recovered"] == 3
            assert cell["digests_ok"] == 3

    def test_sharded_report_byte_identical_at_any_jobs(self):
        inline = render_json(run_soak(self.sharded_config(), jobs=1))
        fanned = render_json(run_soak(self.sharded_config(), jobs=2))
        assert inline == fanned

    def test_unsharded_config_dict_has_no_shards_key(self):
        # Pre-sharding reports must stay byte-identical: the shards
        # knob only appears in the serialised config when != 1.
        assert "shards" not in small_config().to_dict()
        assert self.sharded_config().to_dict()["shards"] == 2
