"""Tests for dependency-graph analysis and static schedules."""

import pytest

from repro.bmo.base import ADDR, DATA, SubOp
from repro.bmo.graph import DependencyGraph
from repro.common.errors import SimulationError


def diamond():
    """A -> B, A -> C, (B, C) -> D with mixed external inputs."""
    return DependencyGraph([
        SubOp("A", "x", 10, external=frozenset({ADDR})),
        SubOp("B", "x", 20, deps=("A",)),
        SubOp("C", "y", 5, deps=("A",), external=frozenset({DATA})),
        SubOp("D", "y", 1, deps=("B", "C")),
    ])


def test_topological_order_respects_deps():
    graph = diamond()
    order = graph.topological_order
    assert order.index("A") < order.index("B")
    assert order.index("A") < order.index("C")
    assert order.index("B") < order.index("D")
    assert order.index("C") < order.index("D")


def test_duplicate_subop_rejected():
    with pytest.raises(SimulationError):
        DependencyGraph([SubOp("A", "x", 1), SubOp("A", "y", 1)])


def test_unknown_dependency_rejected():
    with pytest.raises(SimulationError):
        DependencyGraph([SubOp("A", "x", 1, deps=("ghost",))])


def test_cycle_rejected():
    with pytest.raises(SimulationError):
        DependencyGraph([
            SubOp("A", "x", 1, deps=("B",)),
            SubOp("B", "x", 1, deps=("A",)),
        ])


def test_external_closure_propagates_transitively():
    graph = diamond()
    assert graph.external_requirements("A") == {ADDR}
    assert graph.external_requirements("B") == {ADDR}
    assert graph.external_requirements("C") == {ADDR, DATA}
    assert graph.external_requirements("D") == {ADDR, DATA}


def test_classification_labels():
    graph = diamond()
    labels = graph.classification()
    assert labels == {"A": "addr", "B": "addr", "C": "both", "D": "both"}


def test_runnable_with_addr_only():
    graph = diamond()
    assert graph.runnable_with(frozenset({ADDR})) == ["A", "B"]
    assert graph.runnable_with(frozenset()) == []
    assert set(graph.runnable_with(frozenset({ADDR, DATA}))) == {
        "A", "B", "C", "D"}


def test_runnable_set_is_dependency_closed():
    graph = diamond()
    for inputs in (frozenset({ADDR}), frozenset({DATA}),
                   frozenset({ADDR, DATA})):
        runnable = set(graph.runnable_with(inputs))
        for name in runnable:
            assert set(graph.subops[name].deps) <= runnable


def test_parallelisation_rule_of_paper():
    """S1 || S2 iff no path in either direction (paper section 3.1)."""
    graph = diamond()
    assert graph.can_parallelise({"B"}, {"C"})
    assert not graph.can_parallelise({"A"}, {"B"})
    assert not graph.can_parallelise({"A", "B"}, {"D"})


def test_serial_schedule_sums_latencies():
    graph = diamond()
    schedule = graph.serial_schedule(["x", "y"])
    assert schedule.makespan == pytest.approx(36)
    # BMO-major order: x's ops first.
    assert schedule.end_of("B") <= schedule.start_of("C")


def test_parallel_schedule_overlaps_independent_ops():
    graph = diamond()
    schedule = graph.parallel_schedule(units=2)
    # B (20) and C (5) overlap after A (10); D (1) after both.
    assert schedule.makespan == pytest.approx(31)
    assert schedule.start_of("B") == pytest.approx(10)
    assert schedule.start_of("C") == pytest.approx(10)


def test_parallel_schedule_single_unit_is_serial():
    graph = diamond()
    schedule = graph.parallel_schedule(units=1)
    assert schedule.makespan == pytest.approx(36)


def test_parallel_schedule_with_done_prefix():
    graph = diamond()
    schedule = graph.parallel_schedule(units=2, done={"A", "B"})
    # Only C then D remain: 5 + 1.
    assert schedule.makespan == pytest.approx(6)


def test_parallel_schedule_never_beats_critical_path():
    graph = diamond()
    critical = 10 + 20 + 1  # A -> B -> D
    for units in (1, 2, 3, 8):
        assert graph.parallel_schedule(units=units).makespan >= critical - 1e-9


def test_schedule_render_contains_all_ops():
    text = diamond().parallel_schedule(units=2).render()
    for name in ("A", "B", "C", "D"):
        assert name in text


def test_zero_units_rejected():
    with pytest.raises(SimulationError):
        diamond().parallel_schedule(units=0)
