"""The parallel sweep executor: determinism, retries, fold-in.

The executor's contract is that sharding a sweep across worker
processes changes *nothing* but wall-clock:

1. figure sweeps and campaign reports are byte-identical at any job
   count (the merged output is assembled in task-submission order);
2. a raising or wedged worker is retried up to the bounded budget and
   then recorded as a failed :class:`TaskResult` — the sweep itself
   never sinks;
3. ``jobs=1`` never spawns a process (inline path, same code route);
4. worker-side metrics fold into the parent registry.

Worker functions used by the process path live at module scope so a
forked child can resolve them by dotted path via ``sys.modules``.
"""

import json
import time

import pytest

from repro.harness.crash_campaign import CampaignConfig, run_campaign
from repro.harness.experiments import fig9_multicore
from repro.harness.parallel import (
    ENV_JOBS,
    ParallelExecutor,
    SweepTask,
    TaskResult,
    resolve_callable,
    resolve_jobs,
    run_task,
)
from repro.obs.metrics import MetricsRegistry

_HERE = __name__  # dotted module path for worker-resolvable fns


# -- worker functions (must be importable from a forked child) ------------
def _double(x):
    return 2 * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _sleepy(seconds, value):
    time.sleep(seconds)
    return value


def _flaky(marker_path, fail_times, value):
    """Fail the first ``fail_times`` calls (counted via a marker file
    so the count survives process boundaries), then succeed."""
    with open(marker_path, "a") as handle:
        handle.write("x\n")
    with open(marker_path) as handle:
        calls = len(handle.readlines())
    if calls <= fail_times:
        raise RuntimeError(f"flaky failure #{calls}")
    return value


def _slow_once(marker_path, sleep_s, value):
    """Sleep long on the first call only (marker file counts attempts
    across process boundaries), then return instantly."""
    with open(marker_path, "a") as handle:
        handle.write("x\n")
    with open(marker_path) as handle:
        calls = len(handle.readlines())
    if calls == 1:
        time.sleep(sleep_s)
    return value


def _tasks(n, fn="_double"):
    return [SweepTask(key=("t", i), fn=f"{_HERE}:{fn}", args=(i,))
            for i in range(n)]


# -- resolution -----------------------------------------------------------
class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "5")
        assert resolve_jobs() == 5

    def test_bad_env_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "many")
        assert resolve_jobs() >= 1

    def test_floor_is_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1

    def test_resolve_callable_rejects_plain_dotted(self):
        with pytest.raises(ValueError):
            resolve_callable("repro.harness.parallel.run_task")


# -- determinism: sweeps are byte-identical at any job count --------------
class TestByteIdenticalMerge:
    def test_fig9_jobs1_vs_jobs4(self):
        kwargs = dict(scale=0.5, core_counts=(1, 2),
                      workloads=["array_swap", "queue"])
        serial = fig9_multicore(jobs=1, **kwargs)
        sharded = fig9_multicore(jobs=4, **kwargs)
        assert serial.rendered == sharded.rendered
        assert serial.data == sharded.data

    def test_campaign_slice_jobs1_vs_jobs4(self):
        config = CampaignConfig(workloads=("array_swap",), points=6,
                                n_transactions=6,
                                fault_scenarios=False)
        serial = run_campaign(config, jobs=1)
        sharded = run_campaign(config, jobs=4)
        text = lambda r: json.dumps(r, indent=2, sort_keys=True)  # noqa: E731
        assert text(serial) == text(sharded)
        assert serial["summary"]["violations"] == 0

    def test_results_in_submission_order(self):
        # Completion order is reversed (later tasks sleep less), but
        # the merged result list must follow submission order.
        delays = [0.20, 0.12, 0.05, 0.01]
        tasks = [SweepTask(key=("d", i), fn=f"{_HERE}:_sleepy",
                           args=(delay, i))
                 for i, delay in enumerate(delays)]
        results = ParallelExecutor(jobs=4).map(tasks)
        assert [r.key for r in results] == [("d", i)
                                            for i in range(len(delays))]
        assert [r.value for r in results] == list(range(len(delays)))


# -- failure handling: retry, then record without sinking -----------------
class TestFailureHandling:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_raising_task_retried_then_recorded(self, jobs):
        registry = MetricsRegistry()
        executor = ParallelExecutor(jobs=jobs, retries=1,
                                    metrics=registry)
        tasks = _tasks(3) + [SweepTask(key=("bad",),
                                       fn=f"{_HERE}:_boom", args=(9,))]
        results = executor.map(tasks)
        assert len(results) == 4
        by_key = {r.key: r for r in results}
        bad = by_key[("bad",)]
        assert not bad.ok
        assert "boom 9" in bad.error
        assert bad.attempts == 2  # retries=1 -> two attempts
        for i in range(3):  # the sweep itself did not sink
            assert by_key[("t", i)].ok
            assert by_key[("t", i)].value == 2 * i
        counters = registry.snapshot()["counters"]
        assert counters["parallel.retries"] == 1
        assert counters["parallel.tasks_failed"] == 1
        assert counters["parallel.tasks_done"] == 3

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_flaky_task_recovers_on_retry(self, jobs, tmp_path):
        marker = tmp_path / f"flaky-{jobs}.marker"
        task = SweepTask(key=("f",), fn=f"{_HERE}:_flaky",
                         args=(str(marker), 1, "ok"))
        results = ParallelExecutor(jobs=jobs, retries=1).map([task] +
                                                             _tasks(2))
        flaky = {r.key: r for r in results}[("f",)]
        assert flaky.ok and flaky.value == "ok"
        assert flaky.attempts == 2

    def test_timed_out_worker_terminated_and_recorded(self):
        registry = MetricsRegistry()
        executor = ParallelExecutor(jobs=2, timeout_s=0.25, retries=1,
                                    metrics=registry)
        tasks = [SweepTask(key=("slow",), fn=f"{_HERE}:_sleepy",
                           args=(30.0, None))] + _tasks(2)
        start = time.perf_counter()
        results = executor.map(tasks)
        assert time.perf_counter() - start < 10.0  # terminated, not joined
        slow = {r.key: r for r in results}[("slow",)]
        assert not slow.ok
        assert slow.error.startswith("TaskTimeout")
        assert slow.attempts == 2
        counters = registry.snapshot()["counters"]
        assert counters["parallel.timeouts"] == 2  # both attempts
        for r in results:
            if r.key != ("slow",):
                assert r.ok

    def test_timeout_once_then_retry_matches_inline_output(self,
                                                           tmp_path):
        """Retry/timeout interplay: a task whose first attempt times
        out and is killed, but whose retry succeeds, must yield the
        same merged results as the inline (jobs=1) run — the timeout
        machinery may cost wall-clock, never output."""
        marker = tmp_path / "slow-once.marker"
        registry = MetricsRegistry()
        executor = ParallelExecutor(jobs=2, timeout_s=1.0, retries=1,
                                    metrics=registry)
        tasks = _tasks(3) + [SweepTask(key=("slow",),
                                       fn=f"{_HERE}:_slow_once",
                                       args=(str(marker), 30.0, "v"))]
        results = executor.map(tasks)
        slow = {r.key: r for r in results}[("slow",)]
        assert slow.ok and slow.value == "v"
        assert slow.attempts == 2  # first attempt was killed
        counters = registry.snapshot()["counters"]
        assert counters["parallel.timeouts"] == 1
        assert counters["parallel.retries"] == 1
        assert counters["parallel.tasks_failed"] == 0

        # Inline reference: pre-seed the marker so the single inline
        # call takes the fast path (jobs=1 ignores timeout_s).
        inline_marker = tmp_path / "inline.marker"
        inline_marker.write_text("x\n")
        inline_tasks = _tasks(3) + [SweepTask(
            key=("slow",), fn=f"{_HERE}:_slow_once",
            args=(str(inline_marker), 30.0, "v"))]
        inline = ParallelExecutor(jobs=1).map(inline_tasks)
        assert [r.key for r in inline] == [r.key for r in results]
        assert [r.value for r in inline] == [r.value for r in results]
        assert [r.ok for r in inline] == [r.ok for r in results]

    def test_map_values_strict_raises_with_context(self):
        executor = ParallelExecutor(jobs=1, retries=0)
        with pytest.raises(RuntimeError, match="boom 0"):
            executor.map_values(_tasks(2, fn="_boom"))

    def test_map_values_non_strict_drops_failures(self):
        executor = ParallelExecutor(jobs=1, retries=0)
        values = executor.map_values(
            _tasks(2) + _tasks(1, fn="_boom"), strict=False)
        assert values == {("t", 0): 0, ("t", 1): 2}


# -- inline path ----------------------------------------------------------
class TestInlinePath:
    def test_jobs1_never_spawns(self, monkeypatch):
        def _no_processes(self, tasks, ctx):
            raise AssertionError("jobs=1 must not take the process path")

        monkeypatch.setattr(ParallelExecutor, "_map_processes",
                            _no_processes)
        results = ParallelExecutor(jobs=1).map(_tasks(3))
        assert [r.value for r in results] == [0, 2, 4]

    def test_single_task_runs_inline_even_with_many_jobs(self,
                                                         monkeypatch):
        monkeypatch.setattr(
            ParallelExecutor, "_map_processes",
            lambda self, tasks, ctx: pytest.fail("spawned for 1 task"))
        results = ParallelExecutor(jobs=8).map(_tasks(1))
        assert results[0].ok and results[0].value == 0

    def test_empty_task_list(self):
        assert ParallelExecutor(jobs=4).map([]) == []


# -- metrics fold-in ------------------------------------------------------
class TestMetricsFold:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_worker_accounting_folds_into_parent(self, jobs):
        registry = MetricsRegistry()
        ParallelExecutor(jobs=jobs, metrics=registry).map(_tasks(5))
        snap = registry.snapshot()
        assert snap["counters"]["parallel.tasks_done"] == 5
        worker_done = sum(
            value for name, value in snap["counters"].items()
            if name.startswith("parallel.worker.tasks_done"))
        assert worker_done == 5
        wall = snap["histograms"]["parallel.task_wall_s"]
        assert wall["count"] == 5

    def test_run_task_never_raises(self):
        result = run_task(SweepTask(key=("x",), fn=f"{_HERE}:_boom",
                                    args=(1,)))
        assert isinstance(result, TaskResult)
        assert not result.ok and "ValueError" in result.error
        assert "boom 1" in result.traceback
