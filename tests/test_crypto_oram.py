"""Tests for the Path ORAM substrate and the ORAM BMO."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bmo.base import BmoContext
from repro.bmo.oram import OramBmo
from repro.common.config import default_config
from repro.common.errors import CryptoError
from repro.crypto.path_oram import PathOram


def make_oram(height=4, slots=4, seed=1):
    return PathOram(height=height, bucket_slots=slots,
                    rng=random.Random(seed))


class TestPathOram:
    def test_write_then_read_roundtrip(self):
        oram = make_oram()
        oram.access(7, b"payload-7")
        assert oram.access(7) == b"payload-7"

    def test_absent_block_reads_none(self):
        oram = make_oram()
        assert oram.access(42) is None

    def test_update_overwrites(self):
        oram = make_oram()
        oram.access(1, b"old")
        oram.access(1, b"new")
        assert oram.access(1) == b"new"

    def test_position_changes_on_access(self):
        """The obliviousness property: every access remaps the block,
        so repeated accesses touch different paths."""
        oram = make_oram(height=6)
        oram.access(5, b"x")
        positions = set()
        for _ in range(20):
            positions.add(oram.position_of(5))
            oram.access(5)
        assert len(positions) > 3

    def test_block_always_findable_on_its_path(self):
        oram = make_oram()
        rnd = random.Random(3)
        for i in range(20):
            oram.access(i, bytes([i]) * 8)
        for _ in range(100):
            block = rnd.randrange(20)
            oram.access(block)
        for i in range(20):
            assert oram.find_block(i) == bytes([i]) * 8

    def test_stash_stays_bounded_under_random_access(self):
        oram = make_oram(height=5, slots=4)
        rnd = random.Random(9)
        for i in range(32):
            oram.access(i, bytes(8))
        worst = 0
        for _ in range(300):
            oram.access(rnd.randrange(32))
            worst = max(worst, oram.stash_size)
        # Z=4 Path ORAM at 32 blocks / 32 leaves keeps a small stash.
        assert worst < 32

    def test_path_nodes_shape(self):
        oram = make_oram(height=3)
        nodes = oram.path_nodes(5)  # 0b101
        assert nodes == [(0, 0), (1, 1), (2, 2), (3, 5)]

    def test_bad_parameters_rejected(self):
        with pytest.raises(CryptoError):
            PathOram(height=0)
        with pytest.raises(CryptoError):
            make_oram().path_nodes(999)

    @settings(max_examples=20)
    @given(ops=st.lists(st.tuples(st.integers(0, 15),
                                  st.binary(min_size=1, max_size=8)),
                        min_size=1, max_size=40))
    def test_last_write_wins_property(self, ops):
        oram = make_oram(height=4)
        latest = {}
        for block, payload in ops:
            oram.access(block, payload)
            latest[block] = payload
        for block, payload in latest.items():
            assert oram.find_block(block) == payload


class TestOramBmo:
    def run_write(self, bmo, addr, data):
        ctx = BmoContext(addr=addr, data=data)
        for op in bmo.subops():
            op.execute(ctx)
        bmo.commit(ctx)
        return ctx

    def test_classification(self):
        from repro.bmo.graph import DependencyGraph
        graph = DependencyGraph(OramBmo().subops())
        labels = graph.classification()
        assert labels["O1"] == "addr"
        assert labels["O2"] == "addr"
        assert labels["O3"] == "both"

    def test_commit_places_block(self):
        bmo = OramBmo()
        self.run_write(bmo, 0x40 * 5, b"\x05" * 64)
        assert bmo.oram.find_block(5) == b"\x05" * 64

    def test_stale_after_conflicting_access(self):
        bmo = OramBmo()
        self.run_write(bmo, 0x40 * 5, b"\x05" * 64)
        ctx = BmoContext(addr=0x40 * 5, data=b"\x06" * 64)
        for op in bmo.subops():
            op.execute(ctx)
        # Another access to block 5 remaps it before our write lands.
        bmo.oram.access(5)
        assert bmo.stale_subops(ctx) == {"O1"}

    def test_oram_in_full_pipeline(self):
        from repro.bmo import build_pipeline
        cfg = default_config(
            bmos=("dedup", "encryption", "integrity", "oram"))
        pipeline = build_pipeline(cfg)
        ctx = pipeline.make_context(addr=0x1000, data=b"\x11" * 64)
        pipeline.execute_all(ctx)
        action = pipeline.commit(ctx)
        assert action.write_data
        # The ORAM tree holds the ciphertext for the block.
        oram = pipeline.by_name["oram"].oram
        block = 0x1000 // 64
        assert oram.find_block(block) == ctx.values["ciphertext"]

    def test_addr_only_preexecution_covers_o1_o2(self):
        from repro.bmo import BmoPipeline
        from repro.bmo.base import ExternalInput
        pipeline = BmoPipeline([OramBmo()])
        runnable = pipeline.graph.runnable_with(
            frozenset({ExternalInput.ADDR}))
        assert runnable == ["O1", "O2"]
