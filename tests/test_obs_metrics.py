"""Tests for the central metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    MetricsScope,
)
from repro.sim.stats import StatSet


class TestHistogramReservoir:
    def test_reservoir_is_bounded(self):
        h = Histogram("lat", reservoir_size=100)
        for i in range(5000):
            h.observe(float(i))
        assert h.count == 5000
        assert len(h._samples) == 100
        # Streaming aggregates still see every sample.
        assert h.min == 0.0 and h.max == 4999.0
        assert h.mean == pytest.approx(2499.5)

    def test_reservoir_percentile_is_representative(self):
        h = Histogram("lat", reservoir_size=256)
        for i in range(10_000):
            h.observe(float(i))
        p50 = h.percentile(50)
        # Uniform input: the sampled median is near the true median.
        assert 3000 < p50 < 7000

    def test_reservoir_is_deterministic(self):
        def build():
            h = Histogram("same-name", reservoir_size=32)
            for i in range(1000):
                h.observe(float(i))
            return h._samples

        assert build() == build()

    def test_small_counts_keep_exact_samples(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 3.0
        assert h.percentile(50) == pytest.approx(2.0)

    def test_discarded_samples_percentile_is_none(self):
        h = Histogram("lat", keep_samples=False)
        h.observe(42.0)
        assert h.count == 1 and h.mean == 42.0
        assert h.percentile(50) is None  # not a silent 0.0

    def test_empty_histogram_percentile_zero(self):
        assert Histogram("lat").percentile(50) == 0.0

    def test_summary_includes_percentiles_when_sampled(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert "p50" in s and "p95" in s and "p99" in s
        assert "p50" not in Histogram("x", keep_samples=False).summary()


class TestHistogramFoldIn:
    """merge_summary / fold tolerance for sparse worker snapshots."""

    def test_empty_worker_summary_is_a_noop(self):
        h = Histogram("lat")
        h.observe(5.0)
        h.merge_summary({"count": 0, "mean": 0.0, "min": 0.0,
                         "max": 0.0})
        assert h.count == 1 and h.min == 5.0 and h.max == 5.0

    def test_single_sample_worker_summary_merges_exactly(self):
        h = Histogram("lat")
        h.merge_summary({"count": 1, "mean": 7.0, "min": 7.0,
                         "max": 7.0})
        s = h.summary()
        assert s["count"] == 1 and s["mean"] == 7.0
        assert s["min"] == 7.0 and s["max"] == 7.0

    def test_summary_missing_min_max_falls_back_to_mean(self):
        h = Histogram("lat")
        h.merge_summary({"count": 3, "mean": 4.0})
        s = h.summary()
        assert s["min"] == 4.0 and s["max"] == 4.0  # never inf

    def test_folded_only_histogram_reports_no_percentiles(self):
        """count > 0 from fold-ins alone must not surface p50=0.0 —
        that reads as a real zero latency."""
        h = Histogram("lat")
        h.merge_summary({"count": 10, "mean": 3.0, "min": 1.0,
                         "max": 5.0})
        s = h.summary()
        assert s["count"] == 10
        assert "p50" not in s and "p95" not in s and "p99" not in s

    def test_fold_does_not_skew_reservoir_admission(self):
        """Algorithm R admission must use the locally-seen count: a
        large folded-in count would otherwise make later local
        samples nearly inadmissible, freezing percentiles on the
        early prefix."""
        plain = Histogram("skew-check", reservoir_size=64)
        folded = Histogram("skew-check", reservoir_size=64)
        folded.merge_summary({"count": 1_000_000, "mean": 0.0,
                              "min": 0.0, "max": 0.0})
        for i in range(2000):
            plain.observe(float(i))
            folded.observe(float(i))
        # Same seed stream + same local sample sequence -> identical
        # reservoirs, regardless of the folded count.
        assert folded._samples == plain._samples
        assert folded.percentile(50) == plain.percentile(50)

    def test_registry_fold_tolerates_empty_histograms(self):
        parent = MetricsRegistry()
        parent.scope("wq").histogram("depth").observe(2.0)
        worker = MetricsRegistry()
        worker.scope("wq").histogram("depth")  # created, never observed
        worker.scope("wq").histogram("burst").observe(9.0)
        parent.fold(worker.snapshot())
        snap = parent.snapshot()
        depth = snap["histograms"]["wq.depth"]
        assert depth["count"] == 1 and depth["min"] == 2.0
        burst = snap["histograms"]["wq.burst"]
        assert burst["count"] == 1
        assert burst["min"] == 9.0 and burst["max"] == 9.0


class TestScope:
    def test_statset_compatibility(self):
        scope = MetricsScope("irb")
        scope.counter("hits").add(3)
        scope.histogram("lat").observe(10.0)
        assert scope.counters["hits"].value == 3
        assert scope.histograms["lat"].count == 1
        d = scope.as_dict()
        assert d["hits"] == 3 and d["lat.mean"] == 10.0

    def test_statset_is_a_scope(self):
        assert isinstance(StatSet("x"), MetricsScope)

    def test_labeled_counters_are_distinct(self):
        scope = MetricsScope("mc")
        scope.counter("writes", labels={"kind": "data"}).add(2)
        scope.counter("writes", labels={"kind": "meta"}).add(5)
        scope.counter("writes").add(1)
        assert scope.counters["writes{kind=data}"].value == 2
        assert scope.counters["writes{kind=meta}"].value == 5
        assert scope.counters["writes"].value == 1

    def test_counter_repr_includes_labels(self):
        c = Counter("hits", labels={"mode": "janus"})
        c.add(2)
        assert repr(c) == "hits{mode=janus}=2"


class TestRegistry:
    def build(self):
        reg = MetricsRegistry()
        reg.scope("irb").counter("hits").add(7)
        reg.scope("irb").counter("misses").add(3)
        reg.scope("mc").histogram("write_ns").observe(100.0)
        reg.scope("mc").histogram("write_ns").observe(300.0)
        return reg

    def test_scope_is_memoized(self):
        reg = MetricsRegistry()
        assert reg.scope("a") is reg.scope("a")

    def test_flat_dict_uses_dotted_paths(self):
        flat = self.build().as_flat_dict()
        assert flat["irb.hits"] == 7
        assert flat["mc.write_ns.mean"] == pytest.approx(200.0)
        assert flat["mc.write_ns.count"] == 2

    def test_snapshot_json_round_trip(self):
        reg = self.build()
        snap = reg.snapshot(meta={"workload": "hash_table"})
        loaded = json.loads(json.dumps(snap))
        assert loaded == snap
        assert loaded["schema"] == "repro-stats-v1"
        assert loaded["counters"]["irb.hits"] == 7
        assert loaded["histograms"]["mc.write_ns"]["count"] == 2
        assert loaded["meta"]["workload"] == "hash_table"

    def test_snapshot_is_point_in_time(self):
        reg = self.build()
        before = reg.snapshot()
        reg.scope("irb").counter("hits").add(100)
        assert before["counters"]["irb.hits"] == 7

    def test_delta(self):
        reg = self.build()
        before = reg.snapshot()
        reg.scope("irb").counter("hits").add(5)
        reg.scope("mc").histogram("write_ns").observe(500.0)
        after = reg.snapshot()
        delta = MetricsRegistry.delta(before, after)
        assert delta["counters"]["irb.hits"] == 5
        assert delta["counters"]["irb.misses"] == 0
        h = delta["histograms"]["mc.write_ns"]
        assert h["count"] == 1
        assert h["mean"] == pytest.approx(500.0)  # mean of new samples

    def test_delta_handles_one_sided_metrics(self):
        a = MetricsRegistry().snapshot()
        reg = MetricsRegistry()
        reg.scope("x").counter("c").add(4)
        delta = MetricsRegistry.delta(a, reg.snapshot())
        assert delta["counters"]["x.c"] == 4

    def test_json_and_csv_export(self, tmp_path):
        reg = self.build()
        jpath = tmp_path / "stats.json"
        text = reg.to_json(str(jpath))
        assert json.loads(jpath.read_text()) == json.loads(text)
        csv_text = reg.to_csv(str(tmp_path / "stats.csv"))
        lines = csv_text.strip().splitlines()
        assert lines[0] == "metric,field,value"
        assert any(line.startswith("irb.hits,count,7") for line in lines)

    def test_adopt_external_scope(self):
        reg = MetricsRegistry()
        legacy = StatSet("legacy")
        legacy.counter("n").add(2)
        reg.adopt("legacy", legacy)
        assert reg.as_flat_dict()["legacy.n"] == 2


class TestExactAggregatesAndApproximateMarking:
    """PR 6 satellite: exact sum alongside the reservoir, and honest
    marking of reservoir-derived percentiles."""

    def test_summary_carries_exact_sum_min_max(self):
        h = Histogram("lat", reservoir_size=8)
        for i in range(100):
            h.observe(float(i))
        s = h.summary()
        assert s["sum"] == sum(range(100))
        assert s["min"] == 0.0 and s["max"] == 99.0
        assert s["count"] == 100

    def test_exact_percentiles_not_marked(self):
        h = Histogram("lat", reservoir_size=128)
        for i in range(50):
            h.observe(float(i))
        s = h.summary()
        assert "approximate" not in s
        assert h.percentiles_approximate is False

    def test_reservoir_eviction_marks_approximate(self):
        h = Histogram("lat", reservoir_size=16)
        for i in range(1000):
            h.observe(float(i))
        s = h.summary()
        assert s["approximate"] is True
        assert h.percentiles_approximate is True

    def test_summary_fold_in_marks_approximate(self):
        target = Histogram("lat", reservoir_size=64)
        target.observe(1.0)
        source = Histogram("lat", reservoir_size=64)
        for i in range(10):
            source.observe(float(i))
        target.merge_summary(source.summary())
        # Folded counts have no samples in this reservoir: percentiles
        # no longer reflect every observation.
        assert target.percentiles_approximate is True
        assert target.summary()["approximate"] is True
        # ...but the exact aggregates folded exactly.
        assert target.summary()["sum"] == 1.0 + sum(range(10))
        assert target.summary()["count"] == 11

    def test_merge_summary_prefers_exact_sum(self):
        target = Histogram("lat")
        target.merge_summary({"count": 3, "mean": 2.0, "sum": 6.5,
                              "min": 1.0, "max": 4.0})
        assert target.total == 6.5

    def test_csv_export_carries_approximate_and_sum(self):
        registry = MetricsRegistry()
        h = registry.scope("wq").histogram("residency_ns",
                                           reservoir_size=8)
        for i in range(100):
            h.observe(float(i))
        rows = registry.to_csv().splitlines()
        fields = {tuple(r.split(",")[:2]) for r in rows[1:]}
        assert ("wq.residency_ns", "approximate") in fields
        assert ("wq.residency_ns", "sum") in fields
