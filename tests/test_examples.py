"""Smoke tests: every example script runs to completion.

Examples are part of the public contract; CI must catch any API drift
that would break them.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=[p.stem for p in EXAMPLES])
def test_example_runs_clean(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "kv_store_recovery",
            "database_transactions", "timeline_demo",
            "custom_bmo", "instrumentation_tools",
            "write_path_analysis"} <= names
