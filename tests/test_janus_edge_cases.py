"""Edge cases of the Janus datapath under adversarial usage."""

import pytest

from repro.bmo import build_pipeline
from repro.bmo.executor import BmoExecutor
from repro.common.config import default_config
from repro.janus import JanusEngine, JanusInterface
from repro.janus.queues import PreExecRequest, PreFunc
from repro.sim import Resource, Simulator


def line(pattern: int) -> bytes:
    return bytes([pattern & 0xFF]) * 64


def make_engine(**janus_overrides):
    import dataclasses
    sim = Simulator()
    cfg = default_config()
    if janus_overrides:
        cfg = cfg.replace(janus=dataclasses.replace(
            cfg.janus, **janus_overrides))
    pipeline = build_pipeline(cfg)
    units = Resource(sim, capacity=4, name="units")
    executor = BmoExecutor(sim, pipeline, units)
    engine = JanusEngine(sim, pipeline, executor, cfg.janus)
    return sim, pipeline, engine


def submit(engine, pre_id, addr, data=None, func=PreFunc.BOTH,
           deferred=False, thread=0, size=None):
    engine.submit(PreExecRequest(
        pre_id=pre_id, thread_id=thread, transaction_id=0, func=func,
        addr=addr, data=data,
        size=size if size is not None
        else (len(data) if data else 64),
        deferred=deferred))


def test_operation_queue_overflow_drops_and_counts():
    sim, pipeline, engine = make_engine(operation_queue_entries=4)
    # One big request decodes into 32 line ops; only 4 admitted.
    submit(engine, 1, 0x10000, b"\x01" * (32 * 64))
    assert engine.stats.counters["ops_admitted"].value == 4
    assert engine.stats.counters["ops_dropped_full"].value == 28
    sim.run()
    # The admitted prefix still completes.
    assert all(e.complete for e in engine.irb.entries())


def test_deferred_request_never_started_never_executes():
    sim, pipeline, engine = make_engine()
    submit(engine, 5, 0x1000, line(1), deferred=True)
    sim.run()
    assert len(engine.irb) == 0
    assert len(engine.request_queue) == 1  # still buffered


def test_request_queue_overflow_discards_oldest_buffered():
    sim, pipeline, engine = make_engine(request_queue_entries=2)
    for i in range(3):
        submit(engine, i + 1, 0x1000 * (i + 1), line(i),
               deferred=True)
    assert engine.request_queue.dropped == 1
    remaining = {r.pre_id for r in engine.request_queue._store
                 .peek_all()}
    assert remaining == {2, 3}


def test_duplicate_pre_both_same_line_merges_not_duplicates():
    sim, pipeline, engine = make_engine()
    submit(engine, 7, 0x2000, line(3))
    submit(engine, 7, 0x2000, line(3))
    sim.run()
    assert len(engine.irb) == 1


def test_conflicting_pre_executions_same_line_different_objects():
    """Two pre_objs target the same line with different data: the
    most recent wins at match time; the loser is simply unused."""
    sim, pipeline, engine = make_engine()
    submit(engine, 1, 0x3000, line(1))
    sim.run()
    submit(engine, 2, 0x3000, line(2))
    sim.run()
    results = []

    def write():
        ctx, fully = yield from engine.service_write(0, 0x3000, line(2))
        results.append((ctx, fully))

    sim.process(write())
    sim.run()
    ctx, fully = results[0]
    assert fully  # matched the newer, correct entry
    action = pipeline.commit(ctx)
    engine_enc = pipeline.by_name["encryption"].engine
    if action.write_data:
        assert engine_enc.decrypt(0x3000, action.payload) == line(2)


def test_interleaved_writes_same_line_stay_correct():
    """Two writes to one line in quick succession: the second's
    pre-executed counter goes stale and must be refreshed."""
    sim, pipeline, engine = make_engine()
    submit(engine, 1, 0x4000, line(1))
    submit(engine, 2, 0x4000, line(2))
    sim.run()
    done = []

    def writes():
        ctx1, _ = yield from engine.service_write(0, 0x4000, line(1))
        pipeline.commit(ctx1)
        ctx2, _ = yield from engine.service_write(0, 0x4000, line(2))
        pipeline.commit(ctx2)
        done.append(True)

    sim.process(writes())
    sim.run()
    assert done
    enc = pipeline.by_name["encryption"]
    assert enc.engine.current_counter(0x4000) == 2


def test_interface_buffered_without_start_is_detectable():
    """Paper §4.6: buffered requests without PRE_START_BUF just sit
    in the FIFO; the misuse machinery sees zero consumption."""
    sim, pipeline, engine = make_engine()
    api = JanusInterface(sim, engine, thread_id=0)
    obj = api.pre_init()

    def prog():
        yield from api.pre_both_buf(obj, 0x5000, line(1), 64)
        yield sim.timeout(100)

    sim.process(prog())
    sim.run()
    assert engine.stats.counters["requests"].value == 1
    assert "ops_admitted" not in engine.stats.counters or \
        engine.stats.counters["ops_admitted"].value == 0


def test_pre_addr_zero_size_probe():
    sim, pipeline, engine = make_engine()
    submit(engine, 9, 0x6000, None, func=PreFunc.ADDR, size=0)
    sim.run()
    assert len(engine.irb) == 1
    assert engine.irb.entries()[0].ctx.completed == {"E1", "E2"}


def test_irb_aging_reclaims_abandoned_entries():
    import dataclasses
    sim, pipeline, engine = make_engine(irb_max_age_ns=500.0)
    submit(engine, 1, 0x7000, line(1))
    sim.run()
    assert len(engine.irb) == 1

    def later():
        yield sim.timeout(1000)

    sim.process(later())
    sim.run()
    engine.irb.match_write(0, 0x9999 * 64, b"")  # triggers expiry scan
    assert len(engine.irb) == 0
    assert engine.irb.stats.counters["expired"].value == 1
