"""Tests for structured run logging (repro.obs.log)."""

import json

import pytest

from repro.obs import log as runlog
from repro.obs.log import RunLog


@pytest.fixture(autouse=True)
def _clean_global_log():
    yield
    runlog.close()


class TestRunLog:
    def test_envelope_and_field_order(self):
        log = RunLog(run_id="r1", seed=7)
        log.event("faults", "injected", sim_ns=120.0, kind="bit_flip",
                  addr=0x40)
        log.event("harness", "done")
        records = log.records()
        assert records[0] == {
            "seq": 0, "component": "faults", "event": "injected",
            "level": "info", "run_id": "r1", "seed": 7,
            "sim_ns": 120.0, "kind": "bit_flip", "addr": 0x40,
        }
        assert records[1]["seq"] == 1
        assert "sim_ns" not in records[1]

    def test_none_fields_are_dropped(self):
        log = RunLog()
        log.event("c", "e", detail=None, kept=1)
        record = log.records()[0]
        assert "detail" not in record and record["kept"] == 1

    def test_min_level_filters(self):
        log = RunLog(min_level="warn")
        log.event("c", "quiet", level="debug")
        log.event("c", "loud", level="error")
        events = [r["event"] for r in log.records()]
        assert events == ["loud"]
        # seq numbers only advance for emitted records, so the log
        # stream stays dense.
        assert log.records()[0]["seq"] == 0

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            RunLog(min_level="verbose")

    def test_lines_are_sorted_key_json(self):
        log = RunLog()
        log.event("c", "e", zebra=1, alpha=2)
        line = log.text().splitlines()[0]
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_path_log_writes_jsonl(self, tmp_path):
        path = tmp_path / "deep" / "run.jsonl"
        log = RunLog(path=str(path))
        log.event("c", "e")
        log.close()
        assert json.loads(path.read_text())["event"] == "e"

    def test_text_unavailable_for_file_logs(self, tmp_path):
        log = RunLog(path=str(tmp_path / "run.jsonl"))
        with pytest.raises(ValueError):
            log.text()
        log.close()


class TestModuleLevelApi:
    def test_event_is_noop_when_unconfigured(self):
        runlog.close()
        runlog.event("c", "e", payload=1)  # must not raise
        assert runlog.current() is None

    def test_configure_install_and_close(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = runlog.configure(path=str(path), run_id="x", seed=3)
        assert runlog.current() is log
        runlog.event("c", "e")
        runlog.close()
        assert runlog.current() is None
        record = json.loads(path.read_text())
        assert record["run_id"] == "x" and record["seed"] == 3

    def test_configure_replaces_and_closes_previous(self, tmp_path):
        first = runlog.configure(path=str(tmp_path / "a.jsonl"))
        runlog.configure(path=str(tmp_path / "b.jsonl"))
        assert runlog.current() is not first
        # first was closed by the second configure
        assert first._stream.closed


class TestWiring:
    def test_run_point_logs_start_and_done(self):
        from repro.harness.runner import run_point
        from repro.workloads import WorkloadParams

        log = runlog.configure(run_id="t", seed=0)
        run_point("queue", mode="janus",
                  params=WorkloadParams(n_transactions=2))
        events = [(r["component"], r["event"]) for r in log.records()]
        assert ("harness.runner", "run_point.start") in events
        assert ("harness.runner", "run_point.done") in events
        done = [r for r in log.records()
                if r["event"] == "run_point.done"][0]
        assert done["sim_ns"] > 0 and done["transactions"] == 2

    def test_fault_injection_logged_with_sim_time(self):
        from repro.common.config import default_config
        from repro.core import NvmSystem
        from repro.faults import FaultInjector, FaultPlan
        from repro.workloads import WorkloadParams, make_workload

        log = runlog.configure(run_id="f", seed=11)
        injector = FaultInjector(
            FaultPlan.seeded(11, ("media_write_flip",)))
        system = NvmSystem(default_config(mode="serialized", seed=11),
                           injector=injector)
        workload = make_workload(
            "queue", system, system.cores[0],
            WorkloadParams(n_transactions=4), variant="baseline")
        system.run_programs([workload.run()])
        injected = [r for r in log.records()
                    if (r["component"], r["event"]) ==
                    ("faults", "injected")]
        assert injected, "seeded plan should fire at least once"
        assert injected[0]["level"] == "warn"
        assert injected[0]["kind"] == "media_write_flip"
        assert "sim_ns" in injected[0]

    def test_invariant_violation_logged_and_traced(self):
        from repro.common.config import default_config
        from repro.core import NvmSystem
        from repro.obs.tracer import Tracer
        from repro.validate import InvariantViolation
        from repro.validate.invariants import InvariantChecker

        log = runlog.configure(run_id="v", seed=0)
        tracer = Tracer(enabled=True)
        system = NvmSystem(default_config(mode="janus"), tracer=tracer)
        checker = InvariantChecker(system)

        def boom(_wq):
            raise InvariantViolation("wq-duplicate", "mem", "dup 0x40")

        checker.check_write_queue = boom
        with pytest.raises(InvariantViolation):
            checker.check_all(full=False)
        records = [r for r in log.records()
                   if r["event"] == "invariant_violation"]
        assert records and records[0]["invariant"] == "wq-duplicate"
        assert records[0]["level"] == "error"
        instants = [e for e in tracer.events
                    if e["ph"] == "i" and
                    e["name"].startswith("violation:")]
        assert instants and instants[0]["cat"] == "validate"
        assert instants[0]["args"]["layer"] == "mem"

    def test_parallel_failures_logged(self):
        from repro.harness.parallel import ParallelExecutor, SweepTask

        log = runlog.configure(run_id="p", seed=0)
        executor = ParallelExecutor(jobs=1, retries=1)
        results = executor.map([SweepTask(
            key=("bad",), fn="repro.harness.parallel:resolve_callable",
            args=("not-a-dotted-path",))])
        assert not results[0].ok
        events = [r["event"] for r in log.records()]
        assert "task_retry" in events
        assert "task_failed" in events

    def test_cli_log_flag_writes_byte_identical_logs(self, tmp_path):
        from repro.cli import main

        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            status = main(["run", "queue", "--mode", "janus",
                           "--txns", "2", "--log", str(path)])
            assert status == 0
        first, second = [p.read_text() for p in paths]
        assert first == second
        records = [json.loads(line)
                   for line in first.splitlines() if line]
        assert records[0]["event"] == "start"
        assert records[0]["run_id"] == "run-queue-janus"
        assert records[-1]["event"] == "exit"
        assert records[-1]["status"] == 0
