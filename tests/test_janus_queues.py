"""Tests for pre-execution queues and the decoder."""

from repro.janus.queues import (
    PreExecRequest,
    PreExecRequestQueue,
    PreFunc,
    decode_request,
)
from repro.sim import Simulator


def request(**kwargs):
    defaults = dict(pre_id=1, thread_id=0, transaction_id=0,
                    func=PreFunc.BOTH)
    defaults.update(kwargs)
    return PreExecRequest(**defaults)


class TestDecoder:
    def test_aligned_full_line_both(self):
        ops = decode_request(request(addr=128, data=b"\xAB" * 64, size=64))
        assert len(ops) == 1
        assert ops[0].line_addr == 128
        assert ops[0].line_data == b"\xAB" * 64

    def test_multi_line_request_splits(self):
        ops = decode_request(request(addr=0, data=b"\x01" * 256, size=256))
        assert [op.line_addr for op in ops] == [0, 64, 128, 192]
        assert all(op.line_data == b"\x01" * 64 for op in ops)

    def test_partial_line_coverage_degrades_to_addr_only(self):
        """Sub-line data cannot feed line-granular fingerprints/XOR."""
        ops = decode_request(request(addr=16, data=b"\xCC" * 8, size=8))
        assert len(ops) == 1
        assert ops[0].line_addr == 0
        assert ops[0].line_data is None

    def test_unaligned_spanning_request(self):
        # 96 bytes starting at offset 32: covers line0 partially,
        # line1 fully (bytes 64..127), line2 empty remainder? 32+96=128
        ops = decode_request(request(addr=32, data=b"\x11" * 96, size=96))
        assert [op.line_addr for op in ops] == [0, 64]
        assert ops[0].line_data is None          # partial coverage
        assert ops[1].line_data == b"\x11" * 64  # full coverage

    def test_addr_only_request(self):
        ops = decode_request(request(func=PreFunc.ADDR, addr=64, size=128))
        assert [op.line_addr for op in ops] == [64, 128]
        assert all(op.line_data is None for op in ops)

    def test_data_only_request_chunks_full_lines(self):
        ops = decode_request(request(func=PreFunc.DATA,
                                     data=b"\x0F" * 130))
        assert len(ops) == 2  # partial 2-byte tail skipped
        assert all(op.line_addr is None for op in ops)
        assert [op.data_seq for op in ops] == [0, 1]

    def test_data_only_smaller_than_line_yields_nothing(self):
        assert decode_request(request(func=PreFunc.DATA, data=b"x" * 8)) == []

    def test_zero_size_with_addr_gives_single_probe(self):
        ops = decode_request(request(func=PreFunc.ADDR, addr=70, size=0))
        assert len(ops) == 1
        assert ops[0].line_addr == 64


class TestRequestQueue:
    def test_immediate_requests_pop_in_fifo_order(self):
        sim = Simulator()
        queue = PreExecRequestQueue(sim, capacity=4)
        queue.submit(request(pre_id=1, addr=0, size=8))
        queue.submit(request(pre_id=2, addr=64, size=8))
        assert queue.pop_ready().pre_id == 1
        assert queue.pop_ready().pre_id == 2
        assert queue.pop_ready() is None

    def test_deferred_requests_wait_for_release(self):
        sim = Simulator()
        queue = PreExecRequestQueue(sim, capacity=4)
        queue.submit(request(pre_id=7, addr=0, size=8, deferred=True))
        assert queue.pop_ready() is None
        released = queue.release_deferred(pre_id=7, thread_id=0)
        assert released == 1
        assert queue.pop_ready().pre_id == 7

    def test_same_line_deferred_requests_coalesce(self):
        sim = Simulator()
        queue = PreExecRequestQueue(sim, capacity=4)
        queue.submit(request(pre_id=3, addr=0, size=8,
                             data=b"\xAA" * 8, deferred=True))
        queue.submit(request(pre_id=3, addr=8, size=8,
                             data=b"\xBB" * 8, deferred=True))
        assert queue.coalesced == 1
        assert len(queue) == 1
        queue.release_deferred(3, 0)
        merged = queue.pop_ready()
        assert merged.addr == 0 and merged.size == 16
        assert merged.data == b"\xAA" * 8 + b"\xBB" * 8

    def test_cross_line_deferred_requests_do_not_coalesce(self):
        sim = Simulator()
        queue = PreExecRequestQueue(sim, capacity=4)
        queue.submit(request(pre_id=3, addr=0, size=8, deferred=True))
        queue.submit(request(pre_id=3, addr=100, size=8, deferred=True))
        assert queue.coalesced == 0
        assert len(queue) == 2

    def test_full_queue_drops_oldest_buffered(self):
        sim = Simulator()
        queue = PreExecRequestQueue(sim, capacity=2)
        for i in range(3):
            queue.submit(request(pre_id=i, addr=i * 4096, size=8,
                                 deferred=True))
        assert queue.dropped == 1
        assert len(queue) == 2
        queue.release_deferred(2, 0)
        # pre_id 0 was the oldest and got dropped.
        remaining = {r.pre_id for r in queue._store.peek_all()}
        assert remaining == {1, 2}
