"""The recovery-idempotence oracle over every workload and mode.

PR 8's tentpole contract: ``recover(crash(recover(s))) == recover(s)``
at *every* instrumented crash point of the recovery path —
``check_recovery_idempotent`` arms a seeded ``recovery_crash`` at each
step 1..N, recovers again from the mutated snapshot + quarantine, and
compares the observable outcome (committed/rolled-back verdicts,
overlay hash, quarantine set) against an uninterrupted reference.

These tests exercise the oracle on a real mid-run power failure for
all seven workloads in both serialized and janus modes, and once more
with live media damage so the heal/poison steps are in the crash set.
"""

import pytest

from repro.harness.crash_campaign import _build
from repro.validate.oracles import check_recovery_idempotent
from repro.workloads import WORKLOADS, WorkloadParams

SEED = 7
PARAMS = WorkloadParams(n_items=8, value_size=64, n_transactions=12)


def crash_snapshot(name, mode, frac=0.6, bmos=None):
    """Run a workload partway, pull the plug, return the snapshot."""
    calib, twin = _build(name, mode, PARAMS, SEED, bmos=bmos)
    horizon = calib.run_programs([twin.run()])
    system, workload = _build(name, mode, PARAMS, SEED, bmos=bmos)
    system.sim.process(workload.run(), name="stream")
    system.sim.run(until=max(1.0, frac * horizon))
    return system.crash(), [(workload.log.base, workload.log.capacity)]


class TestEveryWorkloadEveryMode:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("mode", ["serialized", "janus"])
    def test_idempotent_at_every_crash_point(self, name, mode):
        snapshot, regions = crash_snapshot(name, mode)
        points = check_recovery_idempotent(snapshot, regions,
                                           verify_macs=True)
        assert points > 0


class TestWithMediaDamage:
    def test_idempotent_across_heal_and_poison_steps(self):
        # ECC in the pipeline + a stored-line flip: the reference
        # recovery heals it back, which is one of the two persistent
        # mutations the contract allows — crashes around the heal
        # step must still converge.
        snapshot, regions = crash_snapshot(
            "queue", "serialized",
            bmos=("dedup", "encryption", "integrity", "ecc"))
        codes = snapshot["metadata"].get("ecc", {}).get("codes", {})
        victim = next(a for a in sorted(codes)
                      if a in snapshot["nvm_lines"])
        line = bytearray(snapshot["nvm_lines"][victim])
        line[9] ^= 0x04  # single-bit: correctable, heals on fetch
        snapshot["nvm_lines"][victim] = bytes(line)
        points = check_recovery_idempotent(snapshot, regions,
                                           verify_macs=True)
        assert points > 0
