"""Tests for resources and stores."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Resource, Simulator, Store


def test_resource_serialises_beyond_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2, name="units")
    finish = []

    def job(name):
        yield from res.use(10)
        finish.append((name, sim.now))

    for i in range(4):
        sim.process(job(i))
    sim.run()
    # Two jobs run in [0,10], the next two in [10,20].
    assert finish == [(0, 10), (1, 10), (2, 20), (3, 20)]


def test_resource_release_wakes_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def job(name, think):
        yield sim.timeout(think)
        yield res.acquire()
        order.append(name)
        yield sim.timeout(5)
        res.release()

    sim.process(job("a", 0))
    sim.process(job("b", 1))
    sim.process(job("c", 2))
    sim.run()
    assert order == ["a", "b", "c"]


def test_resource_release_idle_is_error():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_zero_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_utilisation_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def job():
        yield from res.use(50)
        yield sim.timeout(50)

    sim.process(job())
    sim.run()
    assert res.utilisation() == pytest.approx(0.5)


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer():
        yield sim.timeout(1)
        store.put("x")
        store.put("y")
        yield sim.timeout(1)
        store.put("z")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    times = []

    def consumer():
        yield store.get()
        times.append(sim.now)

    def producer():
        yield sim.timeout(42)
        store.put(1)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert times == [42]


def test_bounded_store_drops_new_when_full():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.put(1)
    assert store.put(2)
    assert not store.put(3)
    assert store.dropped == 1
    assert store.peek_all() == [1, 2]


def test_bounded_store_drop_oldest_policy():
    sim = Simulator()
    store = Store(sim, capacity=2, drop_oldest=True)
    store.put(1)
    store.put(2)
    assert store.put(3)
    assert store.peek_all() == [2, 3]
    assert store.dropped == 1


def test_store_remove_specific_item():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    assert store.remove("a")
    assert not store.remove("missing")
    assert store.peek_all() == ["b"]
