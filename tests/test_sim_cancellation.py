"""Regression tests for cancellation-safe simulation primitives.

Two real bugs motivated these:

* a process killed while parked on :meth:`Resource.acquire` used to
  stay in the waiter queue, so the next ``release()`` granted the slot
  to a dead event that could never release it — a permanent capacity
  leak that starved every later acquirer;
* a process killed while parked on :meth:`Store.get` left its getter
  event queued, so a later ``put`` handed the item to the dead event
  and it silently vanished from the pipeline.

Both now withdraw the pending request via ``cancel()`` (driven by the
``use``/``take`` helpers), including the same-instant race where the
grant/item was already handed over when the kill landed.
"""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Resource, Simulator, Store


class Kill(Exception):
    """Fault-injection-flavoured kill delivered via Process.interrupt."""


# -- Resource --------------------------------------------------------------
def test_interrupt_while_waiting_for_slot_does_not_leak_capacity():
    """A dead waiter must not be granted the slot: before the fix the
    queued grant went to the killed process, nobody released it, and
    the late acquirer deadlocked."""
    sim = Simulator()
    res = Resource(sim, capacity=1, name="unit")
    done = []

    def holder():
        yield from res.use(20)
        done.append(("holder", sim.now))

    def victim():
        try:
            yield from res.use(5)
            done.append(("victim-finished", sim.now))
        except Kill:
            done.append(("victim-killed", sim.now))

    def late():
        yield sim.timeout(10)
        yield from res.use(5)
        done.append(("late", sim.now))

    sim.process(holder())
    v = sim.process(victim())
    sim.process(late())

    def killer():
        yield sim.timeout(3)
        v.interrupt(Kill())

    sim.process(killer())
    sim.run()
    assert ("victim-killed", 3) in done
    assert ("holder", 20) in done
    # The late acquirer gets the slot the moment the holder releases —
    # not never (pre-fix deadlock behind the dead waiter).
    assert ("late", 25) in done
    assert res.in_use == 0
    assert res.queue_length == 0


def test_interrupt_during_service_releases_exactly_once():
    """Killing a process *holding* a slot must release it through the
    ``use`` finally — and only once (no release-of-idle error)."""
    sim = Simulator()
    res = Resource(sim, capacity=1, name="unit")
    done = []

    def victim():
        try:
            yield from res.use(50)
        except Kill:
            done.append(("killed", sim.now))

    def next_up():
        yield sim.timeout(5)
        yield from res.use(5)
        done.append(("next", sim.now))

    v = sim.process(victim())
    sim.process(next_up())

    def killer():
        yield sim.timeout(10)
        v.interrupt(Kill())

    sim.process(killer())
    sim.run()
    assert ("killed", 10) in done
    assert ("next", 15) in done
    assert res.in_use == 0


def test_cancel_after_grant_fired_returns_slot():
    """Same-instant race: the slot was handed over in the very instant
    the waiter was killed.  ``cancel`` must give it back."""
    sim = Simulator()
    res = Resource(sim, capacity=1, name="unit")
    a = res.acquire()
    assert a.triggered
    b = res.acquire()
    assert not b.triggered
    res.release()  # hands the slot directly to b
    assert b.triggered
    res.cancel(b)  # ...but b's owner is dead: slot comes back
    assert res.in_use == 0
    # The resource is healthy: a fresh acquire succeeds immediately
    # and a stray extra release still fails loudly.
    c = res.acquire()
    assert c.triggered
    res.release()
    with pytest.raises(SimulationError):
        res.release()


def test_cancel_untriggered_waiter_is_removed_from_queue():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="unit")
    res.acquire()
    waiting = res.acquire()
    assert res.queue_length == 1
    res.cancel(waiting)
    assert res.queue_length == 0
    # Release now frees the slot instead of waking the dead waiter.
    res.release()
    assert res.in_use == 0


# -- Store -----------------------------------------------------------------
def test_interrupt_while_getting_item_is_not_lost():
    """A put must never hand its item to a dead getter: before the fix
    the item vanished and the live consumer starved."""
    sim = Simulator()
    store = Store(sim, name="queue")
    got = []

    def victim():
        try:
            item = yield from store.take()
            got.append(("victim", item))
        except Kill:
            got.append(("killed", sim.now))

    def survivor():
        yield sim.timeout(5)
        item = yield from store.take()
        got.append(("survivor", item, sim.now))

    v = sim.process(victim())
    sim.process(survivor())

    def killer():
        yield sim.timeout(1)
        v.interrupt(Kill())

    def producer():
        yield sim.timeout(10)
        store.put("payload")

    sim.process(killer())
    sim.process(producer())
    sim.run()
    assert ("killed", 1) in got
    assert ("survivor", "payload", 10) in got


def test_store_cancel_after_delivery_redelivers_item():
    """Same-instant race: the item was already delivered when the
    getter died.  It re-delivers to the next live getter, or returns
    to the front of the queue."""
    sim = Simulator()
    store = Store(sim, name="queue")
    g1 = store.get()
    g2 = store.get()
    store.put("x")
    assert g1.triggered and not g2.triggered
    store.cancel(g1)
    assert g2.triggered and g2.value == "x"
    # With no live getter left, the item goes back to the front.
    g3 = store.get()
    store.put("y")
    assert g3.triggered
    store.cancel(g3)
    assert store.peek_all() == ["y"]


def test_store_cancel_untriggered_getter_removed():
    sim = Simulator()
    store = Store(sim, name="queue")
    dead = store.get()
    live = store.get()
    store.cancel(dead)
    store.put("only")
    assert not dead.triggered
    assert live.triggered and live.value == "only"
