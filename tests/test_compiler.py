"""Tests for the transaction IR and the automated instrumentation pass."""

import pytest

from repro.common.errors import InstrumentationError
from repro.compiler import (
    AddrGen,
    AutoInstrumenter,
    Cond,
    Fence,
    Hook,
    InstrumentationPlan,
    Loop,
    Store,
    Template,
    Writeback,
)
from repro.compiler.ir import LogBackup, Value, blocking_writebacks


def make_plan(template):
    return AutoInstrumenter().instrument(template)


def simple_update_template():
    """arrayUpdate(index, val) from paper Fig. 4/8a."""
    return Template(
        name="array_update",
        args=("index", "new_val"),
        body=[
            Hook("entry"),
            AddrGen("loc", inputs=("index",)),          # hoistable
            Hook("after_addr"),
            LogBackup("loc", obj="item"),
            Fence(),
            Store("loc", "new_val", obj="item"),
            Writeback("loc", obj="item"),
            Fence(),
        ])


class TestBlockingWritebackDetection:
    def test_writeback_before_fence_is_blocking(self):
        template = simple_update_template()
        found = blocking_writebacks(template.body)
        assert len(found) == 1
        assert found[0][0].obj == "item"

    def test_writeback_without_fence_not_blocking(self):
        body = [Writeback("a", obj="x")]
        template = Template("t", args=("a",), body=body)
        plan = make_plan(template)
        assert plan.total_directives() == 0


class TestAddressInjection:
    def test_hoistable_address_goes_to_entry_hook(self):
        plan = make_plan(simple_update_template())
        directives = plan.at("entry")
        kinds = {(d.kind, d.obj) for d in directives}
        assert ("addr", "item") in kinds
        addr_directive = next(d for d in directives if d.kind == "addr")
        assert addr_directive.hoisted

    def test_memory_dependent_address_not_hoisted(self):
        template = Template(
            name="tree_update",
            args=("key", "val"),
            body=[
                Hook("entry"),
                AddrGen("node", inputs=("key",), memory_dependent=True),
                Hook("after_lookup"),
                LogBackup("node", obj="node"),
                Fence(),
                Store("node", "val", obj="node"),
                Writeback("node", obj="node"),
                Fence(),
            ])
        plan = make_plan(template)
        assert not any(d.kind == "addr" for d in plan.at("entry"))
        after = plan.at("after_lookup")
        assert any(d.kind == "addr" and not d.hoisted for d in after)

    def test_transitive_memory_dependence_poisons_chain(self):
        template = Template(
            name="chained",
            args=("key", "val"),
            body=[
                Hook("entry"),
                AddrGen("bucket", inputs=("key",), memory_dependent=True),
                AddrGen("slot", inputs=("bucket",)),  # pure but tainted
                Hook("after_chain"),
                Store("slot", "val", obj="slot"),
                Writeback("slot", obj="slot"),
                Fence(),
            ])
        plan = make_plan(template)
        assert not any(d.kind == "addr" for d in plan.at("entry"))
        assert any(d.kind == "addr" for d in plan.at("after_chain"))


class TestDataInjection:
    def test_data_from_args_goes_to_entry(self):
        plan = make_plan(simple_update_template())
        assert any(d.kind == "data" and d.obj == "item"
                   for d in plan.at("entry"))

    def test_data_from_late_value_waits_for_it(self):
        template = Template(
            name="derived_data",
            args=("index",),
            body=[
                Hook("entry"),
                AddrGen("loc", inputs=("index",)),
                Value("computed"),
                Hook("after_compute"),
                Store("loc", "computed", obj="item"),
                Writeback("loc", obj="item"),
                Fence(),
            ])
        plan = make_plan(template)
        assert not any(d.kind == "data" for d in plan.at("entry"))
        assert any(d.kind == "data" for d in plan.at("after_compute"))

    def test_writeback_without_store_skipped_for_data(self):
        template = Template(
            name="log_only",
            args=("index",),
            body=[
                Hook("entry"),
                AddrGen("loc", inputs=("index",)),
                Writeback("loc", obj="log"),
                Fence(),
            ])
        plan = make_plan(template)
        assert ("log", "no defining store") in plan.skipped


class TestLimitations:
    def test_writeback_inside_loop_is_skipped(self):
        """§4.5.2: the pass cannot instrument loop bodies."""
        template = Template(
            name="loopy",
            args=("base", "val"),
            body=[
                Hook("entry"),
                Loop(body=[
                    AddrGen("slot", inputs=("base",)),
                    Store("slot", "val", obj="element"),
                    Writeback("slot", obj="element"),
                    Fence(),
                ]),
            ])
        plan = make_plan(template)
        assert plan.total_directives() == 0
        assert ("element", "inside loop") in plan.skipped

    def test_conditional_writeback_instrumented_in_branch_only(self):
        """§4.5.1: conservative injection under the same conditional."""
        template = Template(
            name="condy",
            args=("index", "val"),
            body=[
                Hook("entry"),
                AddrGen("loc", inputs=("index",)),
                Cond(
                    then=[
                        Hook("then_hook"),
                        Store("loc", "val", obj="item"),
                        Writeback("loc", obj="item"),
                    ],
                    otherwise=[]),
                Fence(),
            ])
        plan = make_plan(template)
        # Directives must sit inside the taken branch, not at entry.
        assert plan.at("entry") == []
        branch = plan.at("then_hook")
        assert {d.kind for d in branch} == {"addr", "data"}

    def test_undefined_address_variable_rejected(self):
        template = Template(
            name="broken", args=(),
            body=[Writeback("ghost", obj="x"), Fence()])
        with pytest.raises(InstrumentationError):
            make_plan(template)

    def test_duplicate_hooks_rejected(self):
        template = Template(
            name="dup-hooks", args=(),
            body=[Hook("h"), Hook("h")])
        with pytest.raises(InstrumentationError):
            make_plan(template)


class TestPlanObject:
    def test_empty_plan_has_no_directives(self):
        plan = InstrumentationPlan.empty()
        assert plan.at("anything") == []
        assert plan.total_directives() == 0

    def test_describe_mentions_directives_and_skips(self):
        plan = make_plan(simple_update_template())
        text = plan.describe()
        assert "PRE_ADDR" in text and "PRE_DATA" in text

    def test_paper_example_gets_both_kinds(self):
        """The Fig. 8a shape: PRE_DATA early, PRE_ADDR after lookup."""
        plan = make_plan(simple_update_template())
        kinds = {d.kind for ds in plan.directives.values() for d in ds}
        assert kinds == {"addr", "data"}
        assert plan.skipped == []
