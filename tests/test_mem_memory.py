"""Tests for functional memory and the volatile view."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import MemoryError_
from repro.mem import FunctionalMemory, VolatileView


def make_mem(capacity=4096):
    return FunctionalMemory(capacity)


def test_unwritten_memory_reads_zero():
    mem = make_mem()
    assert mem.read(100, 16) == bytes(16)
    assert mem.read_line(0) == bytes(64)


def test_line_write_read_roundtrip():
    mem = make_mem()
    data = bytes(range(64))
    mem.write_line(128, data)
    assert mem.read_line(128) == data


def test_unaligned_line_access_rejected():
    mem = make_mem()
    with pytest.raises(MemoryError_):
        mem.read_line(10)
    with pytest.raises(MemoryError_):
        mem.write_line(10, bytes(64))


def test_wrong_line_size_rejected():
    mem = make_mem()
    with pytest.raises(MemoryError_):
        mem.write_line(0, bytes(63))


def test_out_of_bounds_rejected():
    mem = make_mem(capacity=128)
    with pytest.raises(MemoryError_):
        mem.read(120, 16)
    with pytest.raises(MemoryError_):
        mem.write(-8, bytes(8))


def test_byte_write_spanning_lines():
    mem = make_mem()
    payload = bytes(range(100))
    mem.write(60, payload)  # spans lines 0, 64, 128
    assert mem.read(60, 100) == payload
    # Neighbouring bytes untouched.
    assert mem.read(0, 60) == bytes(60)


def test_partial_line_write_preserves_rest_of_line():
    mem = make_mem()
    mem.write_line(0, b"\xAA" * 64)
    mem.write(10, b"\x55" * 4)
    line = mem.read_line(0)
    assert line[10:14] == b"\x55" * 4
    assert line[:10] == b"\xAA" * 10
    assert line[14:] == b"\xAA" * 50


def test_written_lines_enumerates_sorted():
    mem = make_mem()
    mem.write_line(128, bytes(64))
    mem.write_line(0, bytes(64))
    addrs = [addr for addr, _data in mem.written_lines()]
    assert addrs == [0, 128]
    assert len(mem) == 2


def test_capacity_must_be_line_multiple():
    with pytest.raises(MemoryError_):
        FunctionalMemory(100)
    with pytest.raises(MemoryError_):
        FunctionalMemory(0)


def test_volatile_view_is_independent_store():
    nvm = make_mem()
    view = VolatileView(4096)
    view.write(0, b"plain")
    assert nvm.read(0, 5) == bytes(5)


@settings(max_examples=30)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 4000), st.binary(min_size=1, max_size=96)),
        min_size=1, max_size=10))
def test_reads_reflect_most_recent_writes(writes):
    mem = make_mem(8192)
    shadow = bytearray(8192)
    for addr, data in writes:
        mem.write(addr, data)
        shadow[addr:addr + len(data)] = data
    for addr, data in writes:
        assert mem.read(addr, len(data)) == bytes(
            shadow[addr:addr + len(data)])
