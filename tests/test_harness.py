"""Tests for the experiment harness and figure drivers."""

import pytest

from repro.harness.experiments import (
    fig3_timeline,
    fig6_dependency_graph,
    fig10_ideal_comparison,
    fig11_compiler,
    fig14_resources,
    overhead_analysis,
    table1_bmo_catalog,
)
from repro.harness.runner import (
    fully_pre_executed_fraction,
    run_point,
    speedup_over,
)
from repro.workloads import WorkloadParams

FAST = WorkloadParams(n_items=16, value_size=64, n_transactions=5)


class TestRunner:
    def test_run_point_returns_populated_result(self):
        result = run_point("array_swap", mode="serialized", params=FAST)
        assert result.transactions == 5
        assert result.elapsed_ns > 0
        assert result.ns_per_transaction > 0
        assert result.stats["mc.writebacks"] > 0

    def test_variant_defaults(self):
        ser = run_point("array_swap", mode="serialized", params=FAST)
        jan = run_point("array_swap", mode="janus", params=FAST)
        assert ser.variant == "baseline"
        assert jan.variant == "manual"

    def test_speedup_over(self):
        ser = run_point("array_swap", mode="serialized", params=FAST)
        jan = run_point("array_swap", mode="janus", params=FAST)
        assert speedup_over(ser, jan) > 1.0
        assert speedup_over(ser, ser) == pytest.approx(1.0)

    def test_fully_pre_executed_fraction_bounds(self):
        jan = run_point("array_swap", mode="janus", params=FAST)
        frac = fully_pre_executed_fraction(jan)
        assert 0.0 <= frac <= 1.0

    def test_unknown_workload_rejected(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            run_point("nonsense", params=FAST)

    def test_deterministic_across_runs(self):
        a = run_point("queue", mode="janus", params=FAST)
        b = run_point("queue", mode="janus", params=FAST)
        assert a.elapsed_ns == b.elapsed_ns


class TestStaticFigures:
    def test_table1_covers_all_bmo_classes(self):
        result = table1_bmo_catalog()
        assert len(result.data["rows"]) == 7
        assert "360 ns" in result.rendered  # 9-level Merkle tree
        assert "ORAM" in result.rendered

    def test_fig3_ordering(self):
        result = fig3_timeline()
        assert result.data["pre_executed_ns"] == 0.0
        assert result.data["parallel_ns"] < result.data["serialized_ns"]

    def test_fig6_matches_paper_classification(self):
        labels = fig6_dependency_graph().data["classification"]
        assert labels["E1"] == labels["E2"] == "addr"
        assert labels["D1"] == labels["D2"] == "data"
        assert labels["E3"] == "both"

    def test_overhead_numbers(self):
        data = overhead_analysis().data
        assert 9.0 < data["irb_kib"] < 9.5
        assert data["irb_entry_bits"] == 1179


class TestDynamicFigures:
    def test_fig10_small_scale(self):
        result = fig10_ideal_comparison(scale=0.2,
                                        workloads=["array_swap"])
        row = result.data["array_swap"]
        assert row["serialized"] > row["janus"] > 1.0

    def test_fig11_small_scale(self):
        result = fig11_compiler(scale=0.2, workloads=["array_swap",
                                                      "rbtree"])
        assert result.data["rbtree"]["auto"] <= \
            result.data["rbtree"]["manual"] + 1e-9

    def test_fig14_fixed_baseline(self):
        result = fig14_resources(scale=0.4, scales=(1, 4),
                                 value_size=2048,
                                 workloads=["array_swap"])
        series = result.data["array_swap"]
        assert set(series) == {"1x", "4x"}
        assert all(v > 0 for v in series.values())
