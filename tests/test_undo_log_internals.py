"""Unit tests for undo-log record layout, wrap, and prediction."""

import pytest

from repro.common.config import default_config
from repro.common.errors import RecoveryError
from repro.consistency import UndoLog
from repro.consistency.undo_log import (
    _BACKUP_MAGIC,
    _COMMIT_MAGIC,
    _HEADER,
    pack_record,
    parse_log,
)
from repro.core import NvmSystem


def make_log(capacity=1 << 14):
    system = NvmSystem(default_config(mode="serialized"))
    log = UndoLog(system.cores[0], capacity_bytes=capacity)
    return system, log


def drive(system, gen):
    proc = system.sim.process(gen)
    system.sim.run(stop_event=proc)
    if proc._exc:
        raise proc._exc


class TestRecordLayout:
    def test_backup_record_round_trips_through_parser(self):
        system, log = make_log()
        addr = system.heap.alloc_line(64)

        def prog():
            yield from system.cores[0].store(addr, b"\x0A" * 64)
            txn = log.begin()
            yield from txn.backup(addr, 64)
            yield from txn.commit()

        drive(system, prog())
        records = list(parse_log(
            lambda a: system.volatile.read(a, 64),
            log.base, log.capacity))
        kinds = [r[0] for r in records]
        assert kinds == ["backup", "commit"]
        _k, txn_id, rec_addr, size, payload = records[0]
        assert rec_addr == addr and size == 64
        assert system.volatile.read(payload, 64) == b"\x0A" * 64

    def test_parser_stops_at_unwritten_space(self):
        system, log = make_log()
        assert list(parse_log(
            lambda a: system.volatile.read(a, 64),
            log.base, log.capacity)) == []

    def test_corrupt_backup_size_raises(self):
        # A CRC-valid record with an insane size field is *corrupt*
        # (not torn) and must raise, not be skipped.
        system, log = make_log()
        bogus = pack_record(_BACKUP_MAGIC, 1, 0x40, 0)
        system.volatile.write(log.base, bogus)
        with pytest.raises(RecoveryError):
            list(parse_log(lambda a: system.volatile.read(a, 64),
                           log.base, log.capacity))

    def test_bad_header_crc_stops_cleanly(self):
        # The same bogus fields *without* a valid CRC look like a torn
        # header: the parser stops cleanly instead of raising.
        system, log = make_log()
        bogus = _HEADER.pack(_BACKUP_MAGIC, 1, 0x40, 0)
        system.volatile.write(log.base, bogus.ljust(64, b"\x00"))
        assert list(parse_log(lambda a: system.volatile.read(a, 64),
                              log.base, log.capacity)) == []


class TestReserveAndPrediction:
    def test_records_are_line_aligned(self):
        _system, log = make_log()
        a = log._reserve(100)
        b = log._reserve(64)
        assert a % 64 == 0 and b % 64 == 0
        assert b >= a + 128  # 100 B rounded up to two lines

    def test_wrap_resets_to_base(self):
        _system, log = make_log(capacity=4 * 64)
        log._reserve(3 * 64)
        wrapped = log._reserve(2 * 64)
        assert wrapped == log.base

    def test_prediction_matches_actual_commit_address(self):
        system, log = make_log()
        addr = system.heap.alloc_line(256)
        observed = {}

        def prog():
            yield from system.cores[0].store(addr, bytes(256))
            txn = log.begin()
            predicted = txn.next_commit_record_addr([256, 64])
            yield from txn.backup(addr, 256)
            yield from txn.backup(addr, 64)
            yield from txn.fence_backups()
            yield from txn.write(addr, b"\x01" * 64)
            actual = txn.next_commit_record_addr()
            observed["predicted"] = predicted
            observed["actual"] = actual
            yield from txn.commit()

        drive(system, prog())
        assert observed["predicted"] == observed["actual"]

    def test_prediction_handles_wrap(self):
        _system, log = make_log(capacity=8 * 64)
        log._reserve(6 * 64)
        # A 2-line backup record (64 header + 64 payload) fits, then
        # the commit record would exceed capacity -> wraps to base.
        predicted = log.predict_head_after([64])
        assert predicted == log.base

    def test_commit_record_preview_is_line_sized_and_stable(self):
        system, log = make_log()
        txn = log.begin()
        preview = txn.commit_record_preview()
        assert len(preview) == 64
        assert preview == txn.commit_record_preview()
        magic, txn_id, _a, _s = _HEADER.unpack_from(preview)
        assert magic == _COMMIT_MAGIC and txn_id == txn.txn_id


class TestTornPayloadContinuation:
    def test_parser_yields_torn_backup_and_continues(self):
        # An intact header with a CRC-failed payload does not end the
        # scan: the parser reports it as ``torn_backup`` and picks up
        # at the next record boundary.
        system, log = make_log()
        old = b"\x0B" * 64
        system.volatile.write(
            log.base, pack_record(_BACKUP_MAGIC, 3, 0x40, 64,
                                  payload=old))
        system.volatile.write(log.base + 64, b"\xEE" * 64)  # torn
        system.volatile.write(
            log.base + 128, pack_record(_COMMIT_MAGIC, 3, 0, 0))
        records = list(parse_log(
            lambda a: system.volatile.read(a, 64),
            log.base, log.capacity))
        assert [r[0] for r in records] == ["torn_backup", "commit"]
        _k, txn_id, addr, size, payload_addr = records[0]
        assert (txn_id, addr, size) == (3, 0x40, 64)
        assert payload_addr == log.base + 64
