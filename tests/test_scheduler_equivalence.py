"""Bucket calendar-queue scheduler vs the reference heap.

The bucketed dispatcher is a pure throughput optimization: for any
program it must dispatch the same callbacks in the same order at the
same times, count the same number of events, and leave the same final
clock.  These tests prove it three ways — seeded random event
programs through the lockstep oracle, full workload runs compared
end to end, and the stop/until edge semantics pinned explicitly.
"""

import pytest

from repro.common.rng import DeterministicRng
from repro.harness.runner import run_point
from repro.sim import SCHEDULERS, Simulator
from repro.validate import check_scheduler_equivalence


def test_scheduler_names_exported(monkeypatch):
    assert set(SCHEDULERS) == {"bucket", "heap"}
    # Absent the env override the default must be the bucket queue
    # (the CI heap leg runs this suite with REPRO_SCHEDULER=heap).
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    assert Simulator().scheduler == "bucket"
    assert Simulator("heap").scheduler == "heap"


def test_unknown_scheduler_rejected():
    from repro.common.errors import SimulationError
    with pytest.raises(SimulationError):
        Simulator("fifo")


def test_random_programs_run_in_lockstep():
    """Six seeded random programs over every kernel primitive —
    timeouts, delays, signals, joins, resources, stores, spawns and
    interrupts — must behave identically under both schedulers."""
    rng = DeterministicRng(1234).stream("sched-lockstep")
    check_scheduler_equivalence(rng, workers=6, steps=24, rounds=6)


def test_dense_same_time_programs_run_in_lockstep():
    """Bursty same-instant traffic maximizes batch append/drain
    interleaving, the part of the bucket loop with no heap analogue."""
    rng = DeterministicRng(99).stream("sched-lockstep-dense")
    check_scheduler_equivalence(rng, workers=10, steps=40, rounds=3)


@pytest.mark.parametrize("mode", ["serialized", "janus"])
def test_workload_identical_under_both_schedulers(mode):
    """A real workload produces the same simulated time, event count,
    and result digest under both schedulers."""
    results = {}
    for scheduler in ("heap", "bucket"):
        r = run_point("queue", mode=mode, scheduler=scheduler)
        results[scheduler] = (r.elapsed_ns, r.stats.get("sim_events"),
                              sorted(r.stats.items()))
    assert results["heap"] == results["bucket"]


@pytest.mark.parametrize("scheduler", ["bucket", "heap"])
def test_until_and_stop_event_semantics(scheduler):
    """run(until=...) and stop_event behave identically under both
    schedulers, including the drained-early clock advance."""
    sim = Simulator(scheduler)

    def proc():
        yield sim.timeout(5)

    sim.process(proc())
    sim.run(until=30, stop_event=sim.event("never"))
    assert sim.now == 30

    sim2 = Simulator(scheduler)
    stop = sim2.event()

    def stopper():
        yield sim2.timeout(5)
        stop.succeed()
        yield sim2.timeout(100)

    sim2.process(stopper())
    sim2.run(stop_event=stop)
    assert sim2.now <= 6
    # Resuming after a stop continues exactly where the run left off.
    sim2.run()
    assert sim2.now == 105


@pytest.mark.parametrize("scheduler", ["bucket", "heap"])
def test_events_counter_identical(scheduler):
    sim = Simulator(scheduler)

    def worker():
        for _ in range(10):
            yield sim.timeout(1)
            yield sim.delay(0)

    sim.process(worker())
    sim.process(worker())
    sim.run()
    if not hasattr(test_events_counter_identical, "_seen"):
        test_events_counter_identical._seen = {}
    test_events_counter_identical._seen[scheduler] = sim.events
    seen = test_events_counter_identical._seen
    if len(seen) == 2:
        assert seen["bucket"] == seen["heap"]
