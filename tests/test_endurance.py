"""Endurance accounting and the effect of wear-leveling."""

import pytest

from repro.common.config import default_config
from repro.core import NvmSystem


def hammer_program(core, addr, writes):
    """Repeatedly overwrite one line — the endurance worst case."""
    for i in range(writes):
        yield from core.store(addr, bytes([i % 251 + 1]) * 64)
        yield from core.persist(addr, 64)


def run_hammer(bmos, writes=40):
    system = NvmSystem(default_config(mode="serialized", bmos=bmos))
    core = system.cores[0]
    addr = system.heap.alloc_line(64, label="hot")
    system.run_programs([hammer_program(core, addr, writes)])
    system.run()
    return system, addr


def test_write_counts_tracked():
    system, addr = run_hammer(bmos=("encryption",), writes=10)
    stats = system.device.wear_statistics()
    assert stats["lines"] >= 1
    assert stats["max"] >= 10  # the hammered line


def test_hot_spot_without_wear_leveling():
    """One hot line among cold neighbours: severe wear imbalance."""
    system = NvmSystem(default_config(mode="serialized",
                                      bmos=("encryption",)))
    core = system.cores[0]
    base = system.heap.alloc_line(64 * 8, label="region")

    def mixed():
        # Touch each cold line once...
        for i in range(8):
            yield from core.store(base + 64 * i, bytes([i + 1]) * 64)
            yield from core.persist(base + 64 * i, 64)
        # ...then hammer line 0.
        yield from hammer_program(core, base, 32)

    system.run_programs([mixed()])
    system.run()
    stats = system.device.wear_statistics()
    assert stats["imbalance"] > 3.0


def test_wear_leveling_spreads_the_hot_spot():
    import dataclasses
    from repro.bmo.wear_leveling import StartGap
    cfg = default_config(mode="serialized",
                         bmos=("wear_leveling", "encryption"))
    system = NvmSystem(cfg)
    # A small region with aggressive gap movement, so the gap passes
    # over the hot line's slot within this short test (a production
    # region needs a full rotation for the same effect).
    system.pipeline.by_name["wear_leveling"].start_gap = \
        StartGap(lines=8, gap_write_interval=2)
    core = system.cores[0]
    addr = system.heap.alloc_line(64, label="hot")
    system.run_programs([hammer_program(core, addr, 40)])
    system.run()

    plain = NvmSystem(default_config(mode="serialized",
                                     bmos=("encryption",)))
    core2 = plain.cores[0]
    addr2 = plain.heap.alloc_line(64, label="hot")
    plain.run_programs([hammer_program(core2, addr2, 40)])
    plain.run()

    leveled = system.device.wear_statistics()
    unleveled = plain.device.wear_statistics()
    # Start-Gap moves the hot line across physical slots: the worst
    # cell absorbs strictly fewer writes.
    assert leveled["max"] < unleveled["max"]
    assert leveled["lines"] > unleveled["lines"]


def test_dedup_reduces_total_device_writes():
    """Deduplication's endurance benefit: cancelled writes never
    reach the cells."""
    def repetitive(core, base, n):
        value = b"\x42" * 64  # same value every time
        for i in range(n):
            yield from core.store(base + 64 * i, value)
            yield from core.persist(base + 64 * i, 64)

    with_dedup = NvmSystem(default_config(
        mode="serialized", bmos=("dedup", "encryption")))
    base = with_dedup.heap.alloc_line(64 * 16)
    with_dedup.run_programs([repetitive(with_dedup.cores[0], base, 16)])
    with_dedup.run()

    without = NvmSystem(default_config(mode="serialized",
                                       bmos=("encryption",)))
    base2 = without.heap.alloc_line(64 * 16)
    without.run_programs([repetitive(without.cores[0], base2, 16)])
    without.run()

    assert with_dedup.device.writes < without.device.writes
