"""Functional tests for the seven workloads."""

import pytest

from repro.common.config import default_config
from repro.core import NvmSystem
from repro.workloads import WORKLOADS, WorkloadParams, make_workload
from repro.workloads.registry import SCALABLE_WORKLOADS, plan_for


def run_workload(name, variant="baseline", mode="parallel", n_txns=6,
                 n_items=16, value_size=64, cores=1, **cfg_overrides):
    cfg = default_config(mode=mode, cores=cores, **cfg_overrides)
    system = NvmSystem(cfg)
    params = WorkloadParams(n_items=n_items, value_size=value_size,
                            n_transactions=n_txns)
    workloads = [make_workload(name, system, core, params,
                               variant=variant)
                 for core in system.cores]
    elapsed = system.run_programs([w.run() for w in workloads])
    return system, workloads, elapsed


class TestEachWorkloadRuns:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_baseline_completes_all_transactions(self, name):
        _system, workloads, elapsed = run_workload(name)
        assert workloads[0].completed_transactions == 6
        assert elapsed > 0

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_manual_variant_in_janus_mode(self, name):
        system, workloads, _ = run_workload(name, variant="manual",
                                            mode="janus")
        assert workloads[0].completed_transactions == 6
        assert system.janus.stats.counters["requests"].value > 0

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_auto_variant_in_janus_mode(self, name):
        _system, workloads, _ = run_workload(name, variant="auto",
                                             mode="janus")
        assert workloads[0].completed_transactions == 6

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_deterministic_given_seed(self, name):
        _s1, _w1, t1 = run_workload(name, seed=7)
        _s2, _w2, t2 = run_workload(name, seed=7)
        assert t1 == t2


class TestArraySwap:
    def test_swap_preserves_multiset_of_items(self):
        system, (wl,), _ = run_workload("array_swap", n_txns=10)
        item = wl.params.value_size
        values = sorted(
            system.volatile.read(wl.base + i * item, item)
            for i in range(wl.params.n_items))
        # Every item is still one of the seeded values (swaps permute).
        assert len(values) == wl.params.n_items


class TestQueue:
    def test_queue_remains_linked_and_fifo(self):
        system, (wl,), _ = run_workload("queue", n_txns=12)
        values = wl.drain_values()
        assert len(values) == wl._length
        assert len(set(values)) == len(values)  # distinct blobs

    def test_enqueued_payloads_readable(self):
        system, (wl,), _ = run_workload("queue", n_txns=8)
        for blob in wl.drain_values():
            data = system.volatile.read(blob, wl.params.value_size)
            assert len(data) == wl.params.value_size


class TestHashTable:
    def test_lookup_returns_latest_value(self):
        system, (wl,), _ = run_workload("hash_table", n_txns=10)
        # Every pre-populated key still resolves.
        found = sum(1 for key in range(wl.params.n_items)
                    if wl.lookup_value(key))
        assert found == wl.params.n_items


class TestRBTree:
    def test_invariants_hold_after_inserts(self):
        _system, (wl,), _ = run_workload("rbtree", n_txns=20, n_items=12)
        size = wl.validate()
        assert size >= 12  # seeded keys all present

    def test_inserted_keys_resolvable(self):
        _system, (wl,), _ = run_workload("rbtree", n_txns=15, n_items=8)
        hits = sum(1 for key in range(wl.key_space)
                   if wl.lookup(key) is not None)
        assert hits == wl.validate()


class TestBTree:
    def test_invariants_hold_after_inserts(self):
        _system, (wl,), _ = run_workload("btree", n_txns=25, n_items=20)
        assert wl.validate() >= 20

    def test_splits_happened(self):
        _system, (wl,), _ = run_workload("btree", n_txns=30, n_items=30)
        root = wl._vread(wl._root())
        assert not root["leaf"]  # tree grew beyond one node

    def test_lookup_finds_inserted_keys(self):
        _system, (wl,), _ = run_workload("btree", n_txns=10, n_items=10)
        hits = sum(1 for key in range(wl.key_space)
                   if wl.lookup(key) is not None)
        assert hits == wl.validate()


class TestTatp:
    def test_records_updated_in_place(self):
        system, (wl,), _ = run_workload("tatp", n_txns=10)
        for s_id in range(wl.params.n_items):
            record = system.volatile.read(wl._record_addr(s_id),
                                          wl.record_size)
            assert len(record) == wl.record_size

    def test_deferred_requests_coalesce_in_manual_janus(self):
        system, (wl,), _ = run_workload("tatp", variant="manual",
                                        mode="janus", n_txns=10)
        assert system.janus.request_queue.coalesced > 0


class TestTpcc:
    def test_orders_inserted_sequentially(self):
        system, (wl,), _ = run_workload("tpcc", n_txns=8)
        assert wl.orders_inserted == 8
        for o_id in range(1, 9):
            record_o_id, _c, _d, ol_cnt = wl.read_order(o_id)
            assert record_o_id == o_id
            assert 5 <= ol_cnt <= 15


class TestPlans:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_auto_plan_builds_for_every_template(self, name):
        plan = plan_for(WORKLOADS[name], "auto")
        assert plan.total_directives() + len(plan.skipped) > 0

    def test_auto_skips_loops_in_queue_rbtree_btree_tpcc(self):
        for name in ("queue", "rbtree", "btree", "tpcc"):
            plan = plan_for(WORKLOADS[name], "auto")
            assert any(reason == "inside loop"
                       for _obj, reason in plan.skipped), name

    def test_auto_covers_array_swap_fully(self):
        plan = plan_for(WORKLOADS["array_swap"], "auto")
        assert plan.skipped == []
        kinds = {(d.kind, d.obj) for ds in plan.directives.values()
                 for d in ds}
        assert ("addr", "item_i") in kinds
        assert ("data", "item_i") in kinds

    def test_manual_plans_use_runtime_hooks(self):
        for name in ("rbtree", "btree"):
            plan = plan_for(WORKLOADS[name], "manual")
            assert plan.at("update_iter")
        assert plan_for(WORKLOADS["tpcc"], "manual").at("ol_iter")

    def test_dedup_ratio_roughly_tracks_target(self):
        system, (wl,), _ = run_workload("array_swap", n_txns=20,
                                        mode="serialized")
        dedup = system.pipeline.by_name["dedup"]
        observed = dedup.observed_ratio()
        assert 0.2 < observed < 0.9  # near the 0.5 target


class TestMultiCore:
    def test_workloads_run_on_four_cores(self):
        system, workloads, _ = run_workload("array_swap", cores=4,
                                            n_txns=4)
        assert all(w.completed_transactions == 4 for w in workloads)
        # Each core got its own array region.
        bases = {w.base for w in workloads}
        assert len(bases) == 4


class TestScalableValueSizes:
    @pytest.mark.parametrize("name", SCALABLE_WORKLOADS)
    def test_scaled_transactions_complete(self, name):
        _system, (wl,), _ = run_workload(name, n_txns=2,
                                         value_size=512)
        assert wl.completed_transactions == 2
