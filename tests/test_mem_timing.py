"""Tests for cache latency model, NVM device, and write queue."""

import pytest

from repro.common.config import CacheConfig, MemoryConfig
from repro.mem import CacheModel, FunctionalMemory, NvmDevice, WriteQueue
from repro.mem.write_queue import WriteEntry
from repro.sim import Simulator


def test_cache_first_touch_misses_then_hits():
    cache = CacheModel(CacheConfig(), memory_read_ns=60.0)
    cold = cache.access_ns(0x1000)
    warm = cache.access_ns(0x1000)
    assert cold > warm
    assert warm == pytest.approx(CacheConfig().l1_hit_ns)
    assert cache.misses == 1 and cache.l1_hits == 1


def test_cache_l2_catches_l1_evictions():
    cfg = CacheConfig(l1_size_bytes=8 * 64, l2_size_bytes=1024 * 64)
    cache = CacheModel(cfg, memory_read_ns=60.0)
    # One set in L1 holds 8 ways; touch 9 conflicting lines.
    stride = 64  # all map to set 0 only if sets == 1; 8 lines/8 ways => 1 set
    for i in range(9):
        cache.access_ns(i * stride)
    latency = cache.access_ns(0)  # evicted from L1, still in L2
    assert latency == pytest.approx(cfg.l1_hit_ns + cfg.l2_hit_ns)


def test_cache_hit_rate_counts():
    cache = CacheModel(CacheConfig(), memory_read_ns=60.0)
    assert cache.hit_rate() == 0.0
    cache.access_ns(0)
    cache.access_ns(0)
    assert cache.hit_rate() == pytest.approx(0.5)


def test_nvm_device_serialises_channel():
    sim = Simulator()
    dev = NvmDevice(sim, MemoryConfig(channels=1, write_service_ns=100))
    done = []

    def writer(i):
        yield from dev.write_access(i * 64)
        done.append(sim.now)

    for i in range(3):
        sim.process(writer(i))
    sim.run()
    assert done == [100, 200, 300]


def test_nvm_device_multiple_channels_parallelise():
    sim = Simulator()
    dev = NvmDevice(sim, MemoryConfig(channels=2, write_service_ns=100))
    done = []

    def writer(addr):
        yield from dev.write_access(addr)
        done.append(sim.now)

    sim.process(writer(0))     # channel 0
    sim.process(writer(64))    # channel 1
    sim.run()
    assert done == [100, 100]


def test_write_queue_accept_is_fast_drain_is_background():
    sim = Simulator()
    cfg = MemoryConfig(write_service_ns=100, write_queue_entries=8)
    dev = NvmDevice(sim, cfg)
    wq = WriteQueue(sim, cfg, dev)
    nvm = FunctionalMemory(4096)
    persist_time = []

    def entry(addr):
        return WriteEntry(addr=addr, data=b"\x01" * 64,
                          on_drain=lambda e: nvm.write_line(e.addr, e.data))

    def producer():
        yield from wq.accept(entry(0))
        persist_time.append(sim.now)

    sim.process(producer())
    sim.run()
    assert persist_time[0] < 100  # accepted before the device write
    assert wq.drained == 1
    assert nvm.read_line(0) == b"\x01" * 64


def test_write_queue_backpressure_when_full():
    sim = Simulator()
    cfg = MemoryConfig(write_service_ns=100, write_queue_entries=2)
    dev = NvmDevice(sim, cfg)
    wq = WriteQueue(sim, cfg, dev)
    accept_times = []

    def producer():
        for i in range(4):
            yield from wq.accept(WriteEntry(addr=i * 64, data=bytes(64)))
            accept_times.append(sim.now)

    sim.process(producer())
    sim.run()
    # First two accepted immediately; the rest wait for drains.
    assert accept_times[0] == 0 and accept_times[1] == 0
    assert accept_times[2] >= 100
    assert wq.drained == 4


def test_drained_event_waits_for_idle():
    sim = Simulator()
    cfg = MemoryConfig(write_service_ns=50)
    dev = NvmDevice(sim, cfg)
    wq = WriteQueue(sim, cfg, dev)
    times = []

    def producer():
        yield from wq.accept(WriteEntry(addr=0, data=bytes(64)))
        yield wq.drained_event()
        times.append(sim.now)

    sim.process(producer())
    sim.run()
    assert times == [50]
    # Idle queue: event fires immediately.
    ev = wq.drained_event()
    assert ev.triggered
