"""Tests for the span tracer and its integration with the system."""

import pytest

from repro.common.config import default_config
from repro.core import NvmSystem
from repro.harness.runner import run_point
from repro.harness.trace import WriteTracer
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.workloads import WorkloadParams, make_workload


def run_system(mode="janus", variant="manual", tracer=None, n_txns=6):
    system = NvmSystem(default_config(mode=mode), tracer=tracer)
    workload = make_workload(
        "hash_table", system, system.cores[0],
        WorkloadParams(n_items=16, value_size=64, n_transactions=n_txns),
        variant=variant)
    system.run_programs([workload.run()])
    return system


class TestTracerBasics:
    def test_disabled_by_default_records_nothing(self):
        tracer = Tracer()
        tracer.complete("x", "cat", ("p", "t"), 0.0, 10.0)
        tracer.instant("y", "cat", ("p", "t"), 5.0)
        tracer.counter("z", ("p", "t"), 5.0, {"v": 1})
        assert len(tracer) == 0

    def test_enabled_records_normalized_events(self):
        tracer = Tracer(enabled=True)
        tracer.complete("aes", "bmo", ("bmo", "encryption"), 10.0, 40.0,
                        args={"addr": 64})
        tracer.instant("hit", "irb", ("janus", "irb"), 12.0)
        assert len(tracer) == 2
        span = tracer.events[0]
        assert span["ph"] == "X" and span["ts"] == 10.0 \
            and span["dur"] == 40.0
        assert span["track"] == ("bmo", "encryption")
        assert tracer.spans(cat="bmo", name="aes") == [span]

    def test_sink_sees_events_and_enables(self):
        tracer = Tracer()
        seen = []
        tracer.add_sink(seen.append)
        assert tracer.enabled  # attaching a consumer turns tracing on
        tracer.complete("x", "c", ("p", "t"), 0.0, 1.0)
        assert len(seen) == 1

    def test_null_tracer_is_inert(self):
        NULL_TRACER.complete("x", "c", ("p", "t"), 0.0, 1.0)
        NULL_TRACER.instant("x", "c", ("p", "t"), 0.0)
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.enabled is False
        with pytest.raises(RuntimeError):
            NULL_TRACER.add_sink(lambda e: None)
        with pytest.raises(RuntimeError):
            NULL_TRACER.enable()


class TestSystemIntegration:
    def test_disabled_tracer_records_no_spans(self):
        system = run_system()
        assert len(system.tracer) == 0

    def test_tracing_does_not_perturb_the_simulation(self):
        plain = run_point("hash_table", mode="janus",
                          params=WorkloadParams(n_items=16, value_size=64,
                                                n_transactions=6))
        traced = run_point("hash_table", mode="janus",
                           params=WorkloadParams(n_items=16, value_size=64,
                                                 n_transactions=6),
                           tracer=Tracer(enabled=True))
        assert traced.elapsed_ns == plain.elapsed_ns
        assert traced.stats == plain.stats

    def test_spans_cover_the_whole_write_path(self):
        tracer = Tracer(enabled=True)
        system = run_system(tracer=tracer)
        cats = {e["cat"] for e in tracer.events}
        # BMO sub-ops, write phases, IRB activity, write-queue
        # residency, janus pre-execution all show up.
        for expected in ("bmo", "write", "write-phase", "irb", "mem",
                         "janus"):
            assert expected in cats, f"missing {expected} events"
        assert len(system.tracer) == len(tracer)

    def test_bmo_spans_carry_track_and_wait(self):
        tracer = Tracer(enabled=True)
        run_system(tracer=tracer, mode="parallel", variant="baseline")
        bmo_spans = tracer.spans(cat="bmo")
        assert bmo_spans
        tracks = {s["track"] for s in bmo_spans}
        assert len(tracks) > 1  # distinct per-BMO timeline rows
        assert all(s["track"][0] == "bmo" for s in bmo_spans)

    def test_serialized_mode_emits_monolithic_block(self):
        tracer = Tracer(enabled=True)
        run_system(tracer=tracer, mode="serialized", variant="baseline")
        blocks = tracer.spans(name="serialized-bmos")
        assert blocks
        assert all(s["dur"] > 500 for s in blocks)  # ~794 ns chain

    def test_irb_registers_in_system_metrics(self):
        system = run_system()
        irb_stats = system.janus.irb.stats
        snap = system.metrics.snapshot()
        # Same values through the registry as through the legacy
        # StatSet-style object the IRB exposes.
        for name, counter in irb_stats.counters.items():
            assert snap["counters"][f"irb.{name}"] == counter.value
        assert snap["counters"]["irb.hits"] > 0

    def test_irb_counts_match_standalone_statset_path(self):
        # The same run with an unattached (StatSet-backed) IRB must
        # produce identical counter values: registering into the
        # registry is observation, not behavior.
        from repro.janus.irb import IntermediateResultBuffer

        attached = run_system()
        detached = run_system()
        # Rebind: simulate the pre-registry world by re-running with a
        # fresh default IRB object and comparing dictionaries.
        assert isinstance(detached.janus.irb, IntermediateResultBuffer)
        assert {k: c.value
                for k, c in attached.janus.irb.stats.counters.items()} \
            == {k: c.value
                for k, c in detached.janus.irb.stats.counters.items()}

    def test_write_queue_metrics_present(self):
        system = run_system()
        flat = system.metrics.as_flat_dict()
        assert flat["wq.accepted"] > 0
        assert flat["wq.occupancy.count"] == flat["wq.accepted"]
        assert flat["wq.residency_ns.mean"] > 0


class TestWriteTracerShim:
    def test_attach_consumes_write_spans(self):
        system = NvmSystem(default_config(mode="serialized"))
        tracer = WriteTracer.attach(system)
        assert system.tracer.enabled  # attach flipped tracing on
        workload = make_workload(
            "array_swap", system, system.cores[0],
            WorkloadParams(n_items=8, value_size=64, n_transactions=4))
        system.run_programs([workload.run()])
        assert len(tracer) > 0
        writebacks = system.controller.stats.counters["writebacks"].value
        assert len(tracer) == writebacks
        for record in tracer.records:
            assert record.start_ns <= record.mc_arrival_ns \
                <= record.bmo_done_ns <= record.persisted_ns

    def test_shim_ignores_non_write_events(self):
        tracer = WriteTracer()
        tracer.on_event({"ph": "i", "cat": "irb", "ts": 0.0})
        tracer.on_event({"ph": "X", "cat": "bmo", "ts": 0.0, "dur": 1.0})
        assert len(tracer) == 0
