"""Per-fault-class proofs for the injection subsystem.

Every fault class from :mod:`repro.faults` gets a targeted test
proving its outcome is one of: corrected (with evidence), poisoned +
reported by the scrubber, or rejected with the right ``ReproError``
subclass — never silently absorbed into recovered state.
"""

import pytest

from repro.common.config import default_config
from repro.common.errors import (
    ConfigError,
    IntegrityError,
    RecoveryError,
    UncorrectableMediaError,
)
from repro.consistency import recover, scrub
from repro.core import NvmSystem
from repro.faults import (
    FAULT_KINDS,
    DegradedModeManager,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    RetryPolicy,
)
from repro.harness.crash_campaign import (
    reference_trajectory,
    run_crash_point,
)
from repro.workloads import WorkloadParams, make_workload

SEED = 7
#: Encryption + integrity + ECC, no dedup: every committed line is
#: stored at its own address with its own ECC code, so a fault's
#: target is directly checkable.
NO_DEDUP_ECC = ("encryption", "integrity", "ecc")
NO_DEDUP = ("encryption", "integrity")
PARAMS = WorkloadParams(n_items=8, value_size=64, n_transactions=8)


def build(plan=None, bmos=None, mode="janus", workload="array_swap"):
    injector = FaultInjector(plan) if plan is not None else None
    overrides = {"mode": mode, "seed": SEED}
    if bmos is not None:
        overrides["bmos"] = bmos
    system = NvmSystem(default_config(**overrides), injector=injector)
    wl = make_workload(workload, system, system.cores[0], PARAMS,
                       variant="manual" if mode == "janus"
                       else "baseline")
    return system, wl, injector


def run_full(system, workload):
    return system.run_programs([workload.run()])


def flip_bits(line, bits):
    out = bytearray(line)
    for bit in bits:
        out[bit // 8] ^= 1 << (bit % 8)
    return bytes(out)


def counters(system):
    return system.metrics.snapshot()["counters"]


class TestFaultPlan:
    def test_seeded_plan_is_deterministic(self):
        a = FaultPlan.seeded(5, FAULT_KINDS)
        b = FaultPlan.seeded(5, FAULT_KINDS)
        assert a.to_dict() == b.to_dict()
        assert len(a.specs) == len(FAULT_KINDS)

    def test_roundtrips_through_dict(self):
        plan = FaultPlan.seeded(11, ("media_write_flip", "wq_tear"))
        assert FaultPlan.from_dict(plan.to_dict()).to_dict() \
            == plan.to_dict()

    def test_rejects_unknown_kind_and_bad_bits(self):
        with pytest.raises(ConfigError):
            FaultPlan(specs=[FaultSpec(kind="cosmic_ray")])
        with pytest.raises(ConfigError):
            FaultSpec(kind="media_write_flip", bits=(512,)).validate()
        with pytest.raises(ConfigError):
            FaultSpec(kind="wq_drop", after_n=0).validate()


class TestMediaWriteFlip:
    """Bit flips in stored lines: ECC corrects or poisons, never
    hands out garbage."""

    def test_single_bit_corrected_and_healed(self):
        # Write #53 is the *final* write to its (data) line in this
        # seeded run, so the damage survives to the end of the stream.
        plan = FaultPlan(seed=SEED, specs=[
            FaultSpec("media_write_flip", after_n=53, bits=(13,))])
        system, wl, injector = build(plan, NO_DEDUP_ECC)
        run_full(system, wl)
        [record] = injector.injected
        addr = record["addr"]
        assert addr in system.pipeline.by_name["ecc"].codes

        # A fault-free twin (same seed) fixes the expected bytes.
        twin_sys, twin_wl, _ = build(None, NO_DEDUP_ECC)
        run_full(twin_sys, twin_wl)
        expected = twin_sys.nvm.read_line(addr)
        assert system.nvm.read_line(addr) != expected  # damage landed

        degraded = DegradedModeManager(system)
        assert degraded.read_line(addr) == expected
        assert degraded.take_corrections() == [addr]
        # Healed in place: the stored copy is clean now.
        assert system.nvm.read_line(addr) == expected
        again = DegradedModeManager(system)
        assert again.read_line(addr) == expected
        assert again.corrected == []

        stats = counters(system)
        assert stats["faults.injected_media_write_flip"] == 1
        assert stats["faults.corrected_lines"] == 1
        assert stats["faults.healed_writes"] == 1

    def test_double_bit_poisons_line(self):
        plan = FaultPlan(seed=SEED, specs=[
            FaultSpec("media_write_flip", after_n=53, bits=(3, 9))])
        system, wl, injector = build(plan, NO_DEDUP_ECC)
        run_full(system, wl)
        [record] = injector.injected
        addr = record["addr"]

        degraded = DegradedModeManager(system)
        with pytest.raises(UncorrectableMediaError) as excinfo:
            degraded.read_line(addr)
        assert excinfo.value.line_addr == addr
        assert addr in degraded.poisoned
        # Poisoned: raises immediately, no more retries burned.
        retries = counters(system)["faults.read_retries"]
        with pytest.raises(UncorrectableMediaError):
            degraded.read_line(addr)
        assert counters(system)["faults.read_retries"] == retries
        assert counters(system)["faults.poisoned_lines"] == 1

    def test_sticky_cell_reapplies_after_heal(self):
        plan = FaultPlan(seed=SEED, specs=[
            FaultSpec("media_write_flip", after_n=6, bits=(13,),
                      sticky=True)])
        system, wl, injector = build(plan, NO_DEDUP_ECC)
        run_full(system, wl)
        [record] = injector.injected
        assert record["sticky"] is True


class TestRecoveryMediaPath:
    """The recovery reader itself applies ECC to fetched ciphertext."""

    def test_recovery_corrects_single_bit_data_damage(self):
        system, wl, _ = build(None, NO_DEDUP_ECC)
        run_full(system, wl)
        digest_before = wl.logical_digest(system.volatile.read)
        addr = wl.base  # first array item line
        system.nvm.write_line(
            addr, flip_bits(system.nvm.read_line(addr), (13,)))
        snapshot = system.crash()
        state = recover(snapshot,
                        [(wl.log.base, wl.log.capacity)],
                        verify_macs=True)
        assert wl.logical_digest(state.read) == digest_before
        assert addr in state.media_corrected

    def test_recovery_rejects_uncorrectable_data_damage(self):
        system, wl, _ = build(None, NO_DEDUP_ECC)
        run_full(system, wl)
        addr = wl.base
        system.nvm.write_line(
            addr, flip_bits(system.nvm.read_line(addr), (3, 9)))
        snapshot = system.crash()
        state = recover(snapshot,
                        [(wl.log.base, wl.log.capacity)],
                        verify_macs=True)
        with pytest.raises(UncorrectableMediaError):
            wl.logical_digest(state.read)
        # The scrubber reports the same line as poisoned.
        degraded = DegradedModeManager(system)
        report = scrub(system, degraded=degraded)
        assert addr in report.poisoned_lines
        assert "POISONED" in report.render()


class TestMediaReadTransient:
    def test_retry_refetches_clean_bytes(self):
        # Two flips in the same 64-bit word: the corrupted *copy* is
        # detected-uncorrectable, so only the retry path can succeed.
        plan = FaultPlan(seed=SEED, specs=[
            FaultSpec("media_read_transient", after_n=1,
                      bits=(5, 21))])
        system, wl, injector = build(plan, NO_DEDUP_ECC)
        run_full(system, wl)
        addr = wl.base
        expected = system.nvm.read_line(addr)

        degraded = DegradedModeManager(system)
        assert degraded.read_line(addr) == expected
        assert injector.injected_of("media_read_transient")
        assert degraded.corrected == []  # stored line was never bad
        assert counters(system)["faults.read_retries"] >= 1


class TestMetadataFaults:
    def test_merkle_corruption_localised_by_scrub(self):
        plan = FaultPlan(seed=SEED, specs=[
            FaultSpec("meta_merkle", bits=(7,))])
        system, wl, injector = build(plan)
        run_full(system, wl)
        system.crash()  # power-failure faults strike here
        [record] = injector.injected
        report = scrub(system)
        assert report.merkle_failures == [record["leaf"]]
        assert not report.clean
        assert "MERKLE FAILURE" in report.render()

    def test_counter_corruption_raises_integrity_error(self):
        # No dedup: the counter table is the sole source of pad
        # identity, so a bumped counter cannot be shadowed.
        plan = FaultPlan(seed=SEED, specs=[
            FaultSpec("meta_counter", bits=(0,))])
        system, wl, injector = build(plan, NO_DEDUP)
        run_full(system, wl)
        snapshot = system.crash()
        [record] = injector.injected
        addr = record["addr"]
        # The scrubber flags the line whose (pad, counter) lost its
        # MAC — commits mint them atomically, so a gap means tamper.
        report = scrub(system)
        assert addr in report.mac_failures
        # Recovery refuses the image: IntegrityError when the line is
        # decrypted, or RecoveryError when the bumped line is in the
        # log region (the scan treats it as damage and the commit
        # probe refuses to roll back past it).
        with pytest.raises((IntegrityError, RecoveryError)):
            state = recover(snapshot,
                            [(wl.log.base, wl.log.capacity)],
                            verify_macs=True)
            state.read_line(addr)


class TestIrbFaults:
    """IRB damage must be caught by write-time invalidation — the
    final memory state matches a fault-free twin exactly."""

    def _digest_after(self, plan):
        system, wl, injector = build(plan)
        run_full(system, wl)
        return (wl.logical_digest(system.volatile.read), system,
                injector)

    def test_corrupt_entry_forces_recompute(self):
        plan = FaultPlan(seed=SEED, specs=[
            FaultSpec("irb_corrupt", after_n=2, bits=(17,))])
        digest, system, injector = self._digest_after(plan)
        clean_digest, _, _ = self._digest_after(None)
        assert injector.injected_of("irb_corrupt")
        assert digest == clean_digest
        assert counters(system)["janus.data_mismatches"] >= 1

    def test_stale_result_refreshed_not_consumed(self):
        plan = FaultPlan(seed=SEED, specs=[
            FaultSpec("irb_stale", after_n=2)])
        digest, system, injector = self._digest_after(plan)
        clean_digest, _, _ = self._digest_after(None)
        assert injector.injected_of("irb_stale")
        assert digest == clean_digest


class TestAdrFaults:
    """Dropped / torn lines at power loss: the log CRCs and MACs must
    detect the hole — recovery lands on a committed boundary or
    rejects, never silently diverges."""

    @pytest.mark.parametrize("kind", ["wq_drop", "wq_tear"])
    def test_never_silent(self, kind):
        digests, _horizon = reference_trajectory(
            "array_swap", "janus", PARAMS, SEED)
        plan = FaultPlan(seed=SEED,
                         specs=[FaultSpec(kind, after_n=1)])
        record = run_crash_point("array_swap", "janus", PARAMS, SEED,
                                 crash_at=0.0, plan=plan,
                                 crash_on_accept=9)
        assert record["injected"], "fault did not fire"
        if record["result"] == "recovered":
            # The damaged append was treated as a torn tail and the
            # state rolled onto an earlier committed boundary.
            assert record["prefix_ok"]
            assert record["digest"] == digests[record["committed"]]
            assert record["torn_log_lines"] >= 1
        else:
            assert record["result"].startswith("rejected:")


class TestDeterminism:
    def test_identical_plan_identical_injections(self):
        plan = FaultPlan.seeded(SEED, ("media_write_flip",
                                       "irb_corrupt"))
        runs = []
        for _ in range(2):
            system, wl, injector = build(
                FaultPlan.from_dict(plan.to_dict()), NO_DEDUP_ECC)
            run_full(system, wl)
            runs.append(injector.injected)
        assert runs[0] == runs[1]


class TestRetryPolicy:
    """The deterministic backoff schedule is pure integer arithmetic:
    same policy, same attempt, same sim-ns — always."""

    def test_delay_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(max_retries=5, base_delay_ns=50,
                             multiplier=2, max_delay_ns=300)
        assert [policy.delay_for(a) for a in range(1, 6)] \
            == [50, 100, 200, 300, 300]
        assert policy.delay_for(0) == 0
        assert policy.total_budget_ns() == 50 + 100 + 200 + 300 + 300

    def test_validate_rejects_nonsense(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1).validate()
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay_ns=-5).validate()
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0).validate()

    def test_backoff_consumes_sim_time_and_is_counted(self):
        # A transient read fault clears on retry; each retry must
        # advance the simulated clock by the policy's exact delay and
        # account it under faults.retry_backoff_ns.
        plan = FaultPlan(seed=SEED, specs=[
            FaultSpec("media_read_transient", after_n=1, bits=(3, 9))])
        system, wl, injector = build(plan, NO_DEDUP_ECC)
        run_full(system, wl)
        addr = next(iter(system.pipeline.by_name["ecc"].codes))
        policy = RetryPolicy(max_retries=2, base_delay_ns=70,
                             multiplier=3)
        degraded = DegradedModeManager(system, injector=injector,
                                       policy=policy)
        before = system.sim.now
        degraded.read_line(addr)  # transient: first retry clears it
        assert system.sim.now == before + policy.delay_for(1)
        stats = counters(system)
        assert stats["faults.read_retries"] == 1
        assert stats["faults.retry_backoff_ns"] == policy.delay_for(1)
        assert stats["faults.escalations"] == 0

    def test_exhausted_budget_escalates_to_poison(self):
        # Damage that survives every retry: the read must spend the
        # full backoff budget, then quarantine + raise — an accounted
        # escalation, not a silent or unbounded loop.
        plan = FaultPlan(seed=SEED, specs=[
            FaultSpec("media_write_flip", after_n=53, bits=(3, 9))])
        system, wl, injector = build(plan, NO_DEDUP_ECC)
        run_full(system, wl)
        [record] = injector.injected
        addr = record["addr"]
        policy = RetryPolicy(max_retries=3, base_delay_ns=40)
        degraded = DegradedModeManager(system, policy=policy)
        before = system.sim.now
        with pytest.raises(UncorrectableMediaError):
            degraded.read_line(addr)
        assert system.sim.now == before + policy.total_budget_ns()
        stats = counters(system)
        assert stats["faults.escalations"] == 1
        assert stats["faults.poisoned_lines"] == 1
        assert addr in degraded.poisoned


class TestFaultPlanValidation:
    """Construction-time validation: every defect reported at once,
    structured for assertion rather than string-matching."""

    def test_all_problems_reported_together(self):
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan(specs=[
                FaultSpec("cosmic_ray", after_n=0),
                FaultSpec("media_write_flip", probability=1.5),
            ])
        problems = excinfo.value.problems
        assert {(p["spec"], p["field"]) for p in problems} \
            == {(0, "kind"), (0, "after_n"), (1, "probability")}

    def test_overlapping_same_kind_line_ranges_rejected(self):
        with pytest.raises(FaultPlanError) as excinfo:
            FaultPlan(specs=[
                FaultSpec("media_write_flip",
                          line_range=(0x1000, 0x2000)),
                FaultSpec("media_write_flip",
                          line_range=(0x1800, 0x2800)),
            ])
        [problem] = excinfo.value.problems
        assert problem["field"] == "line_range"
        assert "overlaps" in problem["detail"]
        # Different kinds may share a window — no ambiguity there.
        FaultPlan(specs=[
            FaultSpec("media_write_flip", line_range=(0x1000, 0x2000)),
            FaultSpec("irb_corrupt", line_range=(0x1000, 0x2000)),
        ])

    def test_bad_line_range_and_stuck_value(self):
        with pytest.raises(FaultPlanError):
            FaultSpec("media_write_flip",
                      line_range=(0x2000, 0x1000)).validate()
        with pytest.raises(FaultPlanError):
            FaultSpec("media_write_flip", stuck_value=2).validate()
