"""Tests for the event-driven BMO executor."""

import pytest

from repro.bmo import build_pipeline
from repro.bmo.base import ADDR, DATA
from repro.bmo.executor import BmoExecutor
from repro.common.config import default_config
from repro.common.errors import SimulationError
from repro.sim import Resource, Simulator


def line(pattern: int) -> bytes:
    return bytes([pattern & 0xFF]) * 64


def make_executor(units=4, pipeline_fraction=1.0, **cfg_overrides):
    """Executor with fully-occupying units by default so the classic
    list-scheduling identities hold; pipelined-unit behaviour has its
    own tests below."""
    sim = Simulator()
    cfg = default_config(**cfg_overrides)
    pipeline = build_pipeline(cfg)
    executor = BmoExecutor(sim, pipeline,
                           Resource(sim, capacity=units, name="units"),
                           pipeline_fraction=pipeline_fraction)
    return sim, pipeline, executor


def test_serialized_run_charges_serial_latency():
    sim, pipeline, executor = make_executor()
    ctx = pipeline.make_context(addr=0x40, data=line(1))
    proc = sim.process(executor.run_serialized(ctx))
    sim.run()
    assert sim.now == pytest.approx(pipeline.serial_latency())
    assert set(ctx.completed) == set(pipeline.all_subops)


def test_dataflow_matches_static_parallel_schedule():
    sim, pipeline, executor = make_executor(units=4)
    ctx = pipeline.make_context(addr=0x40, data=line(1))
    sim.process(executor.run_subops(ctx))
    sim.run()
    static = pipeline.graph.parallel_schedule(units=4)
    critical_path = pipeline.graph.parallel_schedule(units=64).makespan
    # Both schedulers are greedy heuristics; the event-driven one must
    # fall between the critical-path bound and the static list
    # schedule (it never idles a unit while work is ready).
    assert critical_path <= sim.now <= static.makespan + 1e-9
    assert sim.now < pipeline.serial_latency()


def test_dataflow_with_one_unit_equals_serial_sum():
    sim, pipeline, executor = make_executor(units=1)
    ctx = pipeline.make_context(addr=0x40, data=line(1))
    sim.process(executor.run_subops(ctx))
    sim.run()
    assert sim.now == pytest.approx(pipeline.serial_latency())


def test_pre_execution_with_addr_only_runs_e1_e2():
    sim, pipeline, executor = make_executor()
    ctx = pipeline.make_context(addr=0x40)  # no data yet
    sim.process(executor.run_pre_execution(ctx))
    sim.run()
    assert ctx.completed == {"E1", "E2"}
    assert "otp" in ctx.values


def test_pre_execution_with_data_only_runs_d1_d2():
    sim, pipeline, executor = make_executor()
    ctx = pipeline.make_context(data=line(1))
    sim.process(executor.run_pre_execution(ctx))
    sim.run()
    assert ctx.completed == {"D1", "D2"}


def test_pre_execution_with_both_completes_everything():
    sim, pipeline, executor = make_executor()
    ctx = pipeline.make_context(addr=0x40, data=line(1))
    sim.process(executor.run_pre_execution(ctx))
    sim.run()
    assert set(ctx.completed) == set(pipeline.all_subops)


def test_refresh_and_complete_after_full_pre_execution_is_instant():
    sim, pipeline, executor = make_executor()
    ctx = pipeline.make_context(addr=0x40, data=line(1))
    sim.process(executor.run_pre_execution(ctx))
    sim.run()
    t_pre = sim.now

    def finish():
        yield from executor.refresh_and_complete(ctx)
        pipeline.commit(ctx)

    sim.process(finish())
    sim.run()
    assert sim.now == pytest.approx(t_pre)  # zero extra latency


def test_refresh_reruns_stale_counter_chain():
    sim, pipeline, executor = make_executor()
    victim = pipeline.make_context(addr=0x40, data=line(1))
    sim.process(executor.run_pre_execution(victim))
    sim.run()
    # Another write to the same line commits first -> counter stale.
    other = pipeline.make_context(addr=0x40, data=line(2))
    pipeline.execute_all(other)
    pipeline.commit(other)
    t0 = sim.now

    def finish():
        yield from executor.refresh_and_complete(victim)
        pipeline.commit(victim)

    sim.process(finish())
    sim.run()
    assert sim.now > t0  # had to re-run E1/E2 and dependents
    engine = pipeline.by_name["encryption"].engine
    assert engine.current_counter(0x40) == 2


def test_partial_subset_requires_completed_deps():
    sim, pipeline, executor = make_executor()
    ctx = pipeline.make_context(addr=0x40, data=line(1))
    with pytest.raises(SimulationError):
        proc = sim.process(executor.run_subops(ctx, ["E3"]))
        sim.run()
        if proc._exc:
            raise proc._exc


def test_refresh_requires_addr_and_data():
    sim, pipeline, executor = make_executor()
    ctx = pipeline.make_context(addr=0x40)
    with pytest.raises(SimulationError):
        list(executor.refresh_and_complete(ctx))


def test_concurrent_writes_contend_for_units():
    sim, pipeline, executor = make_executor(units=4)
    single_ctx = pipeline.make_context(addr=0x40, data=line(1))
    sim.process(executor.run_subops(single_ctx))
    sim.run()
    single = sim.now

    sim2, pipeline2, executor2 = make_executor(units=4)
    procs = []
    for i in range(4):
        ctx = pipeline2.make_context(addr=0x40 * (i + 1), data=line(i))
        procs.append(sim2.process(executor2.run_subops(ctx)))
    sim2.run()
    assert sim2.now > single  # contention stretched the makespan


def test_pipelined_units_shorten_contention_not_latency():
    """With an initiation interval below the latency, a single-write
    chain is unchanged but concurrent writes overlap on one unit."""
    sim, pipeline, executor = make_executor(units=1,
                                            pipeline_fraction=0.25)
    ctx = pipeline.make_context(addr=0x40, data=line(1))
    sim.process(executor.run_subops(ctx))
    sim.run()
    single = sim.now
    # Critical-path latency is NOT shortened by pipelining.
    critical = pipeline.graph.parallel_schedule(units=64).makespan
    assert single >= critical

    sim2, pipeline2, executor2 = make_executor(units=1,
                                               pipeline_fraction=0.25)
    for i in range(4):
        ctx2 = pipeline2.make_context(addr=0x40 * (i + 1), data=line(i))
        sim2.process(executor2.run_subops(ctx2))
    sim2.run()
    # Four writes through one pipelined unit cost far less than 4x.
    assert sim2.now < 2.5 * single


def test_invalid_pipeline_fraction_rejected():
    import pytest as _pytest
    with _pytest.raises(SimulationError):
        make_executor(pipeline_fraction=0.0)
    with _pytest.raises(SimulationError):
        make_executor(pipeline_fraction=1.5)


def test_stats_count_executed_subops():
    sim, pipeline, executor = make_executor()
    ctx = pipeline.make_context(addr=0x40, data=line(1))
    sim.process(executor.run_subops(ctx))
    sim.run()
    # Zero-latency ops (none by default) still count.
    assert executor.stats.counters["subops_executed"].value == \
        len(pipeline.all_subops)
