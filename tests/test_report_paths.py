"""Regression: figure/trace output paths must not require an existing
``results/`` tree (``mkdir(parents=True)`` everywhere a harness file
is written — ``repro figure --out``, ``repro run --trace/--stats``,
and chart saving all route through these helpers)."""

from pathlib import Path

from repro.harness.plot import save_chart
from repro.harness.report import ensure_parent, write_text


class TestEnsureParent:
    def test_creates_nested_parents(self, tmp_path):
        target = tmp_path / "results" / "figures" / "deep" / "fig9.txt"
        returned = ensure_parent(target)
        assert returned == str(target)
        assert target.parent.is_dir()
        assert not target.exists()  # only the directories

    def test_existing_parent_is_fine(self, tmp_path):
        target = tmp_path / "out.txt"
        assert ensure_parent(target) == str(target)
        assert ensure_parent(target) == str(target)  # idempotent

    def test_bare_filename_needs_no_mkdir(self):
        assert ensure_parent("plain.txt") == "plain.txt"


class TestWriteText:
    def test_writes_into_missing_directory(self, tmp_path):
        target = tmp_path / "a" / "b" / "c" / "report.txt"
        write_text("fig body", target)
        assert target.read_text() == "fig body\n"

    def test_trailing_newline_not_duplicated(self, tmp_path):
        target = tmp_path / "n" / "report.txt"
        write_text("line\n", target)
        assert target.read_text() == "line\n"

    def test_save_chart_delegates(self, tmp_path):
        target = tmp_path / "charts" / "fig11.txt"
        returned = save_chart("bars", target)
        assert Path(returned).read_text() == "bars\n"
