"""Tests for the counter-mode encryption engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import CryptoError
from repro.crypto import CounterModeEngine

LINE = st.binary(min_size=64, max_size=64)


@given(data=LINE, addr=st.integers(0, 2**40).map(lambda a: a * 64))
def test_encrypt_decrypt_roundtrip(data, addr):
    engine = CounterModeEngine()
    line = engine.encrypt(addr, data)
    engine.commit_counter(addr, line.counter)
    assert engine.decrypt(addr, line.ciphertext) == data


def test_ciphertext_differs_from_plaintext():
    engine = CounterModeEngine()
    data = bytes(64)
    line = engine.encrypt(0, data)
    assert line.ciphertext != data


def test_counter_increases_per_write():
    engine = CounterModeEngine()
    first = engine.encrypt(0x40, b"a" * 64)
    engine.commit_counter(0x40, first.counter)
    second = engine.encrypt(0x40, b"a" * 64)
    assert second.counter == first.counter + 1
    # Same plaintext, new counter => new ciphertext (no pad reuse).
    assert second.ciphertext != first.ciphertext


def test_commit_counter_must_increase():
    engine = CounterModeEngine()
    engine.commit_counter(0, 3)
    with pytest.raises(CryptoError):
        engine.commit_counter(0, 3)
    with pytest.raises(CryptoError):
        engine.commit_counter(0, 2)


def test_next_counter_is_pure():
    engine = CounterModeEngine()
    assert engine.next_counter(0x100) == 1
    assert engine.next_counter(0x100) == 1  # no state change
    engine.commit_counter(0x100, 1)
    assert engine.next_counter(0x100) == 2


def test_wrong_counter_garbles_decryption():
    engine = CounterModeEngine()
    data = b"secret-!" * 8
    assert len(data) == 64
    line = engine.encrypt(0, data)
    engine.commit_counter(0, line.counter)
    assert engine.decrypt(0, line.ciphertext, counter=line.counter + 1) != data


def test_mac_verifies_and_detects_tamper():
    engine = CounterModeEngine()
    line = engine.encrypt(0, bytes(64))
    assert engine.verify_mac(line)
    tampered = bytearray(line.ciphertext)
    tampered[0] ^= 0xFF
    line.ciphertext = bytes(tampered)
    assert not engine.verify_mac(line)


def test_bad_line_size_rejected():
    engine = CounterModeEngine()
    with pytest.raises(CryptoError):
        engine.encrypt(0, b"short")


def test_snapshot_restore_counters():
    engine = CounterModeEngine()
    engine.commit_counter(0, 1)
    engine.commit_counter(64, 5)
    snap = engine.snapshot_counters()
    engine.commit_counter(0, 2)
    engine.restore_counters(snap)
    assert engine.current_counter(0) == 1
    assert engine.current_counter(64) == 5


def test_pads_differ_across_addresses_same_counter():
    engine = CounterModeEngine()
    data = bytes(64)
    a = engine.encrypt(0x00, data, counter=1)
    b = engine.encrypt(0x40, data, counter=1)
    assert a.ciphertext != b.ciphertext
