"""The cross-layer invariant checker (``repro run --check``).

Three angles: clean systems pass with checks actually running; each
invariant fires on a targeted state tamper; and the planted
IRB-merge mutation — the bug class the checker exists for — is caught
on an ordinary API program.
"""

import pytest

from repro.common.config import default_config
from repro.consistency.undo_log import pack_record, _BACKUP_MAGIC, \
    _COMMIT_MAGIC
from repro.core import NvmSystem
from repro.harness.runner import run_point
from repro.janus.irb import IntermediateResultBuffer, IrbEntry
from repro.validate import InvariantChecker, InvariantViolation
from repro.validate.oracles import LINE, PALETTE, run_write_program

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def buggy_merge(self, existing, incoming):
    """The planted mutation: an address-less entry gains its address
    but is never re-filed from ``_data_only`` into the address
    indexes (``_by_line`` / ``_by_thread_line``) — exactly the desync
    the bijection check makes observable."""
    existing.ctx.merge_from(incoming.ctx)
    if existing.line_addr is None and incoming.line_addr is not None:
        existing.line_addr = incoming.line_addr
    if existing.data is None:
        existing.data = incoming.data
    existing.complete = False


@pytest.fixture
def planted_merge_bug(monkeypatch):
    monkeypatch.setattr(IntermediateResultBuffer, "_merge", buggy_merge)


def _checked_system(mode="janus"):
    system = NvmSystem(default_config(mode=mode, seed=13,
                                      check_invariants=True))
    assert system.checker is not None
    return system


# ---------------------------------------------------------------------------
# clean systems pass, and the checks actually run
# ---------------------------------------------------------------------------
def test_clean_write_program_passes_under_checker():
    ops = [("hinted", 0, 1), ("split", 1, 2), ("stale", 2, 3, 4),
           ("store", 3, 5), ("clear",), ("data", 4, 0)]
    run_write_program("janus", ops, n_lines=8, check=True, threads=2)


@pytest.mark.parametrize("mode", ["serialized", "janus"])
def test_checked_workload_run_counts_checks(mode):
    result = run_point("queue", mode=mode, check_invariants=True)
    assert result.stats["validate.checks"] > 0
    assert result.stats["validate.violations"] == 0


def test_checker_hooks_every_pipeline_commit():
    system = _checked_system()
    before = system.checker._commits_seen
    core = system.cores[0]
    base = system.heap.alloc_line(4 * LINE, label="arena")

    def program():
        for slot in range(4):
            yield from core.store(base + slot * LINE, PALETTE[slot])
            yield from core.persist(base + slot * LINE, LINE)

    system.run_programs([program()])
    assert system.checker._commits_seen >= before + 4


# ---------------------------------------------------------------------------
# each invariant fires on a targeted tamper
# ---------------------------------------------------------------------------
def _run_small_program(system, n_lines=4):
    core = system.cores[0]
    base = system.heap.alloc_line(n_lines * LINE, label="arena")

    def program():
        for slot in range(n_lines):
            obj = core.api.pre_init()
            yield from core.api.pre_both(obj, base + slot * LINE,
                                         PALETTE[slot])
            yield from core.store(base + slot * LINE, PALETTE[slot])
            yield from core.persist(base + slot * LINE, LINE)

    system.run_programs([program()])
    return base


def test_irb_bijection_catches_index_desync():
    system = _checked_system()
    _run_small_program(system)
    irb = system.janus.irb
    ghost = IrbEntry(pre_id=99, thread_id=0, transaction_id=0,
                     line_addr=0, data=PALETTE[0], data_seq=0)
    irb._by_line.setdefault(0, {})[ghost] = None  # not in _order
    with pytest.raises(InvariantViolation) as excinfo:
        system.checker.check_all()
    assert excinfo.value.invariant == "irb-bijection"
    assert excinfo.value.layer == "janus"


def test_wq_accounting_identity_checked():
    system = _checked_system()
    _run_small_program(system)
    system.write_queue.drained += 1  # books no longer balance
    with pytest.raises(InvariantViolation) as excinfo:
        system.checker.check_all()
    assert excinfo.value.invariant == "wq-epoch-order"


def test_merkle_root_rebuild_catches_leaf_tamper():
    system = _checked_system()
    _run_small_program(system)
    integrity = system.pipeline.by_name["integrity"]
    assert integrity.committed_leaves, "program committed no leaves"
    index = next(iter(integrity.committed_leaves))
    original = integrity.committed_leaves[index]
    integrity.committed_leaves[index] = bytes(
        b ^ 0xFF for b in original)
    with pytest.raises(InvariantViolation) as excinfo:
        system.checker.check_all(full=True)
    assert excinfo.value.invariant == "merkle-root"
    assert excinfo.value.snapshot["live_root"] != \
        excinfo.value.snapshot["rebuilt_root"]


def test_counter_monotonicity_watermarked_across_checks():
    system = _checked_system()
    _run_small_program(system)
    engine = system.pipeline.by_name["encryption"].engine
    addr = next(iter(engine._counters))
    engine._counters[addr] -= 1  # pad reuse
    with pytest.raises(InvariantViolation) as excinfo:
        system.checker.check_all()
    assert excinfo.value.invariant == "counter-monotone"
    assert excinfo.value.snapshot["current"] < \
        excinfo.value.snapshot["previous"]


def test_dedup_refcount_alias_agreement_checked():
    system = _checked_system()
    _run_small_program(system)
    dedup = system.pipeline.by_name["dedup"]
    assert dedup.table.entries, "program deduplicated nothing"
    entry = next(iter(dedup.table.entries.values()))
    entry.refcount += 1  # refcount no longer equals remap aliases
    with pytest.raises(InvariantViolation) as excinfo:
        system.checker.check_all()
    assert excinfo.value.invariant == "dedup-refcount"


def test_log_committed_prefix_rule_checked():
    system = _checked_system()
    core = system.cores[0]
    from repro.consistency.undo_log import UndoLog
    log = UndoLog(core, capacity_bytes=4096)
    payload = PALETTE[0]
    records = [
        pack_record(_BACKUP_MAGIC, 1, 64, len(payload),
                    payload=payload),
        payload,
        pack_record(_COMMIT_MAGIC, 1, 0, 0),
        # txn 1 appends another backup AFTER its own commit record.
        pack_record(_BACKUP_MAGIC, 1, 128, len(payload),
                    payload=payload),
        payload,
    ]
    addr = log.base
    for record in records:
        system.volatile.write(addr, record)
        addr += len(record)
    with pytest.raises(InvariantViolation) as excinfo:
        system.checker.check_all()
    assert excinfo.value.invariant == "log-prefix"
    assert excinfo.value.snapshot["txn_id"] == 1


# ---------------------------------------------------------------------------
# violation structure
# ---------------------------------------------------------------------------
def test_violation_is_structured_and_jsonable():
    import json
    violation = InvariantViolation(
        "irb-bijection", "janus", "example",
        {"entry": {"pre_id": 1}})
    assert "[janus:irb-bijection]" in str(violation)
    round_trip = json.loads(json.dumps(violation.as_dict()))
    assert round_trip["invariant"] == "irb-bijection"
    assert round_trip["snapshot"]["entry"]["pre_id"] == 1


def test_violations_are_counted_in_metrics():
    system = _checked_system()
    _run_small_program(system)
    system.write_queue.drained += 1
    with pytest.raises(InvariantViolation):
        system.checker.check_all()
    flat = system.metrics.as_flat_dict()
    assert flat["validate.violations"] == 1


# ---------------------------------------------------------------------------
# the planted mutation (the acceptance-criterion bug)
# ---------------------------------------------------------------------------
def test_checker_catches_planted_merge_bug(planted_merge_bug):
    """A data-only entry gaining its address without re-filing is
    invisible to every unit test but caught by the bijection check on
    an ordinary split-request program."""
    with pytest.raises(InvariantViolation) as excinfo:
        run_write_program("janus", [("split", 0, 1)], n_lines=4,
                          check=True, threads=2)
    assert excinfo.value.invariant == "irb-bijection"


def test_clean_split_program_passes_without_mutation():
    run_write_program("janus", [("split", 0, 1)], n_lines=4,
                      check=True, threads=2)
