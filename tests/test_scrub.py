"""Tests for the NVM image scrubber."""

import pytest

from repro.common.config import default_config
from repro.consistency import scrub
from repro.core import NvmSystem
from repro.workloads import WorkloadParams, make_workload


def run_system(workload="hash_table", mode="serialized", n_txns=10,
               **overrides):
    system = NvmSystem(default_config(mode=mode, **overrides))
    wl = make_workload(workload, system, system.cores[0],
                       WorkloadParams(n_items=16, value_size=64,
                                      n_transactions=n_txns),
                       variant="manual" if mode == "janus"
                       else "baseline")
    system.run_programs([wl.run()])
    return system, wl


class TestCleanImages:
    @pytest.mark.parametrize("workload", ["array_swap", "queue",
                                          "hash_table", "btree",
                                          "tatp", "tpcc"])
    def test_healthy_run_scrubs_clean(self, workload):
        system, _ = run_system(workload)
        report = scrub(system)
        assert report.clean, report.render()
        assert report.lines_checked > 0
        assert report.leaves_checked > 0

    def test_janus_mode_scrubs_clean(self):
        system, _ = run_system(mode="janus")
        report = scrub(system)
        assert report.clean, report.render()

    def test_relocated_ciphertexts_are_covered(self):
        system, _ = run_system("array_swap", n_txns=25)
        dedup = system.pipeline.by_name["dedup"]
        report = scrub(system)
        assert report.clean, report.render()
        # At least as many live entries as checked lines with MACs.
        assert report.lines_checked <= len(dedup.table.entries)


class TestTamperDetection:
    def test_ciphertext_corruption_caught_by_mac(self):
        system, _ = run_system()
        # Corrupt one stored ciphertext line of a live entry.
        dedup = system.pipeline.by_name["dedup"]
        encryption = system.pipeline.by_name["encryption"]
        victim = next(
            e for e in dedup.table.entries.values()
            if (e.pad_addr, e.counter) in encryption.macs)
        line = bytearray(system.nvm.read_line(victim.store_addr))
        line[13] ^= 0x40
        system.nvm.write_line(victim.store_addr, bytes(line))
        report = scrub(system)
        assert report.mac_failures == [victim.store_addr]
        assert not report.merkle_failures

    def test_metadata_tampering_caught_by_merkle(self):
        system, _ = run_system()
        integrity = system.pipeline.by_name["integrity"]
        index = next(iter(integrity.committed_leaves))
        integrity.committed_leaves[index] = b"forged-metadata"
        report = scrub(system)
        assert index in report.merkle_failures
        assert not report.mac_failures

    def test_dangling_remap_caught(self):
        system, _ = run_system()
        dedup = system.pipeline.by_name["dedup"]
        addr = next(iter(dedup.table.remap))
        dedup.table.remap[addr] = b"no-such-fingerprint"
        report = scrub(system)
        assert any("dropped entry" in f for f in report.dedup_failures)

    def test_refcount_corruption_caught(self):
        system, _ = run_system()
        dedup = system.pipeline.by_name["dedup"]
        entry = next(iter(dedup.table.entries.values()))
        entry.refcount += 5
        report = scrub(system)
        assert any("refcount" in f for f in report.dedup_failures)

    def test_render_localises_damage(self):
        system, _ = run_system()
        dedup = system.pipeline.by_name["dedup"]
        entry = next(iter(dedup.table.entries.values()))
        line = bytearray(system.nvm.read_line(entry.store_addr))
        line[0] ^= 0xFF
        system.nvm.write_line(entry.store_addr, bytes(line))
        text = scrub(system).render()
        assert "MAC FAILURE" in text
        assert f"{entry.store_addr:#x}" in text


class TestRefcountInvariant:
    @pytest.mark.parametrize("workload", ["array_swap", "hash_table",
                                          "tpcc"])
    def test_refcounts_equal_alias_counts_after_churn(self, workload):
        """The dedup refcounting survives heavy overwrite churn."""
        system, _ = run_system(workload, n_txns=30)
        report = scrub(system)
        assert report.dedup_failures == [], report.render()


class TestCrashableScrub:
    """A scrub interrupted mid-heal must not lose earlier poison
    records — the quarantine set is the contract that survives the
    crash (PR 8 regression: the soak harness shares one quarantine
    across recovery, re-recovery and scrub within a cycle)."""

    @staticmethod
    def _damaged_system():
        from repro.core import NvmSystem
        from repro.workloads import WorkloadParams, make_workload

        system = NvmSystem(default_config(
            bmos=("dedup", "encryption", "integrity", "ecc")))
        wl = make_workload(
            "hash_table", system, system.cores[0],
            WorkloadParams(n_items=16, value_size=64,
                           n_transactions=10), variant="baseline")
        system.run_programs([wl.run()])
        dedup = system.pipeline.by_name["dedup"]
        enc = system.pipeline.by_name["encryption"]
        ecc = system.pipeline.by_name["ecc"]
        live = [e for e in dedup.table.entries.values()
                if (e.pad_addr, e.counter) in enc.macs
                and e.store_addr in ecc.codes]
        victim_p, victim_h = live[0], live[1]
        # victim_p: two flips in one 64-bit word — uncorrectable,
        # walked first; victim_h: one flip — heals, walked second.
        line = bytearray(system.nvm.read_line(victim_p.store_addr))
        line[0] ^= 0x03
        system.nvm.write_line(victim_p.store_addr, bytes(line))
        line = bytearray(system.nvm.read_line(victim_h.store_addr))
        line[5] ^= 0x10
        system.nvm.write_line(victim_h.store_addr, bytes(line))
        return system, victim_p.store_addr, victim_h.store_addr

    def test_crash_in_heal_path_keeps_quarantine(self):
        from repro.common.errors import RecoveryCrash
        from repro.faults import (
            DegradedModeManager,
            FaultInjector,
            FaultPlan,
            FaultSpec,
        )

        # Probe pass on an identical twin: find the step index of the
        # heal that follows the poison in walk order.
        class Probe:
            def __init__(self):
                self.steps = []

            def on_scrub_step(self, stage, **detail):
                self.steps.append(stage)

            def filter_read(self, addr, raw):
                return raw

        twin, _, _ = self._damaged_system()
        probe = Probe()
        scrub(twin, degraded=DegradedModeManager(twin, injector=probe),
              injector=probe)
        poison_step = probe.steps.index("poison") + 1
        heal_step = probe.steps.index("heal") + 1
        assert poison_step < heal_step

        # Crash pass: scrub_crash armed exactly at the heal step.
        system, poisoned_addr, healed_addr = self._damaged_system()
        injector = FaultInjector(FaultPlan(seed=1, specs=[
            FaultSpec(kind="scrub_crash", after_n=heal_step)]))
        quarantine = set()
        manager = DegradedModeManager(system, injector=injector,
                                      quarantine=quarantine)
        with pytest.raises(RecoveryCrash):
            scrub(system, degraded=manager, injector=injector)
        # The poison recorded before the crash must survive it.
        assert poisoned_addr in quarantine

        # Re-scrub with a fresh manager sharing the quarantine (what
        # the soak harness does after a mid-scrub crash): converges,
        # still accounts the poisoned line, never silently MAC-fails
        # or resurrects it.
        manager2 = DegradedModeManager(system, quarantine=quarantine)
        report = scrub(system, degraded=manager2)
        assert report.clean, report.render()
        assert poisoned_addr in report.poisoned_lines
        assert poisoned_addr in quarantine
        assert healed_addr not in report.poisoned_lines
