"""End-to-end tests for the Janus engine and software interface."""

import pytest

from repro.bmo import build_pipeline
from repro.bmo.executor import BmoExecutor
from repro.common.config import default_config
from repro.janus import JanusEngine, JanusInterface
from repro.janus.queues import PreExecRequest, PreFunc
from repro.sim import Resource, Simulator


def line(pattern: int) -> bytes:
    return bytes([pattern & 0xFF]) * 64


def make_engine(**cfg_overrides):
    sim = Simulator()
    cfg = default_config(**cfg_overrides)
    pipeline = build_pipeline(cfg)
    units = Resource(sim, capacity=cfg.janus.scaled("bmo_units"),
                     name="units")
    executor = BmoExecutor(sim, pipeline, units)
    engine = JanusEngine(sim, pipeline, executor, cfg.janus)
    return sim, cfg, pipeline, engine


def submit_both(engine, addr, data, pre_id=1, thread=0):
    engine.submit(PreExecRequest(
        pre_id=pre_id, thread_id=thread, transaction_id=0,
        func=PreFunc.BOTH, addr=addr, data=data, size=len(data)))


def test_pre_execution_fills_irb_and_completes():
    sim, cfg, pipeline, engine = make_engine()
    submit_both(engine, 0x1000, line(1))
    sim.run()
    entries = engine.irb.entries()
    assert len(entries) == 1
    assert entries[0].complete
    assert set(entries[0].ctx.completed) == set(pipeline.all_subops)


def test_write_after_full_pre_execution_is_instant_and_fully_flagged():
    sim, cfg, pipeline, engine = make_engine()
    submit_both(engine, 0x1000, line(1))
    sim.run()
    t0 = sim.now
    results = []

    def write():
        ctx, fully = yield from engine.service_write(0, 0x1000, line(1))
        results.append((ctx, fully, sim.now))

    sim.process(write())
    sim.run()
    ctx, fully, t_done = results[0]
    assert fully
    assert t_done == pytest.approx(t0)
    action = pipeline.commit(ctx)
    assert action.write_data
    assert engine.stats.counters["fully_pre_executed"].value == 1


def test_write_without_pre_execution_runs_parallel_bmos():
    sim, cfg, pipeline, engine = make_engine()
    results = []

    def write():
        ctx, fully = yield from engine.service_write(0, 0x2000, line(2))
        results.append((fully, sim.now))

    sim.process(write())
    sim.run()
    fully, t_done = results[0]
    assert not fully
    # Took at least the parallel critical path, less than serial.
    assert 0 < t_done < pipeline.serial_latency()


def test_addr_only_pre_execution_partially_helps():
    sim, cfg, pipeline, engine = make_engine()
    engine.submit(PreExecRequest(
        pre_id=1, thread_id=0, transaction_id=0,
        func=PreFunc.ADDR, addr=0x1000, size=64))
    sim.run()
    entry = engine.irb.entries()[0]
    assert entry.ctx.completed == {"E1", "E2"}
    results = []

    def write():
        ctx, fully = yield from engine.service_write(0, 0x1000, line(3))
        results.append((fully, sim.now - t0))

    t0 = sim.now
    sim.process(write())
    sim.run()
    fully, elapsed = results[0]
    assert not fully
    assert 0 < elapsed < pipeline.serial_latency()


def test_data_mismatch_reruns_data_dependent_subops():
    sim, cfg, pipeline, engine = make_engine()
    submit_both(engine, 0x1000, line(1))
    sim.run()
    t0 = sim.now
    results = []

    def write():
        # Different data than was pre-executed.
        ctx, fully = yield from engine.service_write(0, 0x1000, line(9))
        results.append((ctx, fully, sim.now - t0))

    sim.process(write())
    sim.run()
    ctx, fully, elapsed = results[0]
    assert not fully
    assert engine.stats.counters["data_mismatches"].value == 1
    assert elapsed > 0
    # The committed ciphertext must decrypt to the *new* data.
    action = pipeline.commit(ctx)
    engine_enc = pipeline.by_name["encryption"].engine
    assert engine_enc.decrypt(0x1000, action.payload) == line(9)


def test_write_arriving_before_pre_execution_completes_waits():
    sim, cfg, pipeline, engine = make_engine()
    results = []

    def racer():
        submit_both(engine, 0x1000, line(1))
        # Arrive almost immediately, long before MD5 (321 ns) is done.
        yield sim.timeout(5)
        ctx, fully = yield from engine.service_write(0, 0x1000, line(1))
        results.append((fully, sim.now))

    sim.process(racer())
    sim.run()
    fully, t_done = results[0]
    assert fully  # complete-bit path: waited for in-flight work
    assert t_done < pipeline.serial_latency() + 5


def test_irb_capacity_limits_pre_execution():
    sim, cfg, pipeline, engine = make_engine()
    engine.irb.capacity = 2
    for i in range(4):
        submit_both(engine, 0x1000 + 64 * i, line(i), pre_id=i + 1)
    sim.run()
    assert len(engine.irb) == 2
    assert engine.irb.stats.counters["dropped_full"].value == 2


def test_irb_full_drops_are_not_counted_as_admitted():
    """ops_admitted must count only operations that actually landed in
    the IRB — a full-IRB drop used to be double-counted as both
    admitted and dropped."""
    sim, cfg, pipeline, engine = make_engine()
    engine.irb.capacity = 2
    for i in range(5):
        submit_both(engine, 0x1000 + 64 * i, line(i), pre_id=i + 1)
    sim.run()
    admitted = engine.stats.counters["ops_admitted"].value
    dropped = engine.irb.stats.counters["dropped_full"].value
    assert admitted == 2
    assert dropped == 3
    landed = (engine.irb.stats.counters["inserted"].value
              + engine.irb.stats.counters["merged"].value)
    assert admitted == landed


def test_admit_pre_executes_the_merged_entry():
    """insert() returns the owning (possibly merged-into) entry and
    _admit must pre-execute that one, not the discarded duplicate."""
    sim, cfg, pipeline, engine = make_engine()
    api = JanusInterface(sim, engine, thread_id=0)
    obj = api.pre_init()

    def prog():
        yield from api.pre_data(obj, line(4))
        yield from api.pre_addr(obj, 0x3000, 64)
        yield sim.timeout(2000)

    sim.process(prog())
    sim.run()
    entries = engine.irb.entries()
    assert len(entries) == 1
    assert entries[0].complete
    assert entries[0].inflight is None


def test_metadata_change_invalidation_end_to_end():
    sim, cfg, pipeline, engine = make_engine()
    # Two lines pre-executed with the same value: second one is a dup
    # of the first *after* the first commits.
    submit_both(engine, 0x1000, line(7), pre_id=1)
    sim.run()
    done = []

    def writes():
        ctx, _ = yield from engine.service_write(0, 0x1000, line(7))
        pipeline.commit(ctx)
        # Overwrite the canonical copy with different data; dedup
        # metadata changes and notifies the IRB.
        submit_both(engine, 0x2000, line(7), pre_id=2)
        yield sim.timeout(2000)  # let pre-execution finish
        ctx2, _ = yield from engine.service_write(0, 0x1000, line(8))
        pipeline.commit(ctx2)
        ctx3, fully3 = yield from engine.service_write(0, 0x2000, line(7))
        action = pipeline.commit(ctx3)
        done.append((fully3, action))

    sim.process(writes())
    sim.run()
    fully3, action = done[0]
    # The entry for 0x2000 was invalidated (or its verdict refreshed):
    # the value 7 no longer exists in memory, so it must be written.
    assert action.write_data


def test_thread_exit_clears_entries():
    sim, cfg, pipeline, engine = make_engine()
    submit_both(engine, 0x1000, line(1), thread=3)
    sim.run()
    assert len(engine.irb) == 1
    engine.clear_thread(3)
    assert len(engine.irb) == 0


def test_memory_swap_clears_range():
    sim, cfg, pipeline, engine = make_engine()
    submit_both(engine, 0x1000, line(1), pre_id=1)
    submit_both(engine, 0x8000, line(2), pre_id=2)
    sim.run()
    engine.on_memory_swap(0x0, 0x4000)
    assert len(engine.irb) == 1
    assert engine.irb.entries()[0].line_addr == 0x8000


class TestInterface:
    def test_disabled_interface_is_free_noop(self):
        sim = Simulator()
        api = JanusInterface(sim, engine=None, thread_id=0)
        obj = api.pre_init()

        def prog():
            yield from api.pre_addr(obj, 0x1000, 64)
            yield from api.pre_data(obj, line(1))
            yield from api.pre_start_buf(obj)
            yield sim.timeout(1)

        sim.process(prog())
        sim.run()
        assert sim.now == pytest.approx(1.0)
        assert api.calls == 0

    def test_pre_init_assigns_unique_ids(self):
        sim = Simulator()
        api = JanusInterface(sim, engine=None, thread_id=5,
                             transaction_id_provider=lambda: 42)
        a, b = api.pre_init(), api.pre_init()
        assert a.pre_id != b.pre_id
        assert a.thread_id == 5 and a.transaction_id == 42

    def test_split_addr_data_calls_merge_in_irb(self):
        sim, cfg, pipeline, engine = make_engine()
        api = JanusInterface(sim, engine, thread_id=0)
        obj = api.pre_init()

        def prog():
            yield from api.pre_data(obj, line(4))
            yield from api.pre_addr(obj, 0x3000, 64)
            yield sim.timeout(2000)

        sim.process(prog())
        sim.run()
        entries = engine.irb.entries()
        assert len(entries) == 1
        assert entries[0].line_addr == 0x3000
        assert set(entries[0].ctx.completed) == set(pipeline.all_subops)

    def test_deferred_buf_calls_coalesce(self):
        sim, cfg, pipeline, engine = make_engine()
        api = JanusInterface(sim, engine, thread_id=0)
        obj = api.pre_init()

        def prog():
            yield from api.pre_both_buf(obj, 0x4000, b"\xAA" * 32, 32)
            yield from api.pre_both_buf(obj, 0x4020, b"\xBB" * 32, 32)
            yield from api.pre_start_buf(obj)
            yield sim.timeout(2000)

        sim.process(prog())
        sim.run()
        assert engine.request_queue.coalesced == 1
        entries = engine.irb.entries()
        assert len(entries) == 1
        assert entries[0].data == b"\xAA" * 32 + b"\xBB" * 32

    def test_pre_both_val_with_line_image(self):
        sim, cfg, pipeline, engine = make_engine()
        api = JanusInterface(sim, engine, thread_id=0)
        obj = api.pre_init()
        image = (1).to_bytes(8, "little") + bytes(56)

        def prog():
            yield from api.pre_both_val(obj, 0x5000, 1, line_image=image)
            yield sim.timeout(2000)
            ctx, fully = yield from engine.service_write(0, 0x5000, image)
            assert fully

        proc = sim.process(prog())
        sim.run()
        assert proc._exc is None
