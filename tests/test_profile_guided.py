"""Tests for profile-guided instrumentation (§6 future work)."""

import pytest

from repro.compiler.profile_guided import (
    ProfileGuidedInstrumenter,
    RecordingPlan,
    build_profile_guided_plan,
)
from repro.harness.runner import run_point, speedup_over
from repro.workloads import WORKLOADS, WorkloadParams

FAST = WorkloadParams(n_items=16, value_size=64, n_transactions=6)


class TestRecordingPlan:
    def test_issues_nothing(self):
        plan = RecordingPlan()
        assert plan.at("anything") == []

    def test_records_availability(self):
        plan = RecordingPlan()
        plan.observe("entry", {"item": (0x40, b"\x01" * 64, 64)})
        plan.observe("entry", {"item": (0x40, None, 64)})
        record = plan.observations[("entry", "item")]
        assert record.firings == 2
        assert record.with_addr == 2
        assert record.with_both == 1

    def test_partial_line_data_not_counted_usable(self):
        plan = RecordingPlan()
        plan.observe("entry", {"field": (0x40, b"\x01" * 32, 32)})
        record = plan.observations[("entry", "field")]
        assert record.with_data == 0  # sub-line: decoder would drop it

    def test_hook_order_tracks_first_seen(self):
        plan = RecordingPlan()
        plan.observe("b", {})
        plan.observe("a", {})
        plan.observe("b", {})
        assert plan.hook_order == ["b", "a"]


class TestDerivation:
    def test_consistent_both_availability_yields_both(self):
        plan = RecordingPlan()
        for _ in range(10):
            plan.observe("entry", {"item": (0x40, b"\x01" * 64, 64)})
        derived = ProfileGuidedInstrumenter().derive(plan)
        kinds = {(d.kind, d.obj) for d in derived.at("entry")}
        assert ("both", "item") in kinds

    def test_object_claimed_at_earliest_hook_only(self):
        plan = RecordingPlan()
        for _ in range(5):
            plan.observe("early", {"item": (0x40, b"\x01" * 64, 64)})
            plan.observe("late", {"item": (0x40, b"\x01" * 64, 64)})
        derived = ProfileGuidedInstrumenter().derive(plan)
        assert derived.at("early")
        assert not derived.at("late")

    def test_inconsistent_availability_filtered(self):
        plan = RecordingPlan()
        plan.observe("entry", {"item": (0x40, b"\x01" * 64, 64)})
        for _ in range(9):
            plan.observe("entry", {"item": (None, None, 0)})
        derived = ProfileGuidedInstrumenter(
            min_availability=0.9).derive(plan)
        assert derived.at("entry") == []

    def test_addr_only_falls_back_to_addr_directive(self):
        plan = RecordingPlan()
        for _ in range(5):
            plan.observe("entry", {"item": (0x40, None, 64)})
        derived = ProfileGuidedInstrumenter().derive(plan)
        assert [d.kind for d in derived.at("entry")] == ["addr"]


class TestEndToEnd:
    @pytest.mark.parametrize("name", ["array_swap", "rbtree", "tpcc"])
    def test_profile_covers_loop_hooks_the_static_pass_cannot(self,
                                                              name):
        plan = build_profile_guided_plan(name, params=FAST)
        static = WORKLOADS[name].auto_plan()
        if name in ("rbtree", "tpcc"):
            loop_hook = "update_iter" if name == "rbtree" else "ol_iter"
            assert plan.at(loop_hook), plan.describe()
            assert not static.at(loop_hook)

    def test_profile_guided_beats_static_auto_on_rbtree(self):
        ser = run_point("rbtree", mode="serialized", params=FAST)
        auto = run_point("rbtree", mode="janus", variant="auto",
                         params=FAST)
        profile = run_point("rbtree", mode="janus", variant="profile",
                            params=FAST)
        assert speedup_over(ser, profile) > speedup_over(ser, auto)

    def test_profile_guided_close_to_manual_on_tpcc(self):
        ser = run_point("tpcc", mode="serialized", params=FAST)
        manual = run_point("tpcc", mode="janus", variant="manual",
                           params=FAST)
        profile = run_point("tpcc", mode="janus", variant="profile",
                            params=FAST)
        ratio = speedup_over(ser, profile) / speedup_over(ser, manual)
        assert ratio > 0.85

    def test_profile_variant_via_make_workload(self):
        from repro.common.config import default_config
        from repro.core import NvmSystem
        from repro.workloads import make_workload

        system = NvmSystem(default_config(mode="janus"))
        workload = make_workload("array_swap", system,
                                 system.cores[0], FAST,
                                 variant="profile")
        system.run_programs([workload.run()])
        assert workload.completed_transactions == FAST.n_transactions
        assert system.janus.stats.counters["requests"].value > 0
