"""Functional equivalence across design points.

The paper's requirement 1 (§3.2) in its strongest form: Janus (and
parallelization) are *latency* optimizations — the recoverable
contents of NVM after any program must be byte-identical to the
serialized baseline's, for arbitrary write sequences.

The heavy lifting lives in :mod:`repro.validate.oracles` (also used
by ``repro fuzz``); these tests drive the library over randomized and
hand-picked op programs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.validate.oracles import (
    LINE,
    PALETTE,
    OracleMismatch,
    check_mode_equivalence,
    check_workload_equivalence,
    diff_images,
    partition_ops,
    run_write_program,
)

N_LINES = 8
_SLOTTED = ("store", "hinted", "addr", "data", "split")


@st.composite
def write_program(draw):
    """A random op sequence over the oracle vocabulary — plain and
    hinted stores, stale hints, split (merge-inducing) requests,
    thread clears, and swap notifications."""
    n_ops = draw(st.integers(1, 12))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(
            _SLOTTED + ("stale", "clear", "swap", "compute")))
        if kind in _SLOTTED:
            ops.append((kind, draw(st.integers(0, N_LINES - 1)),
                        draw(st.integers(0, len(PALETTE) - 1))))
        elif kind == "stale":
            ops.append(("stale", draw(st.integers(0, N_LINES - 1)),
                        draw(st.integers(0, len(PALETTE) - 1)),
                        draw(st.integers(0, len(PALETTE) - 1))))
        elif kind == "clear":
            ops.append(("clear",))
        elif kind == "swap":
            lo = draw(st.integers(0, N_LINES - 1))
            hi = draw(st.integers(lo + 1, N_LINES))
            ops.append(("swap", lo, hi))
        else:
            ops.append(("compute", draw(st.integers(1, 10)) * 100))
    return ops


@settings(max_examples=12, deadline=None)
@given(ops=write_program())
def test_all_modes_recover_identical_contents(ops):
    check_mode_equivalence(
        ops, modes=("parallel", "janus", "ideal", "coalesced"),
        n_lines=N_LINES)


@settings(max_examples=8, deadline=None)
@given(ops=write_program())
def test_two_thread_janus_equivalence(ops):
    """Concurrent streams (slot-parity partition): one thread's
    commits land inside the other's pre-execution windows."""
    check_mode_equivalence(ops, modes=("janus",), n_lines=N_LINES,
                           threads=2)


def _expected_image(ops):
    """Last write per slot wins; swap is an IRB notification only."""
    image = [b"\x00" * LINE for _ in range(N_LINES)]
    for op in ops:
        if op[0] in _SLOTTED:
            image[op[1]] = PALETTE[op[2]]
        elif op[0] == "stale":
            image[op[1]] = PALETTE[op[3]]  # the store, not the hint
    return image


@settings(max_examples=10, deadline=None)
@given(ops=write_program())
def test_recovered_contents_match_final_program_view(ops):
    """Recovery through ciphertext + metadata equals what the program
    last wrote (the volatile view it never gets back)."""
    image = run_write_program("janus", ops, n_lines=N_LINES)
    assert diff_images(_expected_image(ops), image) == []


def test_stale_hint_never_leaks_into_nvm():
    """§4.3.1: a pre-executed result for data the program then does
    NOT write must be invalidated, not consumed."""
    ops = [("stale", 0, 0, 5), ("stale", 1, 3, 1), ("store", 0, 2)]
    check_mode_equivalence(ops, n_lines=N_LINES)
    image = run_write_program("janus", ops, n_lines=N_LINES)
    assert image[0] == PALETTE[2] and image[1] == PALETTE[1]


def test_mismatch_reports_differing_slots():
    reference = [PALETTE[0], PALETTE[1]]
    candidate = [PALETTE[0], PALETTE[2]]
    diff = diff_images(reference, candidate)
    assert diff == [(1, PALETTE[1].hex(), PALETTE[2].hex())]
    with pytest.raises(OracleMismatch):
        if diff:
            raise OracleMismatch("images differ", diff=diff)


def test_partition_preserves_slot_ownership_and_order():
    ops = [("store", 0, 1), ("split", 1, 2), ("store", 0, 3),
           ("swap", 0, 2), ("clear",), ("store", 1, 4)]
    streams = partition_ops(ops, 2)
    assert len(streams) == 2
    # Every slotted op lands on thread slot % 2, in program order.
    assert [op for op in streams[0] if op[0] == "store"] == \
        [("store", 0, 1), ("store", 0, 3)]
    assert [op for op in streams[1] if op[0] in ("split", "store")] \
        == [("split", 1, 2), ("store", 1, 4)]
    # swap pins to thread 0; nothing is lost or duplicated.
    assert ("swap", 0, 2) in streams[0]
    assert sorted(map(repr, streams[0] + streams[1])) == \
        sorted(map(repr, ops))


@pytest.mark.parametrize("workload", ["array_swap", "queue",
                                      "hash_table"])
def test_workload_kernels_equivalent(workload):
    check_workload_equivalence(workload, txns=6, items=12)
