"""Functional equivalence across design points.

The paper's requirement 1 (§3.2) in its strongest form: Janus (and
parallelization) are *latency* optimizations — the recoverable
contents of NVM after any program must be byte-identical to the
serialized baseline's, for arbitrary write sequences.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import default_config
from repro.consistency import recover
from repro.core import NvmSystem

N_LINES = 12


@st.composite
def write_program(draw):
    """A random sequence of persisted line writes (with duplicates)."""
    n_ops = draw(st.integers(1, 15))
    ops = []
    values = [bytes([v]) * 64 for v in range(1, 6)]
    for _ in range(n_ops):
        slot = draw(st.integers(0, N_LINES - 1))
        value = draw(st.sampled_from(values))
        ops.append((slot, value))
    return ops


def run_ops(mode, ops, use_janus_hints):
    system = NvmSystem(default_config(mode=mode, seed=11))
    core = system.cores[0]
    base = system.heap.alloc_line(N_LINES * 64, label="arena")

    def program():
        for slot, value in ops:
            addr = base + slot * 64
            if use_janus_hints:
                obj = core.api.pre_init()
                yield from core.api.pre_both(obj, addr, value)
                yield from core.compute(800)
            yield from core.store(addr, value)
            yield from core.persist(addr, 64)

    system.run_programs([program()])
    snapshot = system.crash()
    state = recover(snapshot, verify_macs=True)
    return [state.read(base + slot * 64, 64)
            for slot in range(N_LINES)]


@settings(max_examples=15, deadline=None)
@given(ops=write_program())
def test_all_modes_recover_identical_contents(ops):
    reference = run_ops("serialized", ops, use_janus_hints=False)
    assert run_ops("parallel", ops, use_janus_hints=False) == reference
    assert run_ops("janus", ops, use_janus_hints=True) == reference
    assert run_ops("ideal", ops, use_janus_hints=False) == reference


@settings(max_examples=10, deadline=None)
@given(ops=write_program())
def test_recovered_contents_match_final_program_view(ops):
    """Recovery through ciphertext + metadata equals what the program
    last wrote (the volatile view it never gets back)."""
    system = NvmSystem(default_config(mode="janus", seed=11))
    core = system.cores[0]
    base = system.heap.alloc_line(N_LINES * 64, label="arena")
    final = {}

    def program():
        for slot, value in ops:
            addr = base + slot * 64
            obj = core.api.pre_init()
            yield from core.api.pre_both(obj, addr, value)
            yield from core.store(addr, value)
            yield from core.persist(addr, 64)
            final[slot] = value

    system.run_programs([program()])
    state = recover(system.crash(), verify_macs=True)
    for slot, value in final.items():
        assert state.read(base + slot * 64, 64) == value
