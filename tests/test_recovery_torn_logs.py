"""Torn and truncated log tails — the parser/recovery contract.

Built from synthetic NVM images (no encryption: counter 0 means raw
bytes), these tests pin down exactly how recovery treats damage in a
log region:

* a record whose payload runs past the region, or whose header or
  payload CRC fails, is a *torn tail*: the scan stops cleanly there,
  earlier records still replay/roll back correctly, and no exception
  or garbage restore escapes;
* a *commit record beyond a damaged line* is different: the commit
  protocol fences all of a transaction's records before its commit
  persists, so this shape can only mean the persist-domain guarantee
  failed — recovery must refuse (``RecoveryError``) rather than
  silently roll back (undo) or drop (redo) a committed transaction;
* a valid *backup/update* record beyond a gap is the normal mid-append
  crash shape and must NOT trigger that refusal.
"""

import pytest

from repro.common.errors import RecoveryError
from repro.common.units import CACHE_LINE_BYTES
from repro.consistency.recovery import RecoveredState
from repro.consistency.redo_log import _RCOMMIT_MAGIC, _REDO_MAGIC
from repro.consistency.undo_log import (
    _BACKUP_MAGIC,
    _COMMIT_MAGIC,
    pack_record,
)

BASE = 0x1000
CAPACITY = 16 * CACHE_LINE_BYTES
TARGET_A = 0x8000
TARGET_B = 0x8040

OLD_A = b"\xAA" * CACHE_LINE_BYTES
OLD_B = b"\xBB" * CACHE_LINE_BYTES
NEW_A = b"\x11" * CACHE_LINE_BYTES
NEW_B = b"\x22" * CACHE_LINE_BYTES
GARBAGE = b"\xDE\xAD" * 32  # non-zero line with an invalid header CRC


def make_state(lines, covered=()):
    """A RecoveredState over raw lines.

    ``covered`` marks line addresses the metadata knows were written
    (counter 0 = plaintext) — the commit-beyond probe only inspects
    covered lines.
    """
    metadata = {"encryption": {
        "counters": {addr: 0 for addr in covered}, "macs": {}}}
    return RecoveredState(dict(lines), metadata, verify_macs=True)


def backup(txn_id, target, payload):
    return pack_record(_BACKUP_MAGIC, txn_id, target, len(payload),
                       payload=payload)


def redo(txn_id, target, payload):
    return pack_record(_REDO_MAGIC, txn_id, target, len(payload),
                       payload=payload)


class TestUndoTornTails:
    def test_truncated_record_at_region_end_stops_cleanly(self):
        # A backup header whose payload would run past the region:
        # the append was cut off by the crash.  Clean stop, committed
        # prefix intact.
        tail = BASE + CAPACITY - CACHE_LINE_BYTES
        lines = {
            BASE: backup(1, TARGET_A, OLD_A),
            BASE + 64: OLD_A,
            BASE + 128: pack_record(_COMMIT_MAGIC, 1, 0, 0),
            tail: backup(2, TARGET_B, OLD_B),  # no room for payload
            TARGET_A: NEW_A,
        }
        state = make_state(lines)
        undone = state.rollback_undo_log(BASE, CAPACITY)
        assert undone == []
        assert state.committed_txns == [1]
        assert state.read(TARGET_A, 64) == NEW_A  # committed, kept

    def test_torn_payload_stops_cleanly_without_garbage_restore(self):
        # txn 2's backup header landed but its payload did not: the
        # payload CRC fails, the scan stops, and TARGET_B is never
        # "restored" from the half-written payload line.
        lines = {
            BASE: backup(1, TARGET_A, OLD_A),
            BASE + 64: OLD_A,
            BASE + 128: pack_record(_COMMIT_MAGIC, 1, 0, 0),
            BASE + 192: backup(2, TARGET_B, OLD_B),
            BASE + 256: GARBAGE,  # payload never fully landed
            TARGET_A: NEW_A,
            TARGET_B: OLD_B,
        }
        state = make_state(lines)
        undone = state.rollback_undo_log(BASE, CAPACITY)
        assert undone == []
        assert state.committed_txns == [1]
        assert state.read(TARGET_B, 64) == OLD_B  # untouched

    def test_torn_header_stops_cleanly(self):
        lines = {
            BASE: backup(1, TARGET_A, OLD_A),
            BASE + 64: OLD_A,
            BASE + 128: GARBAGE,  # torn header line: tail ends here
            TARGET_A: NEW_A,
        }
        state = make_state(lines)
        # txn 1 has no commit record: rolled back from its backup.
        undone = state.rollback_undo_log(BASE, CAPACITY)
        assert undone == [1]
        assert state.read(TARGET_A, 64) == OLD_A

    def test_torn_payload_of_committed_txn_continues_to_commit(self):
        # Torn-prefix continuation: the header is intact, so the scan
        # skips the damaged payload and finds txn 2's commit record —
        # the old value is provably never needed (the commit fenced on
        # the in-place updates).  This shape used to hard-fail via the
        # commit-beyond probe; now it recovers, poisoning the payload.
        lines = {
            BASE: backup(2, TARGET_A, OLD_A),
            BASE + 64: GARBAGE,  # payload ADR-torn at power failure
            BASE + 128: pack_record(_COMMIT_MAGIC, 2, 0, 0),
            TARGET_A: NEW_A,
        }
        state = make_state(lines)
        undone = state.rollback_undo_log(BASE, CAPACITY)
        assert undone == []
        assert state.committed_txns == [2]
        assert state.read(TARGET_A, 64) == NEW_A  # committed, kept
        assert state.torn_records_skipped == 1
        assert BASE + 64 in state.torn_log_lines
        assert BASE + 64 in state._quarantine  # escalated to poison

    def test_torn_payload_does_not_hide_later_backups(self):
        # Records beyond a torn payload still roll back: the intact
        # header fixes the boundary, so txn 1's second backup is seen
        # and restored even though its first payload is damaged.
        lines = {
            BASE: backup(1, TARGET_A, OLD_A),
            BASE + 64: GARBAGE,  # torn payload: TARGET_A unrestorable
            BASE + 128: backup(1, TARGET_B, OLD_B),
            BASE + 192: OLD_B,
            TARGET_A: NEW_A,
            TARGET_B: NEW_B,
        }
        state = make_state(lines)
        undone = state.rollback_undo_log(BASE, CAPACITY)
        assert undone == [1]
        assert state.read(TARGET_B, 64) == OLD_B  # restored
        # The torn record is never applied — no garbage restore.
        assert state.read(TARGET_A, 64) == NEW_A
        assert state.torn_records_skipped == 1

    def test_commit_beyond_damage_refuses_rollback(self):
        # txn 1's commit record is durable past a damaged line.  The
        # commit fenced on every earlier record, so the damage means
        # ADR failed — refusing beats silently rolling back txn 1.
        commit_addr = BASE + 192
        lines = {
            BASE: backup(1, TARGET_A, OLD_A),
            BASE + 64: OLD_A,
            BASE + 128: GARBAGE,  # a log record ADR dropped/tore
            commit_addr: pack_record(_COMMIT_MAGIC, 1, 0, 0),
            TARGET_A: NEW_A,
        }
        state = make_state(lines, covered=(commit_addr,))
        with pytest.raises(RecoveryError, match="damaged log line"):
            state.rollback_undo_log(BASE, CAPACITY)

    def test_backup_beyond_damage_is_a_normal_torn_tail(self):
        # Same gap, but the record beyond it is a *backup* — exactly
        # what an interrupted multi-record append leaves behind (the
        # writeback of an earlier line can retire after a later one).
        # No refusal; the tail is discarded and txn 1 rolls back.
        later = BASE + 192
        lines = {
            BASE: backup(1, TARGET_A, OLD_A),
            BASE + 64: OLD_A,
            BASE + 128: GARBAGE,
            later: backup(1, TARGET_B, OLD_B),
            later + 64: OLD_B,
            TARGET_A: NEW_A,
            TARGET_B: NEW_B,
        }
        state = make_state(lines, covered=(later, later + 64))
        undone = state.rollback_undo_log(BASE, CAPACITY)
        assert undone == [1]
        assert state.read(TARGET_A, 64) == OLD_A
        # The discarded tail record must NOT have been applied.
        assert state.read(TARGET_B, 64) == NEW_B


class TestRedoTornTails:
    def test_truncated_tail_drops_uncommitted_update(self):
        tail = BASE + CAPACITY - CACHE_LINE_BYTES
        lines = {
            BASE: redo(1, TARGET_A, NEW_A),
            BASE + 64: NEW_A,
            BASE + 128: pack_record(_RCOMMIT_MAGIC, 1, 0, 0),
            tail: redo(2, TARGET_B, NEW_B),  # payload past the end
            TARGET_A: OLD_A,
            TARGET_B: OLD_B,
        }
        state = make_state(lines)
        replayed = state.replay_redo_log(BASE, CAPACITY)
        assert replayed == [1]
        assert state.read(TARGET_A, 64) == NEW_A  # replayed
        assert state.read(TARGET_B, 64) == OLD_B  # never committed

    def test_torn_payload_stops_cleanly(self):
        lines = {
            BASE: redo(1, TARGET_A, NEW_A),
            BASE + 64: NEW_A,
            BASE + 128: pack_record(_RCOMMIT_MAGIC, 1, 0, 0),
            BASE + 192: redo(2, TARGET_B, NEW_B),
            BASE + 256: GARBAGE,  # payload torn
            TARGET_A: OLD_A,
            TARGET_B: OLD_B,
        }
        state = make_state(lines)
        assert state.replay_redo_log(BASE, CAPACITY) == [1]
        assert state.read(TARGET_B, 64) == OLD_B

    def test_commit_beyond_damage_refuses_replay(self):
        # A durable redo commit past a damaged update record: without
        # the refusal, txn 1's updates would be silently dropped even
        # though it committed.
        commit_addr = BASE + 192
        lines = {
            BASE: redo(1, TARGET_A, NEW_A),
            BASE + 64: NEW_A,
            BASE + 128: GARBAGE,  # damaged update record
            commit_addr: pack_record(_RCOMMIT_MAGIC, 1, 0, 0),
            TARGET_A: OLD_A,
        }
        state = make_state(lines, covered=(commit_addr,))
        with pytest.raises(RecoveryError, match="damaged log line"):
            state.replay_redo_log(BASE, CAPACITY)

    def test_update_beyond_damage_is_a_normal_torn_tail(self):
        later = BASE + 192
        lines = {
            BASE: redo(1, TARGET_A, NEW_A),
            BASE + 64: NEW_A,
            BASE + 128: GARBAGE,
            later: redo(1, TARGET_B, NEW_B),
            later + 64: NEW_B,
            TARGET_A: OLD_A,
            TARGET_B: OLD_B,
        }
        state = make_state(lines, covered=(later, later + 64))
        assert state.replay_redo_log(BASE, CAPACITY) == []
        assert state.read(TARGET_A, 64) == OLD_A  # nothing committed
        assert state.read(TARGET_B, 64) == OLD_B


class TestScanReaderDamage:
    def test_damaged_log_line_recorded_as_torn(self):
        # A line that fails verification *while scanning* is recorded
        # in ``torn_log_lines`` rather than raising mid-scan.
        lines = {
            BASE: backup(1, TARGET_A, OLD_A),
            BASE + 64: OLD_A,
            TARGET_A: NEW_A,
        }
        state = make_state(lines)
        # Force an integrity failure on the line after the payload by
        # giving it a MAC-covered pad with no MAC at its counter.
        state._counters[BASE + 128] = 3
        state._pads_with_macs.add(BASE + 128)
        undone = state.rollback_undo_log(BASE, CAPACITY)
        assert undone == [1]
        assert BASE + 128 in state.torn_log_lines


def epoch_state(lines, flushed=(), covered=()):
    """A RecoveredState whose snapshot carries an async-epoch
    watermark: committed transactions outside ``flushed`` are demoted
    to uncommitted at scan time (docs/scheduling-modes.md)."""
    metadata = {
        "encryption": {
            "counters": {addr: 0 for addr in covered}, "macs": {}},
        "scheduling": {"mode": "async-epoch",
                       "flushed_txns": list(flushed)},
    }
    return RecoveredState(dict(lines), metadata, verify_macs=True)


class TestTornEpochRecovery:
    """async-epoch watermark demotion over synthetic images.

    A commit record is only *provisionally* durable until its epoch
    has flushed; recovery must land on the last closed-and-flushed
    epoch boundary, never between epochs.
    """

    def test_unflushed_committed_txn_is_demoted_and_rolled_back(self):
        # txn 1 flushed (inside the watermark), txn 2's epoch was torn
        # mid-flush: its commit record is durable but the watermark
        # excludes it, so it must roll back to the epoch boundary.
        lines = {
            BASE: backup(1, TARGET_A, OLD_A),
            BASE + 64: OLD_A,
            BASE + 128: pack_record(_COMMIT_MAGIC, 1, 0, 0),
            BASE + 192: backup(2, TARGET_B, OLD_B),
            BASE + 256: OLD_B,
            BASE + 320: pack_record(_COMMIT_MAGIC, 2, 0, 0),
            TARGET_A: NEW_A,
            TARGET_B: NEW_B,
        }
        state = epoch_state(lines, flushed=(1,))
        undone = state.rollback_undo_log(BASE, CAPACITY)
        assert undone == [2]
        assert state.demoted_txns == [2]
        assert state.committed_txns == [1]
        assert state.read(TARGET_A, 64) == NEW_A  # survives: flushed
        assert state.read(TARGET_B, 64) == OLD_B  # demoted: restored

    def test_fully_flushed_epochs_demote_nothing(self):
        lines = {
            BASE: backup(1, TARGET_A, OLD_A),
            BASE + 64: OLD_A,
            BASE + 128: pack_record(_COMMIT_MAGIC, 1, 0, 0),
            TARGET_A: NEW_A,
        }
        state = epoch_state(lines, flushed=(1,))
        assert state.rollback_undo_log(BASE, CAPACITY) == []
        assert state.demoted_txns == []
        assert state.committed_txns == [1]
        assert state.read(TARGET_A, 64) == NEW_A

    def test_torn_backup_of_demoted_txn_refuses(self):
        # The torn-backup shortcut ("committed means the old values
        # are never needed") must not apply once the commit itself is
        # demoted: the demoted txn *needs* that backup to reach the
        # epoch boundary.  Header CRC is intact but the payload line
        # does not match its recorded CRC.
        lines = {
            BASE: backup(2, TARGET_B, OLD_B),
            BASE + 64: GARBAGE.ljust(CACHE_LINE_BYTES, b"\x00"),
            BASE + 128: pack_record(_COMMIT_MAGIC, 2, 0, 0),
            TARGET_B: NEW_B,
        }
        state = epoch_state(lines, flushed=())
        with pytest.raises(RecoveryError,
                           match="demoted by the epoch watermark"):
            state.rollback_undo_log(BASE, CAPACITY)

    def test_commit_beyond_damage_demoted_txn_rolls_back(self):
        # Without a watermark this shape hard-fails (the commit fenced
        # on every earlier record, so the gap means ADR failed).  With
        # the commit's transaction *outside* the watermark, the epoch
        # was torn mid-flush and the damage is an ordinary torn tail:
        # the transaction is demoted regardless, so roll it back.
        commit_addr = BASE + 192
        lines = {
            BASE: backup(1, TARGET_A, OLD_A),
            BASE + 64: OLD_A,
            BASE + 128: GARBAGE,
            commit_addr: pack_record(_COMMIT_MAGIC, 1, 0, 0),
            TARGET_A: NEW_A,
        }
        state = epoch_state(lines, flushed=(), covered=(commit_addr,))
        undone = state.rollback_undo_log(BASE, CAPACITY)
        assert undone == [1]
        assert state.read(TARGET_A, 64) == OLD_A

    def test_commit_beyond_damage_inside_watermark_still_refuses(self):
        # The watermark says this epoch fully flushed, so the
        # persist-domain guarantee really did fail — same refusal as
        # the unscheduled case.
        commit_addr = BASE + 192
        lines = {
            BASE: backup(1, TARGET_A, OLD_A),
            BASE + 64: OLD_A,
            BASE + 128: GARBAGE,
            commit_addr: pack_record(_COMMIT_MAGIC, 1, 0, 0),
            TARGET_A: NEW_A,
        }
        state = epoch_state(lines, flushed=(1,),
                            covered=(commit_addr,))
        with pytest.raises(RecoveryError, match="damaged log line"):
            state.rollback_undo_log(BASE, CAPACITY)


class _StubPolicy:
    """Just enough of AsyncEpochPolicy for the merge algebra."""

    def __init__(self, flushed, known_extra=(), meta=None):
        self._flushed_txns = set(flushed)
        self._known_extra = set(known_extra)
        self._meta = meta if meta is not None else {
            "mode": "async-epoch", "epoch_writes": 32,
            "staleness_epochs": 2, "epochs_closed": 1,
            "epochs_flushed": 1,
            "flushed_txns": list(flushed)}

    def known_txns(self):
        return set(self._flushed_txns) | self._known_extra

    def crash_metadata(self):
        return self._meta


class _StubCoordinator:
    def __init__(self, unsafe=()):
        self._unsafe = set(unsafe)

    def unsafe_txns(self):
        return set(self._unsafe)


class TestShardedConsistentCut:
    """The cross-shard watermark merge (docs/sharding.md): recovery
    lands on the minimum consistent cut — the longest prefix of
    transactions watermarked on every shard that saw them and holding
    no unpersisted write anywhere."""

    def merge(self, policies, coordinator=None):
        from repro.bmo.policy import merge_crash_metadata
        return merge_crash_metadata(policies, coordinator)

    def test_single_policy_passes_metadata_through_verbatim(self):
        meta = {"mode": "async-epoch", "flushed_txns": [1, 2]}
        assert self.merge([_StubPolicy((1, 2), meta=meta)]) is meta

    def test_all_none_merges_to_none(self):
        class Strict:
            def crash_metadata(self):
                return None
        assert self.merge([Strict(), Strict()]) is None

    def test_one_shard_behind_truncates_the_cut(self):
        # Shard 0 flushed 1-3; shard 1's flusher is an epoch behind
        # and only flushed 1-2 while it *knows* of 3 (open epoch).
        # The cut stops before 3 even though shard 0 watermarked it.
        merged = self.merge([
            _StubPolicy((1, 2, 3)),
            _StubPolicy((1, 2), known_extra=(3,)),
        ], _StubCoordinator())
        assert merged["flushed_txns"] == [1, 2, 3]
        # ...unless 3 still has an unpersisted write somewhere:
        merged = self.merge([
            _StubPolicy((1, 2, 3)),
            _StubPolicy((1, 2), known_extra=(3,)),
        ], _StubCoordinator(unsafe=(3,)))
        assert merged["flushed_txns"] == [1, 2]

    def test_demotion_is_prefix_closed(self):
        # 2 is unsafe, so 3 and 4 demote with it: a later transaction
        # may depend on a demoted one's state.
        merged = self.merge([
            _StubPolicy((1, 3)),
            _StubPolicy((1, 2, 4), known_extra=()),
        ], _StubCoordinator(unsafe=(2,)))
        assert merged["flushed_txns"] == [1]

    def test_unflushed_known_txn_breaks_the_walk(self):
        # 2 closed into an epoch on shard 1 that never flushed: it is
        # known there but flushed nowhere -> cut is [1].
        merged = self.merge([
            _StubPolicy((1,)),
            _StubPolicy((), known_extra=(2,)),
        ], _StubCoordinator())
        assert merged["flushed_txns"] == [1]

    def test_legacy_keys_total_and_per_shard_detail(self):
        merged = self.merge([_StubPolicy((1,)), _StubPolicy((1,))],
                            _StubCoordinator())
        assert merged["mode"] == "async-epoch"
        assert merged["epochs_closed"] == 2
        assert merged["epochs_flushed"] == 2
        assert merged["shards"] == 2
        assert len(merged["per_shard"]) == 2


class TestShardedEpochCrash:
    """End-to-end: a sharded async-epoch crash recovers onto the
    merged watermark's cross-shard consistent cut."""

    def _crash_with_imbalanced_flushers(self, shards=2):
        from repro.common.config import SchedulingConfig, default_config
        from repro.core import NvmSystem
        from repro.workloads import WorkloadParams, make_workload

        # Small epochs so several close (and flush) mid-run — the
        # default 32-write epoch never fills at this scale.
        system = NvmSystem(default_config(
            mode="async-epoch", shards=shards,
            scheduling=SchedulingConfig(epoch_writes=4)))
        params = WorkloadParams(n_items=8, n_transactions=12)
        workload = make_workload("hash_table", system,
                                 system.cores[0], params,
                                 variant="baseline")
        # Make the imbalance deterministic: the last shard's device is
        # slow, so its epoch flusher provably falls behind the others.
        slow = system.devices[-1]
        original = slow.write_access

        def dawdling(addr):
            yield system.sim.delay(600)
            yield from original(addr)

        slow.write_access = dawdling
        system.sim.process(workload.run(), name="stream")
        # Step the clock until the per-shard watermarks diverge — the
        # exact "one shard's flusher is behind" moment.
        policies = [c.policy for c in system.controllers]
        horizon = 2_000_000
        step = 200
        now = 0
        while now < horizon:
            now += step
            system.sim.run(until=now)
            flushed = [set(p._flushed_txns) for p in policies]
            if any(f != flushed[0] for f in flushed[1:]) \
                    and any(flushed):
                break
        else:
            pytest.skip("flushers never diverged at this scale")
        return system, workload

    def test_recovery_lands_on_cross_shard_cut(self):
        from repro.consistency import recover

        system, workload = self._crash_with_imbalanced_flushers()
        snapshot = system.crash()
        scheduling = snapshot["metadata"]["scheduling"]
        assert scheduling["shards"] == 2
        per_shard = scheduling["per_shard"]
        assert len(per_shard) == 2
        cut = scheduling["flushed_txns"]
        # The cut is a gapless prefix...
        assert cut == list(range(1, len(cut) + 1))
        # ...and never reaches past any shard's own watermark for a
        # transaction that shard knows about.
        state = recover(snapshot,
                        [(workload.log.base, workload.log.capacity)],
                        verify_macs=True)
        committed = state.committed_txns
        assert committed == list(range(1, len(committed) + 1))
        assert set(committed) <= set(cut)
