"""Property tests for the shard address map (repro.mem.shard).

The router claims three things (docs/sharding.md):

* the global -> (shard, local) map is a bijection — local addresses
  round-trip to the identity and never collide;
* every shard's local space is dense (an unsharded device of 1/N
  capacity can hash it into its channel group);
* line coverage balances across shards: exactly for whole-stripe
  spans, within one stripe for arbitrary prefixes — and with the
  cache-line granularity, within one *line*.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import default_config
from repro.common.units import CACHE_LINE_BYTES
from repro.mem.shard import ShardRouter

#: Power-of-two shard counts and interleave granularities the config
#: validator admits.
shard_counts = st.sampled_from([1, 2, 4, 8, 16])
granularities = st.sampled_from(
    [CACHE_LINE_BYTES * (1 << k) for k in range(5)])


@st.composite
def routers(draw):
    return ShardRouter(shards=draw(shard_counts),
                       interleave_bytes=draw(granularities))


class TestRoundTrip:
    @given(routers(), st.integers(min_value=0, max_value=1 << 40))
    def test_local_then_global_is_identity(self, router, addr):
        shard, local = router.to_local(addr)
        assert 0 <= shard < router.shards
        assert router.to_global(shard, local) == addr

    @given(routers(), st.integers(min_value=0, max_value=1 << 34))
    def test_global_then_local_is_identity(self, router, local):
        for shard in range(router.shards):
            addr = router.to_global(shard, local)
            assert router.to_local(addr) == (shard, local)

    @given(routers(), st.integers(min_value=0, max_value=1 << 40))
    def test_shard_of_agrees_with_to_local(self, router, addr):
        assert router.shard_of(addr) == router.to_local(addr)[0]

    @given(st.integers(min_value=0, max_value=1 << 40))
    def test_single_shard_is_identity(self, addr):
        router = ShardRouter(shards=1)
        assert router.shard_of(addr) == 0
        assert router.to_local(addr) == (0, addr)


class TestBijection:
    @settings(max_examples=40)
    @given(routers(), st.integers(min_value=1, max_value=64))
    def test_no_two_lines_collide(self, router, stripes):
        """Injective over a span: distinct global lines map to
        distinct (shard, local) pairs."""
        span = stripes * router.interleave_bytes * router.shards
        seen = set()
        for addr in range(0, span, CACHE_LINE_BYTES):
            key = router.to_local(addr)
            assert key not in seen
            seen.add(key)
        assert len(seen) == span // CACHE_LINE_BYTES

    @settings(max_examples=40)
    @given(routers(), st.integers(min_value=1, max_value=64))
    def test_local_space_is_dense(self, router, stripes):
        """Whole-stripe spans pack each shard's local lines into a
        contiguous prefix — no holes for the channel hash to alias."""
        span = stripes * router.interleave_bytes * router.shards
        per_shard = {}
        for addr in range(0, span, CACHE_LINE_BYTES):
            shard, local = router.to_local(addr)
            per_shard.setdefault(shard, set()).add(local)
        expected = {local for local in range(
            0, span // router.shards, CACHE_LINE_BYTES)}
        for shard in range(router.shards):
            assert per_shard[shard] == expected


class TestBalance:
    @settings(max_examples=40)
    @given(routers(), st.integers(min_value=1, max_value=64))
    def test_whole_stripe_span_balances_exactly(self, router, stripes):
        span = stripes * router.interleave_bytes * router.shards
        counts = [0] * router.shards
        for addr in range(0, span, CACHE_LINE_BYTES):
            counts[router.shard_of(addr)] += 1
        assert len(set(counts)) == 1

    @settings(max_examples=40)
    @given(routers(), st.integers(min_value=1, max_value=512))
    def test_arbitrary_prefix_balances_within_one_stripe(
            self, router, lines):
        counts = [0] * router.shards
        for addr in range(0, lines * CACHE_LINE_BYTES,
                          CACHE_LINE_BYTES):
            counts[router.shard_of(addr)] += 1
        stripe_lines = router.interleave_bytes // CACHE_LINE_BYTES
        assert max(counts) - min(counts) <= stripe_lines

    @settings(max_examples=40)
    @given(shard_counts, st.integers(min_value=1, max_value=512))
    def test_line_granularity_balances_within_one_line(
            self, shards, lines):
        """The default (cache-line) interleave: any line-aligned
        prefix leaves shard coverage within one line of even."""
        router = ShardRouter(shards=shards)
        counts = [0] * shards
        for addr in range(0, lines * CACHE_LINE_BYTES,
                          CACHE_LINE_BYTES):
            counts[router.shard_of(addr)] += 1
        assert max(counts) - min(counts) <= 1

    @given(shard_counts, granularities)
    def test_lines_per_shard_matches_enumeration(self, shards, gran):
        router = ShardRouter(shards=shards, interleave_bytes=gran)
        capacity = gran * shards * 8
        expected = list(router.lines_per_shard(capacity))
        counts = [0] * shards
        for addr in range(0, capacity, CACHE_LINE_BYTES):
            counts[router.shard_of(addr)] += 1
        assert counts == expected
        assert len(set(expected)) == 1


def test_from_config_uses_validated_fields():
    cfg = default_config(shards=4,
                        shard_interleave_bytes=2 * CACHE_LINE_BYTES)
    router = ShardRouter.from_config(cfg)
    assert router.shards == 4
    assert router.interleave_bytes == 2 * CACHE_LINE_BYTES
