"""End-to-end integration across the widest configurations."""

import pytest

from repro.common.config import default_config
from repro.consistency import UndoLog, recover
from repro.core import NvmSystem
from repro.workloads import WorkloadParams, make_workload

ALL_BMOS = ("compression", "wear_leveling", "dedup", "encryption",
            "integrity", "ecc")


def make_system(**overrides):
    return NvmSystem(default_config(**overrides))


class TestAllBmosTogether:
    @pytest.mark.parametrize("mode", ["serialized", "parallel",
                                      "janus"])
    def test_workload_runs_with_six_bmos(self, mode):
        system = make_system(mode=mode, bmos=ALL_BMOS)
        workload = make_workload(
            "array_swap", system, system.cores[0],
            WorkloadParams(n_items=8, value_size=64,
                           n_transactions=4),
            variant="manual" if mode == "janus" else "baseline")
        system.run_programs([workload.run()])
        assert workload.completed_transactions == 4
        # Every mechanism did real work.
        assert system.pipeline.by_name["compression"].bytes_in > 0
        assert system.pipeline.by_name["ecc"].codes
        assert system.pipeline.by_name["dedup"].table.remap

    def test_six_bmo_janus_still_faster_than_serialized(self):
        times = {}
        for mode, variant in (("serialized", "baseline"),
                              ("janus", "manual")):
            system = make_system(mode=mode, bmos=ALL_BMOS)
            workload = make_workload(
                "tatp", system, system.cores[0],
                WorkloadParams(n_items=8, value_size=64,
                               n_transactions=8),
                variant=variant)
            times[mode] = system.run_programs([workload.run()])
        assert times["janus"] < times["serialized"]

    def test_crash_recovery_with_six_bmos(self):
        system = make_system(mode="serialized", bmos=ALL_BMOS)
        core = system.cores[0]
        log = UndoLog(core, capacity_bytes=1 << 16)
        addr = system.heap.alloc_line(64, label="x")
        done = system.sim.event("done")

        def prog():
            yield from core.store(addr, b"\x21" * 64)
            yield from core.persist(addr, 64)
            txn = log.begin()
            yield from txn.backup(addr, 64)
            yield from txn.write(addr, b"\x22" * 64)
            yield from txn.commit()
            done.succeed()

        system.sim.process(prog())
        system.sim.run(stop_event=done)
        snapshot = system.crash()
        state = recover(snapshot, [(log.base, log.capacity)])
        assert state.read(addr, 64) == b"\x22" * 64


class TestOramPipeline:
    def test_workload_on_oram_pipeline(self):
        system = make_system(
            mode="janus",
            bmos=("dedup", "encryption", "integrity", "oram"))
        workload = make_workload(
            "queue", system, system.cores[0],
            WorkloadParams(n_items=8, value_size=64,
                           n_transactions=4),
            variant="manual")
        system.run_programs([workload.run()])
        assert workload.completed_transactions == 4
        oram = system.pipeline.by_name["oram"].oram
        assert oram.accesses > 0

    def test_oram_raises_serial_tax_and_janus_recovers(self):
        from repro.bmo import build_pipeline
        base_cfg = default_config()
        oram_cfg = default_config(
            bmos=("dedup", "encryption", "integrity", "oram"))
        assert build_pipeline(oram_cfg).serial_latency() > \
            build_pipeline(base_cfg).serial_latency() + 900
        times = {}
        for mode, variant in (("serialized", "baseline"),
                              ("janus", "manual")):
            system = NvmSystem(oram_cfg.replace(mode=mode))
            workload = make_workload(
                "array_swap", system, system.cores[0],
                WorkloadParams(n_items=8, value_size=64,
                               n_transactions=6),
                variant=variant)
            times[mode] = system.run_programs([workload.run()])
        assert times["serialized"] / times["janus"] > 1.5


class TestCachedMerkleLevels:
    def test_merkle_cache_reduces_integrity_latency(self):
        import dataclasses
        from repro.bmo import build_pipeline
        base = default_config()
        cached_cfg = base.replace(integrity=dataclasses.replace(
            base.integrity, cached_levels=4))
        full = build_pipeline(base).serial_latency()
        cached = build_pipeline(cached_cfg).serial_latency()
        assert cached == pytest.approx(
            full - 4 * base.bmo_latencies.sha1_ns)

    def test_cached_levels_speed_up_serialized_runs(self):
        import dataclasses
        times = {}
        for levels in (0, 6):
            cfg = default_config(mode="serialized")
            cfg = cfg.replace(integrity=dataclasses.replace(
                cfg.integrity, cached_levels=levels))
            system = NvmSystem(cfg)
            workload = make_workload(
                "array_swap", system, system.cores[0],
                WorkloadParams(n_items=8, value_size=64,
                               n_transactions=6))
            times[levels] = system.run_programs([workload.run()])
        assert times[6] < times[0]
