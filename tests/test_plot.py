"""Tests for the ASCII bar-chart renderer."""

from repro.harness.plot import bar_chart, fig9_chart, fig11_chart


def test_bars_scale_with_values():
    text = bar_chart("t", {"g": {"small": 1.0, "big": 2.0}})
    small_line = next(l for l in text.splitlines() if "small" in l)
    big_line = next(l for l in text.splitlines() if "big" in l)
    assert big_line.count("#") > small_line.count("#")


def test_baseline_marker_present():
    text = bar_chart("t", {"g": {"a": 0.5, "b": 2.0}}, baseline=1.0)
    assert "|" in text


def test_values_printed_with_unit():
    text = bar_chart("t", {"g": {"a": 1.234}}, unit="x")
    assert "1.23x" in text


def test_empty_data_safe():
    assert "(no data)" in bar_chart("t", {})


def test_fig9_chart_shape():
    data = {"array_swap": {1: (1.1, 2.0), 2: (1.1, 1.9)}}
    text = fig9_chart(data)
    assert "1-core janus" in text and "2-core parallel" in text


def test_fig11_chart_includes_all_series():
    data = {"rbtree": {"manual": 1.8, "auto": 1.4, "profile": 1.9}}
    text = fig11_chart(data)
    for label in ("manual", "auto", "profile"):
        assert label in text


def test_charts_on_live_driver_output():
    from repro.harness.experiments import fig11_compiler
    result = fig11_compiler(scale=0.15, workloads=["array_swap"])
    text = fig11_chart(result.data)
    assert "array_swap" in text and "#" in text
