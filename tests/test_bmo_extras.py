"""Tests for the compression, wear-leveling, and ECC BMOs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bmo.compression import CompressionBmo
from repro.bmo.ecc import EccBmo, check, encode
from repro.bmo.wear_leveling import StartGap, WearLevelingBmo
from repro.common.config import BmoLatencies
from repro.common.errors import UncorrectableMediaError

LINE = st.binary(min_size=64, max_size=64)


class TestCompression:
    def make(self):
        return CompressionBmo(BmoLatencies())

    def run_line(self, bmo, addr, data):
        from repro.bmo.base import BmoContext
        ctx = BmoContext(addr=addr, data=data)
        bmo._c1(ctx)
        bmo._c2(ctx)
        ctx.completed |= {"C1", "C2"}
        bmo.commit(ctx)
        return ctx

    def test_repetitive_data_compresses(self):
        bmo = self.make()
        ctx = self.run_line(bmo, 0, b"\x00" * 64)
        assert ctx.values["compressed_size"] < 64
        assert bmo.size_map[0] == ctx.values["compressed_size"]

    def test_random_data_never_expands(self):
        import os
        bmo = self.make()
        ctx = self.run_line(bmo, 0, bytes(os.urandom(64)))
        assert ctx.values["compressed_size"] <= 64

    @given(data=LINE)
    @settings(max_examples=30)
    def test_compressed_data_decompresses(self, data):
        import zlib
        bmo = self.make()
        ctx = self.run_line(bmo, 0, data)
        blob = ctx.values["compressed_data"]
        if ctx.values["compressed_size"] < 64:
            assert zlib.decompress(blob) == data
        else:
            assert blob == data

    def test_aggregate_ratio(self):
        bmo = self.make()
        assert bmo.compression_ratio() == 1.0
        self.run_line(bmo, 0, b"\x00" * 64)
        assert bmo.compression_ratio() < 1.0


class TestStartGap:
    def test_initial_mapping_is_identity(self):
        sg = StartGap(lines=8)
        assert [sg.physical_slot(i) for i in range(8)] == list(range(8))

    def test_mapping_stays_bijective_under_writes(self):
        sg = StartGap(lines=8, gap_write_interval=3)
        for _ in range(100):
            sg.record_write()
            assert sg.mapping_is_bijective()

    def test_gap_moves_at_interval(self):
        sg = StartGap(lines=8, gap_write_interval=5)
        for _ in range(4):
            sg.record_write()
        assert sg.moves == 0
        sg.record_write()
        assert sg.moves == 1

    def test_full_rotation_visits_every_slot(self):
        sg = StartGap(lines=4, gap_write_interval=1)
        seen = {sg.physical_slot(0)}
        for _ in range(5 * 5):
            sg.record_write()
            seen.add(sg.physical_slot(0))
        # Logical line 0 has occupied every physical slot (wear
        # spreading, the whole point of Start-Gap).
        assert len(seen) == 5

    @given(writes=st.integers(0, 300))
    @settings(max_examples=20)
    def test_bijectivity_property(self, writes):
        sg = StartGap(lines=6, gap_write_interval=2)
        for _ in range(writes):
            sg.record_write()
        phys = [sg.physical_slot(i) for i in range(6)]
        assert len(set(phys)) == 6

    def test_bmo_detects_stale_slot(self):
        from repro.bmo.base import BmoContext
        bmo = WearLevelingBmo(BmoLatencies(), region_lines=8,
                              gap_write_interval=1)
        ctx = BmoContext(addr=0, data=bytes(64))
        bmo._w1(ctx)
        ctx.completed.add("W1")
        assert bmo.stale_subops(ctx) == set()
        # Enough writes to move the gap over line 0's slot.
        for _ in range(12):
            bmo.start_gap.record_write()
        if bmo.start_gap.physical_slot(0) != ctx.values["wl_slot"]:
            assert bmo.stale_subops(ctx) == {"W1"}


class TestEcc:
    @given(data=LINE)
    @settings(max_examples=30)
    def test_clean_line_verifies(self, data):
        code = encode(data)
        assert check(data, code) == data

    @given(data=LINE, bit=st.integers(0, 511))
    @settings(max_examples=50)
    def test_single_bit_flip_corrected(self, data, bit):
        code = encode(data)
        corrupted = bytearray(data)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        fixed = check(bytes(corrupted), code)
        assert fixed == data

    def test_double_flip_same_word_detected_as_uncorrectable(self):
        data = bytes(64)
        code = encode(data)
        corrupted = bytearray(data)
        corrupted[0] ^= 0b11  # two flips in word 0
        with pytest.raises(UncorrectableMediaError):
            check(bytes(corrupted), code)

    @given(data=LINE, word=st.integers(0, 7),
           bits=st.sets(st.integers(0, 63), min_size=2, max_size=2))
    @settings(max_examples=40)
    def test_multi_bit_same_word_never_miscorrects(self, data, word,
                                                   bits):
        """Regression for the detected-uncorrectable contract: an even
        number of flips in one word must raise, never return a
        silently miscorrected line."""
        code = encode(data)
        corrupted = bytearray(data)
        for bit in bits:
            corrupted[word * 8 + bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(UncorrectableMediaError):
            check(bytes(corrupted), code)

    def test_verify_line_raises_on_uncorrectable(self):
        bmo = EccBmo(BmoLatencies())
        from repro.bmo.base import BmoContext
        ctx = BmoContext(addr=128, data=b"\x5A" * 64)
        bmo._x1(ctx)
        ctx.completed.add("X1")
        bmo.commit(ctx)
        damaged = bytearray(b"\x5A" * 64)
        damaged[0] ^= 0b101  # two flips, word 0
        with pytest.raises(UncorrectableMediaError) as excinfo:
            bmo.verify_line(128, bytes(damaged))
        assert excinfo.value.line_addr == 128

    def test_bmo_covers_ciphertext_when_encryption_present(self):
        from repro.bmo.base import BmoContext
        bmo = EccBmo(BmoLatencies(), with_encryption=True)
        ctx = BmoContext(addr=0, data=bytes(64))
        ctx.values["ciphertext"] = b"\xAB" * 64
        bmo._x1(ctx)
        assert ctx.values["ecc_code"] == encode(b"\xAB" * 64)
        ctx.completed.add("X1")
        bmo.commit(ctx)
        assert bmo.verify_line(0, b"\xAB" * 64) == b"\xAB" * 64

    def test_bmo_skips_cancelled_duplicate_writes(self):
        from repro.bmo.base import BmoContext
        bmo = EccBmo(BmoLatencies(), with_encryption=True)
        ctx = BmoContext(addr=0, data=bytes(64))
        ctx.values["ciphertext"] = None  # dedup cancelled the write
        bmo._x1(ctx)
        assert ctx.values["ecc_code"] is None

    def test_scrub_detects_corruption(self):
        from repro.bmo.base import BmoContext
        bmo = EccBmo(BmoLatencies())
        ctx = BmoContext(addr=64, data=b"\x37" * 64)
        bmo._x1(ctx)
        ctx.completed.add("X1")
        bmo.commit(ctx)
        tampered = bytearray(b"\x37" * 64)
        tampered[5] ^= 0x10
        assert bmo.verify_line(64, bytes(tampered)) == b"\x37" * 64
