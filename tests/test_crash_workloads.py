"""Crash injection during workload streams + recovery invariants.

These are the strongest end-to-end tests in the repo: run a stream of
transactions, pull the plug at an arbitrary simulated time, flush the
ADR domain, recover the plaintext through the BMO metadata, roll back
uncommitted transactions from the undo log, and check the *data
structure's* invariants on the recovered image.
"""

import struct

import pytest

from repro.common.config import default_config
from repro.consistency import recover
from repro.core import NvmSystem
from repro.workloads import WorkloadParams, make_workload


def run_then_crash(workload_name, crash_at, mode="janus",
                   variant="manual", n_txns=10, seed=42):
    cfg = default_config(mode=mode, seed=seed)
    system = NvmSystem(cfg)
    params = WorkloadParams(n_items=8, value_size=64,
                            n_transactions=n_txns)
    workload = make_workload(workload_name, system, system.cores[0],
                             params, variant=variant)
    system.sim.process(workload.run(), name="stream")
    system.sim.run(until=crash_at)
    snapshot = system.crash()
    state = recover(snapshot,
                    [(workload.log.base, workload.log.capacity)],
                    verify_macs=True)
    return system, workload, state


CRASH_TIMES = [1.0, 500.0, 2500.0, 9000.0, 33333.0]


class TestArraySwapCrash:
    @pytest.mark.parametrize("crash_at", CRASH_TIMES)
    def test_item_multiset_preserved(self, crash_at):
        """Swaps permute the array; atomic recovery must preserve the
        multiset of items no matter when the plug is pulled."""
        system, workload, state = run_then_crash("array_swap", crash_at)
        item = workload.params.value_size
        # The seeded multiset, reconstructed from the volatile view at
        # setup time, is not available post-crash; recompute it from a
        # twin system that never crashes.
        twin_cfg = default_config(mode="janus", seed=42)
        twin = NvmSystem(twin_cfg)
        twin_wl = make_workload(
            "array_swap", twin, twin.cores[0],
            WorkloadParams(n_items=8, value_size=64, n_transactions=1),
            variant="manual")
        expected = sorted(
            twin.volatile.read(twin_wl.base + i * item, item)
            for i in range(8))
        recovered = sorted(
            state.read(workload.base + i * item, item)
            for i in range(8))
        assert recovered == expected


class TestQueueCrash:
    @pytest.mark.parametrize("crash_at", CRASH_TIMES)
    def test_queue_structurally_sound(self, crash_at):
        system, workload, state = run_then_crash("queue", crash_at)
        meta = state.read(workload.meta_addr, 64)
        head, tail, length = struct.unpack_from("<QQQ", meta)
        seen = []
        node = head
        while node:
            assert node not in seen, "cycle in recovered queue"
            seen.append(node)
            header = state.read(node, 64)
            value_ptr, next_node = struct.unpack_from("<QQ", header)
            assert value_ptr != 0
            node = next_node
        assert len(seen) == length
        if length:
            assert seen[-1] == tail
        else:
            assert head == 0 and tail == 0


class TestBTreeCrash:
    @pytest.mark.parametrize("crash_at", [2500.0, 9000.0, 33333.0])
    def test_tree_invariants_on_recovered_image(self, crash_at):
        from repro.workloads.btree import MIN_DEGREE, _unpack

        system, workload, state = run_then_crash("btree", crash_at,
                                                 n_txns=12)
        root_addr = int.from_bytes(state.read(workload.meta_addr, 8),
                                   "little")

        def walk(addr, lo, hi):
            node = _unpack(state.read(addr, 192))
            keys = node["keys"]
            assert sorted(keys) == keys and len(set(keys)) == len(keys)
            for key in keys:
                assert (lo is None or key > lo) and \
                    (hi is None or key < hi)
            if node["leaf"]:
                return len(keys)
            bounds = [lo] + keys + [hi]
            return len(keys) + sum(
                walk(child, bounds[i], bounds[i + 1])
                for i, child in enumerate(node["children"]))

        size = walk(root_addr, None, None)
        assert size >= workload.params.n_items  # seeded keys survive


class TestCrashAcrossModes:
    @pytest.mark.parametrize("mode,variant", [
        ("serialized", "baseline"),
        ("parallel", "baseline"),
        ("janus", "manual"),
        ("janus", "auto"),
    ])
    def test_recovery_mode_independent(self, mode, variant):
        """Crash consistency must not depend on the latency
        optimizations — Janus requirement 1 (§3.2)."""
        _sys, workload, state = run_then_crash(
            "queue", crash_at=5000.0, mode=mode, variant=variant)
        meta = state.read(workload.meta_addr, 64)
        head, _tail, length = struct.unpack_from("<QQQ", meta)
        count = 0
        node = head
        while node and count <= length:
            header = state.read(node, 64)
            _v, node = struct.unpack_from("<QQ", header)
            count += 1
        assert count == length
