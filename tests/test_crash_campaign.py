"""The crash-point campaign: determinism, invariants, mid-BMO crashes.

The campaign is the repo's end-to-end robustness gate; these tests
pin its three contracts:

1. identical seed + config => byte-identical report JSON;
2. a fault-free sweep never violates an invariant — every crash point
   recovers onto a committed-transaction boundary whose logical
   digest matches the reference trajectory, in both modes (which also
   proves Janus pre-execution never changes post-crash recoverable
   state versus the serialized baseline);
3. a crash in the mid-BMO window (metadata committed at the persist
   point, data write not yet accepted) recovers cleanly for every
   workload — the window the paper's metadata-atomicity argument is
   about.
"""

import pytest

from repro.consistency import recover
from repro.harness import crash_campaign as cc
from repro.workloads import WORKLOADS, WorkloadParams

SEED = 7
SMALL = cc.CampaignConfig(workloads=("array_swap", "queue"),
                          points=3, seed=SEED, n_transactions=6)


@pytest.fixture(scope="module")
def small_reports():
    """The same small campaign run twice (for the determinism test;
    every other test reuses the first run)."""
    return cc.run_campaign(SMALL), cc.run_campaign(SMALL)


class TestCampaignConfig:
    def test_default_meets_issue_floor(self):
        config = cc.CampaignConfig()
        assert config.points >= 20
        assert tuple(config.workloads) == tuple(WORKLOADS)
        assert set(config.modes) == {"serialized", "janus"}

    def test_quick_config_is_smaller(self):
        quick = cc.quick_config()
        assert quick.points < cc.CampaignConfig().points
        assert len(quick.workloads) < len(WORKLOADS)


class TestCampaignInvariants:
    def test_report_is_byte_identical_across_runs(self, small_reports):
        first, second = small_reports
        assert cc.render_json(first) == cc.render_json(second)

    def test_no_violations_in_fault_free_sweep(self, small_reports):
        report, _ = small_reports
        assert report["violations"] == []
        for name, entry in report["workloads"].items():
            for mode, mode_entry in entry["modes"].items():
                for point in mode_entry["points"]:
                    assert point["result"] == "recovered", \
                        f"{name}/{mode}: {point}"
                    assert point["digest_ok"] and point["prefix_ok"]
                    assert point["scrub"]["clean"]

    def test_modes_share_the_reference_trajectory(self, small_reports):
        report, _ = small_reports
        for entry in report["workloads"].values():
            digest_sets = [m["reference_digests"]
                           for m in entry["modes"].values()]
            assert all(d == digest_sets[0] for d in digest_sets)

    def test_fault_scenarios_all_accounted(self, small_reports):
        report, _ = small_reports
        assert len(report["fault_scenarios"]) == len(cc.FAULT_SCENARIOS)
        for scenario in report["fault_scenarios"]:
            assert scenario["injected"], \
                f"{scenario['label']} never fired"
            assert scenario["accounted"], scenario
            assert not scenario["silent"]

    def test_summary_counts_match(self, small_reports):
        report, _ = small_reports
        summary = report["summary"]
        expected_points = (len(SMALL.workloads) * len(SMALL.modes)
                           * SMALL.points)
        assert summary["crash_points"] == expected_points
        assert summary["recovered"] + summary["rejected"] \
            == expected_points
        assert summary["violations"] == 0

    def test_render_json_has_no_timestamps(self, small_reports):
        report, _ = small_reports
        # Dates live in the report *filename* only; the body must be
        # reproducible byte-for-byte.
        assert "20" + "26" not in cc.render_json(report).split(
            '"schema"')[0]
        assert report["schema"] == cc.SCHEMA

    def test_write_report_roundtrip(self, small_reports, tmp_path):
        import json
        report, _ = small_reports
        path = tmp_path / "CRASHTEST_test.json"
        cc.write_report(report, str(path))
        assert json.loads(path.read_text()) == report


class TestMidBmoCrash:
    """Crash between sub-op commit and data acceptance, per workload."""

    PARAMS = WorkloadParams(n_items=8, value_size=64,
                            n_transactions=10)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_recovers_onto_committed_boundary(self, name):
        digests, _horizon = cc.reference_trajectory(
            name, "janus", self.PARAMS, SEED)
        _system, workload, snapshot = cc.crash_mid_bmo(
            name, "janus", commit_index=5, params=self.PARAMS,
            seed=SEED)
        state = recover(snapshot,
                        [(workload.log.base, workload.log.capacity)],
                        verify_macs=True)
        committed = state.committed_txns
        assert committed == list(range(1, len(committed) + 1))
        assert workload.logical_digest(state.read) \
            == digests[len(committed)]


class TestShardedCampaign:
    """The crash-point sweep on the sharded machine: every seeded
    crash — including async-epoch points caught with one shard's
    epoch flusher behind the others — recovers onto the cross-shard
    consistent cut, and the report JSON is byte-identical at --jobs 1
    vs 2 (docs/sharding.md)."""

    def sharded_config(self):
        return cc.CampaignConfig(
            workloads=("queue",), modes=("serialized", "async-epoch"),
            points=3, seed=SEED, n_transactions=6,
            fault_scenarios=False, shards=2)

    def test_sharded_points_recover_on_committed_boundaries(self):
        report = cc.run_campaign(self.sharded_config(), jobs=1)
        assert report["violations"] == []
        assert report["config"]["shards"] == 2
        for entry in report["workloads"].values():
            for mode_entry in entry["modes"].values():
                for point in mode_entry["points"]:
                    assert point["result"] == "recovered"
                    assert point["prefix_ok"]
                    assert point["digest_ok"]

    def test_sharded_report_byte_identical_at_any_jobs(self):
        inline = cc.render_json(
            cc.run_campaign(self.sharded_config(), jobs=1))
        fanned = cc.render_json(
            cc.run_campaign(self.sharded_config(), jobs=2))
        assert inline == fanned

    def test_unsharded_config_dict_has_no_shards_key(self):
        assert "shards" not in SMALL.to_dict()
        assert self.sharded_config().to_dict()["shards"] == 2
