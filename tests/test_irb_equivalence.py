"""Property test: the indexed IRB behaves identically to the
linear-scan reference under randomized operation sequences.

Both implementations are driven with the same deterministic stream of
insert / match / consume / invalidate / expire operations (named
``repro.common.rng`` streams, so failures replay exactly), and after
every step the observable state — resident entries, match results,
invalidation counts, and the full stats bag — must be identical.
"""

import pytest

from repro.common.rng import DeterministicRng
from repro.janus.irb import IntermediateResultBuffer, IrbEntry
from repro.janus.irb_linear import LinearScanIrb
from repro.sim import Simulator

LINES = [64 * i for i in range(12)]
PAYLOADS = [bytes([b]) * 64 for b in (0x11, 0x22, 0x33)]
THREADS = (0, 1, 2)


def canon_entry(entry):
    """Identity-free view of an entry for cross-implementation
    comparison."""
    return (entry.pre_id, entry.thread_id, entry.transaction_id,
            -1 if entry.line_addr is None else entry.line_addr,
            entry.data or b"", entry.data_seq, entry.created_at,
            tuple(sorted(entry.ctx.completed)))


def canon(irb):
    return sorted(canon_entry(e) for e in irb.entries())


def random_entry(rng, lines=LINES, pre_ids=6, txns=2, addr_p=0.7):
    has_addr = rng.random() < addr_p
    has_data = rng.random() < 0.6 or not has_addr
    return IrbEntry(
        pre_id=rng.randrange(pre_ids),
        thread_id=rng.choice(THREADS),
        transaction_id=rng.randrange(txns),
        line_addr=rng.choice(lines) if has_addr else None,
        data=rng.choice(PAYLOADS) if has_data else None,
        data_seq=rng.randrange(2))


def clone(entry):
    return IrbEntry(
        pre_id=entry.pre_id, thread_id=entry.thread_id,
        transaction_id=entry.transaction_id,
        line_addr=entry.line_addr, data=entry.data,
        data_seq=entry.data_seq)


def _run_equivalence(stream_name, lines=LINES, pre_ids=6, txns=2,
                     addr_p=0.7):
    rng = DeterministicRng(0).stream(stream_name)
    sim_a, sim_b = Simulator(), Simulator()
    indexed = IntermediateResultBuffer(sim_a, capacity=10,
                                       max_age_ns=500.0)
    linear = LinearScanIrb(sim_b, capacity=10, max_age_ns=500.0)

    for step in range(400):
        # Keep both clocks in lockstep; jumps large enough to expire.
        dt = rng.choice([0, 0, 1, 5, 40, 200])
        sim_a.now += dt
        sim_b.now += dt

        roll = rng.random()
        if roll < 0.45:
            entry = random_entry(rng, lines=lines, pre_ids=pre_ids,
                                 txns=txns, addr_p=addr_p)
            got_a = indexed.insert(entry)
            got_b = linear.insert(clone(entry))
            assert (got_a is None) == (got_b is None), step
            if got_a is not None:
                assert canon_entry(got_a) == canon_entry(got_b), step
        elif roll < 0.70:
            thread = rng.choice(THREADS)
            line = rng.choice(lines)
            data = rng.choice(PAYLOADS)
            got_a = indexed.match_write(thread, line, data)
            got_b = linear.match_write(thread, line, data)
            assert (got_a is None) == (got_b is None), step
            if got_a is not None:
                assert canon_entry(got_a) == canon_entry(got_b), step
        elif roll < 0.80:
            # Consume the same logical entry on both sides.
            resident_a = sorted(indexed.entries(), key=canon_entry)
            resident_b = sorted(linear.entries(), key=canon_entry)
            if resident_a:
                index = rng.randrange(len(resident_a))
                indexed.consume(resident_a[index])
                linear.consume(resident_b[index])
        elif roll < 0.88:
            line = rng.choice(lines)
            assert indexed.invalidate_line(line) == \
                linear.invalidate_line(line), step
        elif roll < 0.94:
            thread = rng.choice(THREADS)
            assert indexed.clear_thread(thread) == \
                linear.clear_thread(thread), step
        else:
            lo = rng.choice(lines)
            hi = lo + 64 * rng.randrange(1, 4)
            assert indexed.invalidate_range(lo, hi) == \
                linear.invalidate_range(lo, hi), step

        assert len(indexed) == len(linear), step
        assert canon(indexed) == canon(linear), step
        assert indexed.stats.as_dict() == linear.stats.as_dict(), step


@pytest.mark.parametrize("seed", range(6))
def test_indexed_irb_equivalent_to_linear_reference(seed):
    _run_equivalence(f"irb-equivalence:{seed}")


@pytest.mark.parametrize("seed", range(6))
def test_indexed_irb_equivalent_merge_heavy(seed):
    """Tiny key space and many address-less entries → frequent merges,
    including data-only entries gaining addresses — the bucket-reorder
    sequence behind the match_write most-recent-wins regression."""
    _run_equivalence(f"irb-equivalence-merge:{seed}",
                     lines=LINES[:4], pre_ids=3, txns=1, addr_p=0.55)


def test_equivalence_streams_are_deterministic():
    """The named streams replay identically — a failure above is
    reproducible from its seed."""
    one = DeterministicRng(0).stream("irb-equivalence:0").random()
    two = DeterministicRng(0).stream("irb-equivalence:0").random()
    assert one == two
