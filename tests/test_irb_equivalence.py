"""Property test: the indexed IRB behaves identically to the
linear-scan reference under randomized operation sequences.

Both implementations are driven with the same deterministic stream of
insert / match / consume / invalidate / expire operations (named
``repro.common.rng`` streams, so failures replay exactly), and after
every step the observable state — resident entries, match results,
invalidation counts, and the full stats bag — must be identical.
"""

import pytest

from repro.common.rng import DeterministicRng
from repro.janus.irb import IntermediateResultBuffer, IrbEntry
from repro.janus.irb_linear import LinearScanIrb
from repro.sim import Simulator

LINES = [64 * i for i in range(12)]
PAYLOADS = [bytes([b]) * 64 for b in (0x11, 0x22, 0x33)]
THREADS = (0, 1, 2)


def canon_entry(entry):
    """Identity-free view of an entry for cross-implementation
    comparison."""
    return (entry.pre_id, entry.thread_id, entry.transaction_id,
            -1 if entry.line_addr is None else entry.line_addr,
            entry.data or b"", entry.data_seq, entry.created_at,
            tuple(sorted(entry.ctx.completed)))


def canon(irb):
    return sorted(canon_entry(e) for e in irb.entries())


def random_entry(rng, now):
    has_addr = rng.random() < 0.7
    has_data = rng.random() < 0.6 or not has_addr
    return IrbEntry(
        pre_id=rng.randrange(6),
        thread_id=rng.choice(THREADS),
        transaction_id=rng.randrange(2),
        line_addr=rng.choice(LINES) if has_addr else None,
        data=rng.choice(PAYLOADS) if has_data else None,
        data_seq=rng.randrange(2))


def clone(entry):
    return IrbEntry(
        pre_id=entry.pre_id, thread_id=entry.thread_id,
        transaction_id=entry.transaction_id,
        line_addr=entry.line_addr, data=entry.data,
        data_seq=entry.data_seq)


@pytest.mark.parametrize("seed", range(6))
def test_indexed_irb_equivalent_to_linear_reference(seed):
    rng = DeterministicRng(0).stream(f"irb-equivalence:{seed}")
    sim_a, sim_b = Simulator(), Simulator()
    indexed = IntermediateResultBuffer(sim_a, capacity=10,
                                       max_age_ns=500.0)
    linear = LinearScanIrb(sim_b, capacity=10, max_age_ns=500.0)

    for step in range(400):
        # Keep both clocks in lockstep; jumps large enough to expire.
        dt = rng.choice([0, 0, 1, 5, 40, 200])
        sim_a.now += dt
        sim_b.now += dt

        roll = rng.random()
        if roll < 0.45:
            entry = random_entry(rng, sim_a.now)
            got_a = indexed.insert(entry)
            got_b = linear.insert(clone(entry))
            assert (got_a is None) == (got_b is None), step
            if got_a is not None:
                assert canon_entry(got_a) == canon_entry(got_b), step
        elif roll < 0.70:
            thread = rng.choice(THREADS)
            line = rng.choice(LINES)
            data = rng.choice(PAYLOADS)
            got_a = indexed.match_write(thread, line, data)
            got_b = linear.match_write(thread, line, data)
            assert (got_a is None) == (got_b is None), step
            if got_a is not None:
                assert canon_entry(got_a) == canon_entry(got_b), step
        elif roll < 0.80:
            # Consume the same logical entry on both sides.
            resident_a = sorted(indexed.entries(), key=canon_entry)
            resident_b = sorted(linear.entries(), key=canon_entry)
            if resident_a:
                index = rng.randrange(len(resident_a))
                indexed.consume(resident_a[index])
                linear.consume(resident_b[index])
        elif roll < 0.88:
            line = rng.choice(LINES)
            assert indexed.invalidate_line(line) == \
                linear.invalidate_line(line), step
        elif roll < 0.94:
            thread = rng.choice(THREADS)
            assert indexed.clear_thread(thread) == \
                linear.clear_thread(thread), step
        else:
            lo = rng.choice(LINES)
            hi = lo + 64 * rng.randrange(1, 4)
            assert indexed.invalidate_range(lo, hi) == \
                linear.invalidate_range(lo, hi), step

        assert len(indexed) == len(linear), step
        assert canon(indexed) == canon(linear), step
        assert indexed.stats.as_dict() == linear.stats.as_dict(), step


def test_equivalence_streams_are_deterministic():
    """The named streams replay identically — a failure above is
    reproducible from its seed."""
    one = DeterministicRng(0).stream("irb-equivalence:0").random()
    two = DeterministicRng(0).stream("irb-equivalence:0").random()
    assert one == two
