"""Property test: the indexed IRB behaves identically to the
linear-scan reference under randomized operation sequences.

The lockstep pair itself lives in :mod:`repro.validate.oracles`
(:class:`IrbLockstep`, also driven by ``repro fuzz``); these tests
run the seeded random traces and pin down the lockstep's own failure
reporting.
"""

import pytest

from repro.common.rng import DeterministicRng
from repro.janus.irb import IrbEntry
from repro.validate.oracles import (
    LINES,
    PAYLOADS,
    IrbLockstep,
    OracleMismatch,
    run_random_irb_trace,
)


@pytest.mark.parametrize("seed", range(6))
def test_indexed_irb_equivalent_to_linear_reference(seed):
    rng = DeterministicRng(0).stream(f"irb-equivalence:{seed}")
    run_random_irb_trace(rng)


@pytest.mark.parametrize("seed", range(6))
def test_indexed_irb_equivalent_merge_heavy(seed):
    """Tiny key space and many address-less entries → frequent merges,
    including data-only entries gaining addresses — the bucket-reorder
    sequence behind the match_write most-recent-wins regression."""
    rng = DeterministicRng(0).stream(f"irb-equivalence-merge:{seed}")
    run_random_irb_trace(rng, lines=LINES[:4], pre_ids=3, txns=1,
                         addr_p=0.55)


def test_equivalence_streams_are_deterministic():
    """The named streams replay identically — a failure above is
    reproducible from its seed."""
    one = DeterministicRng(0).stream("irb-equivalence:0").random()
    two = DeterministicRng(0).stream("irb-equivalence:0").random()
    assert one == two


def test_lockstep_basic_ops_agree():
    pair = IrbLockstep()
    entry = IrbEntry(pre_id=0, thread_id=0, transaction_id=0,
                     line_addr=LINES[0], data=PAYLOADS[0], data_seq=0)
    assert pair.insert(entry) is not None
    assert pair.match(0, LINES[0], PAYLOADS[0]) is not None
    assert len(pair.indexed) == len(pair.linear) == 1
    pair.consume_nth(0)
    assert len(pair.indexed) == 0
    assert pair.invalidate_line(LINES[0]) == 0


def test_lockstep_reports_divergence_with_op_context():
    """A deliberate one-sided mutation is caught on the next verify,
    tagged with the step and both canonical states."""
    pair = IrbLockstep()
    pair.insert(IrbEntry(pre_id=0, thread_id=0, transaction_id=0,
                         line_addr=LINES[1], data=PAYLOADS[1],
                         data_seq=0))
    pair.linear.invalidate_line(LINES[1])  # indexed side keeps it
    with pytest.raises(OracleMismatch) as excinfo:
        pair.verify("tamper")
    assert "tamper" in str(excinfo.value)
    assert dict(excinfo.value.diff)["indexed"] != \
        dict(excinfo.value.diff)["linear"]
