"""Crash-consistency tests: undo/redo logs, crash injection, recovery."""

import pytest

from repro.common.config import default_config
from repro.common.errors import IntegrityError
from repro.consistency import RedoLog, UndoLog, recover
from repro.core import NvmSystem


def make_system(**overrides):
    return NvmSystem(default_config(**overrides))


def run_txn(system, log, addr, old, new, crash_after=None):
    """Drive one undo transaction; optionally stop at a phase."""
    core = system.cores[0]
    stop = system.sim.event("stop")

    def prog():
        txn = log.begin()
        yield from txn.backup(addr, len(old))
        yield from txn.fence_backups()
        if crash_after == "backup":
            stop.succeed()
            return
        yield from txn.write(addr, new)
        yield from txn.fence_updates()
        if crash_after == "update":
            stop.succeed()
            return
        yield from txn.commit()
        stop.succeed()

    system.sim.process(prog())
    system.sim.run(stop_event=stop)


def seed_value(system, addr, data):
    """Persist an initial value outside any transaction."""
    core = system.cores[0]

    def prog():
        yield from core.store(addr, data)
        yield from core.persist(addr, len(data))

    proc = system.sim.process(prog())
    system.sim.run(stop_event=proc)


class TestUndoLogProtocol:
    def test_committed_txn_survives_crash(self):
        system = make_system(mode="serialized")
        log = UndoLog(system.cores[0], capacity_bytes=1 << 16)
        addr = system.heap.alloc_line(64, label="x")
        seed_value(system, addr, b"\x11" * 64)
        run_txn(system, log, addr, b"\x11" * 64, b"\x22" * 64)
        snapshot = system.crash()
        state = recover(snapshot, [(log.base, log.capacity)])
        assert state.read(addr, 64) == b"\x22" * 64
        assert state.rolled_back == []

    def test_uncommitted_txn_rolls_back(self):
        system = make_system(mode="serialized")
        log = UndoLog(system.cores[0], capacity_bytes=1 << 16)
        addr = system.heap.alloc_line(64, label="x")
        seed_value(system, addr, b"\x11" * 64)
        run_txn(system, log, addr, b"\x11" * 64, b"\x22" * 64,
                crash_after="update")
        snapshot = system.crash()
        state = recover(snapshot, [(log.base, log.capacity)])
        assert state.read(addr, 64) == b"\x11" * 64  # rolled back
        assert len(state.rolled_back) == 1

    def test_crash_after_backup_only_is_clean(self):
        system = make_system(mode="serialized")
        log = UndoLog(system.cores[0], capacity_bytes=1 << 16)
        addr = system.heap.alloc_line(64, label="x")
        seed_value(system, addr, b"\x11" * 64)
        run_txn(system, log, addr, b"\x11" * 64, b"\x22" * 64,
                crash_after="backup")
        snapshot = system.crash()
        state = recover(snapshot, [(log.base, log.capacity)])
        assert state.read(addr, 64) == b"\x11" * 64

    @pytest.mark.parametrize("mode", ["serialized", "parallel", "janus"])
    def test_recovery_identical_across_modes(self, mode):
        system = make_system(mode=mode)
        log = UndoLog(system.cores[0], capacity_bytes=1 << 16)
        addr = system.heap.alloc_line(64, label="x")
        seed_value(system, addr, b"\x33" * 64)
        run_txn(system, log, addr, b"\x33" * 64, b"\x44" * 64)
        snapshot = system.crash()
        state = recover(snapshot, [(log.base, log.capacity)])
        assert state.read(addr, 64) == b"\x44" * 64

    def test_multiple_txns_mixed_outcome(self):
        system = make_system(mode="serialized")
        core = system.cores[0]
        log = UndoLog(core, capacity_bytes=1 << 16)
        a = system.heap.alloc_line(64, label="a")
        b = system.heap.alloc_line(64, label="b")
        seed_value(system, a, b"\xAA" * 64)
        seed_value(system, b, b"\xBB" * 64)
        run_txn(system, log, a, b"\xAA" * 64, b"\xA1" * 64)  # commits
        run_txn(system, log, b, b"\xBB" * 64, b"\xB1" * 64,
                crash_after="update")  # crashes
        snapshot = system.crash()
        state = recover(snapshot, [(log.base, log.capacity)])
        assert state.read(a, 64) == b"\xA1" * 64
        assert state.read(b, 64) == b"\xBB" * 64

    def test_phase_violations_rejected(self):
        from repro.common.errors import SimulationError
        system = make_system(mode="serialized")
        core = system.cores[0]
        log = UndoLog(core, capacity_bytes=1 << 16)
        addr = system.heap.alloc_line(64)
        seed_value(system, addr, bytes(64))

        def bad():
            txn = log.begin()
            yield from txn.write(addr, b"\x01" * 64)  # auto-fences
            yield from txn.commit()
            yield from txn.backup(addr, 64)  # after done: illegal

        proc = system.sim.process(bad())
        system.sim.run()
        assert isinstance(proc._exc, SimulationError)


class TestRecoveryThroughDedup:
    def test_duplicate_line_recovers_through_remap(self):
        system = make_system(mode="serialized")
        a = system.heap.alloc_line(64, label="a")
        b = system.heap.alloc_line(64, label="b")
        data = b"\x66" * 64
        seed_value(system, a, data)
        seed_value(system, b, data)  # dup: never physically written
        snapshot = system.crash()
        assert b not in snapshot["nvm_lines"]  # truly deduplicated
        state = recover(snapshot, [])
        assert state.read(b, 64) == data

    def test_relocated_canonical_line_still_recovers(self):
        system = make_system(mode="serialized")
        a = system.heap.alloc_line(64, label="a")
        b = system.heap.alloc_line(64, label="b")
        data = b"\x77" * 64
        seed_value(system, a, data)
        seed_value(system, b, data)       # b aliases a's line
        seed_value(system, a, b"\x88" * 64)  # a overwritten: relocation
        snapshot = system.crash()
        state = recover(snapshot, [])
        assert state.read(a, 64) == b"\x88" * 64
        assert state.read(b, 64) == data
        dedup = system.pipeline.by_name["dedup"]
        assert dedup.table.relocations == 1


class TestMacVerification:
    def test_tampered_ciphertext_detected(self):
        system = make_system(mode="serialized")
        addr = system.heap.alloc_line(64, label="x")
        seed_value(system, addr, b"\x99" * 64)
        snapshot = system.crash()
        # Flip a byte of the stored ciphertext.
        line = bytearray(snapshot["nvm_lines"][addr])
        line[0] ^= 0xFF
        snapshot["nvm_lines"][addr] = bytes(line)
        state = recover(snapshot, [], verify_macs=True)
        with pytest.raises(IntegrityError):
            state.read(addr, 64)

    def test_untampered_verifies_clean(self):
        system = make_system(mode="serialized")
        addr = system.heap.alloc_line(64, label="x")
        seed_value(system, addr, b"\x99" * 64)
        snapshot = system.crash()
        state = recover(snapshot, [], verify_macs=True)
        assert state.read(addr, 64) == b"\x99" * 64


class TestRedoLog:
    def test_redo_transaction_defers_in_place_writes(self):
        system = make_system(mode="serialized")
        core = system.cores[0]
        log = RedoLog(core, capacity_bytes=1 << 16)
        addr = system.heap.alloc_line(64, label="x")
        seed_value(system, addr, b"\x10" * 64)
        done = system.sim.event("done")

        def prog():
            txn = log.begin()
            yield from txn.log_update(addr, b"\x20" * 64)
            assert system.volatile.read(addr, 64) == b"\x10" * 64
            yield from txn.commit()
            yield from txn.apply_updates()
            done.succeed()

        system.sim.process(prog())
        system.sim.run(stop_event=done)
        assert system.volatile.read(addr, 64) == b"\x20" * 64

    def test_committed_redo_txn_replays_after_crash(self):
        """Crash after commit but before apply_updates: recovery must
        reinstate the logged new values."""
        system = make_system(mode="serialized")
        core = system.cores[0]
        log = RedoLog(core, capacity_bytes=1 << 16)
        addr = system.heap.alloc_line(64, label="x")
        seed_value(system, addr, b"\x10" * 64)
        stop = system.sim.event("stop")

        def prog():
            txn = log.begin()
            yield from txn.log_update(addr, b"\x20" * 64)
            yield from txn.commit()
            stop.succeed()  # crash before apply_updates

        system.sim.process(prog())
        system.sim.run(stop_event=stop)
        snapshot = system.crash()
        state = recover(snapshot,
                        redo_log_regions=[(log.base, log.capacity)])
        assert state.read(addr, 64) == b"\x20" * 64

    def test_uncommitted_redo_txn_not_replayed(self):
        system = make_system(mode="serialized")
        core = system.cores[0]
        log = RedoLog(core, capacity_bytes=1 << 16)
        addr = system.heap.alloc_line(64, label="x")
        seed_value(system, addr, b"\x10" * 64)
        stop = system.sim.event("stop")

        def prog():
            txn = log.begin()
            yield from txn.log_update(addr, b"\x20" * 64)
            yield from core.sfence()
            stop.succeed()  # crash before the commit record

        system.sim.process(prog())
        system.sim.run(stop_event=stop)
        snapshot = system.crash()
        state = recover(snapshot,
                        redo_log_regions=[(log.base, log.capacity)])
        assert state.read(addr, 64) == b"\x10" * 64

    def test_redo_phase_violation_rejected(self):
        from repro.common.errors import SimulationError
        system = make_system(mode="serialized")
        core = system.cores[0]
        log = RedoLog(core, capacity_bytes=1 << 16)
        addr = system.heap.alloc_line(64)

        def bad():
            txn = log.begin()
            yield from txn.apply_updates()  # before commit

        proc = system.sim.process(bad())
        system.sim.run()
        assert isinstance(proc._exc, SimulationError)
