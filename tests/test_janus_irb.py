"""Tests for the Intermediate Result Buffer."""

from repro.bmo.base import BmoContext
from repro.janus.irb import IntermediateResultBuffer, IrbEntry
from repro.janus.irb_linear import LinearScanIrb
from repro.sim import Simulator


def entry(pre_id=1, thread=0, txn=0, addr=64, data=None, seq=0):
    return IrbEntry(pre_id=pre_id, thread_id=thread, transaction_id=txn,
                    line_addr=addr, data=data,
                    ctx=BmoContext(addr=addr, data=data), data_seq=seq)


def make_irb(capacity=4, max_age=1000.0):
    sim = Simulator()
    return sim, IntermediateResultBuffer(sim, capacity, max_age_ns=max_age)


def test_insert_and_match_by_address():
    sim, irb = make_irb()
    irb.insert(entry(addr=128))
    match = irb.match_write(thread_id=0, line_addr=128, data=b"\x00" * 64)
    assert match is not None and match.line_addr == 128
    assert irb.stats.counters["hits"].value == 1


def test_match_miss_counts():
    sim, irb = make_irb()
    irb.insert(entry(addr=128))
    assert irb.match_write(0, 999 * 64, b"") is None
    assert irb.stats.counters["misses"].value == 1


def test_match_is_thread_private():
    sim, irb = make_irb()
    irb.insert(entry(thread=1, addr=128))
    assert irb.match_write(0, 128, b"") is None


def test_full_buffer_drops_new_entries():
    sim, irb = make_irb(capacity=2)
    assert irb.insert(entry(pre_id=1, addr=0))
    assert irb.insert(entry(pre_id=2, addr=64))
    assert not irb.insert(entry(pre_id=3, addr=128))
    assert irb.stats.counters["dropped_full"].value == 1


def test_same_key_same_line_merges():
    sim, irb = make_irb()
    addr_only = entry(pre_id=5, addr=64, data=None)
    addr_only.ctx.values["counter"] = 7
    addr_only.ctx.completed = {"E1"}
    irb.insert(addr_only)
    with_data = entry(pre_id=5, addr=64, data=b"\x01" * 64)
    with_data.ctx.completed = {"D1"}
    irb.insert(with_data)
    assert len(irb) == 1
    merged = irb.entries()[0]
    assert merged.ctx.completed == {"E1", "D1"}
    assert merged.ctx.values["counter"] == 7
    assert merged.data == b"\x01" * 64


def test_data_only_entry_pairs_with_addr_by_seq():
    sim, irb = make_irb()
    data_entry = entry(pre_id=9, addr=None, data=b"\x02" * 64, seq=0)
    data_entry.line_addr = None
    irb.insert(data_entry)
    addr_entry = entry(pre_id=9, addr=256, data=None, seq=0)
    irb.insert(addr_entry)
    assert len(irb) == 1
    assert irb.entries()[0].line_addr == 256
    assert irb.entries()[0].data == b"\x02" * 64


def test_data_only_entry_matches_write_by_bytes():
    sim, irb = make_irb()
    data_entry = entry(pre_id=9, addr=None, data=b"\x03" * 64)
    irb.insert(data_entry)
    match = irb.match_write(0, 512, b"\x03" * 64)
    assert match is data_entry
    assert irb.match_write(0, 512, b"\x04" * 64) is None


def test_consume_removes_entry():
    sim, irb = make_irb()
    e = entry()
    irb.insert(e)
    irb.consume(e)
    assert len(irb) == 0
    irb.consume(e)  # idempotent


def test_invalidate_line_and_range():
    sim, irb = make_irb(capacity=8)
    irb.insert(entry(pre_id=1, addr=0))
    irb.insert(entry(pre_id=2, addr=64))
    irb.insert(entry(pre_id=3, addr=128))
    assert irb.invalidate_line(64) == 1
    assert irb.invalidate_range(0, 256) == 2
    assert len(irb) == 0


def test_clear_thread():
    sim, irb = make_irb(capacity=8)
    irb.insert(entry(pre_id=1, thread=0, addr=0))
    irb.insert(entry(pre_id=2, thread=1, addr=64))
    assert irb.clear_thread(0) == 1
    assert len(irb) == 1
    assert irb.entries()[0].thread_id == 1


def test_metadata_change_invalidates_matching_fingerprint():
    sim, irb = make_irb(capacity=8)
    e = entry(pre_id=1, addr=0)
    e.ctx.values["fingerprint"] = b"fp-1"
    irb.insert(e)
    other = entry(pre_id=2, addr=64)
    other.ctx.values["fingerprint"] = b"fp-2"
    irb.insert(other)
    irb.on_metadata_change("dedup", {"kind": "entry_dropped",
                                     "fingerprint": b"fp-1"})
    remaining = irb.entries()
    assert len(remaining) == 1
    assert remaining[0].ctx.values["fingerprint"] == b"fp-2"


def test_entries_age_out():
    sim, irb = make_irb(capacity=8, max_age=100.0)
    irb.insert(entry(pre_id=1, addr=0))

    def later():
        yield sim.timeout(200)

    sim.process(later())
    sim.run()
    assert irb.match_write(0, 0, b"") is None
    assert irb.stats.counters["expired"].value == 1


def test_data_only_match_most_recent_wins():
    """Docstring semantics: most-recently-created entry wins — the old
    scan took the *first* data-only match found instead."""
    sim, irb = make_irb(capacity=8)
    first = entry(pre_id=1, addr=None, data=b"\x05" * 64)
    irb.insert(first)

    def later():
        yield sim.timeout(10)
        second = entry(pre_id=2, addr=None, data=b"\x05" * 64)
        irb.insert(second)

    sim.process(later())
    sim.run()
    match = irb.match_write(0, 0x4000, b"\x05" * 64)
    assert match is not None and match.pre_id == 2


def test_address_match_beats_data_only_match():
    """An address match is the primary key (paper step 5): it must win
    over a byte-compare data-only match regardless of age."""
    sim, irb = make_irb(capacity=8)
    payload = b"\x06" * 64
    addressed = entry(pre_id=1, addr=0x1000, data=payload)
    irb.insert(addressed)

    def later():
        yield sim.timeout(10)
        data_only = entry(pre_id=2, addr=None, data=payload)
        irb.insert(data_only)

    sim.process(later())
    sim.run()
    # The data-only entry is newer, but the write's address matches
    # the older entry: address wins.
    match = irb.match_write(0, 0x1000, payload)
    assert match is addressed


def test_insert_returns_owning_entry():
    sim, irb = make_irb()
    fresh = entry(pre_id=5, addr=64, data=None)
    assert irb.insert(fresh) is fresh
    merging = entry(pre_id=5, addr=64, data=b"\x01" * 64)
    assert irb.insert(merging) is fresh  # merged into the existing one


def test_insert_returns_none_when_full():
    sim, irb = make_irb(capacity=1)
    assert irb.insert(entry(pre_id=1, addr=0)) is not None
    assert irb.insert(entry(pre_id=2, addr=64)) is None


def test_merge_gaining_address_moves_entry_to_address_index():
    sim, irb = make_irb()
    payload = b"\x07" * 64
    data_only = entry(pre_id=9, addr=None, data=payload)
    irb.insert(data_only)
    addr_side = entry(pre_id=9, addr=0x2000, data=None)
    owner = irb.insert(addr_side)
    assert owner is data_only and owner.line_addr == 0x2000
    # Matched by address now, and invalidated by line like any
    # addressed entry.
    assert irb.match_write(0, 0x2000, b"") is data_only
    assert irb.invalidate_line(0x2000) == 1
    assert len(irb) == 0


def _drive_merge_reorder(irb, sim, merge_at):
    """data-only pre_id=1 at t=0, addressed pre_id=2 at t=5, then
    pre_id=1 merges and gains the same address at ``merge_at`` — the
    merged entry is appended to the (thread, line) bucket *after* the
    younger pre_id=2 while keeping created_at=0."""
    sim.now = 0.0
    irb.insert(IrbEntry(pre_id=1, thread_id=0, transaction_id=0,
                        line_addr=None, data=b"\x05" * 64))
    sim.now = 5.0
    irb.insert(IrbEntry(pre_id=2, thread_id=0, transaction_id=0,
                        line_addr=0x400, data=None))
    sim.now = merge_at
    irb.insert(IrbEntry(pre_id=1, thread_id=0, transaction_id=0,
                        line_addr=0x400, data=None))
    return irb.match_write(0, 0x400, b"\x00" * 64)


def test_merged_entry_does_not_shadow_newer_address_match():
    """Regression: after a data-only entry merges with an
    address-bearing op, match_write must still return the
    most-recently-created entry for that (thread, line) — bucket
    append order at merge time must not override created_at."""
    sim, irb = make_irb(capacity=8)
    match = _drive_merge_reorder(irb, sim, merge_at=7.0)
    assert match is not None
    assert match.pre_id == 2 and match.created_at == 5.0
    # And it agrees with the linear-scan reference.
    ref_sim = Simulator()
    ref = _drive_merge_reorder(
        LinearScanIrb(ref_sim, capacity=8, max_age_ns=1000.0),
        ref_sim, merge_at=7.0)
    assert (ref.pre_id, ref.created_at) == (match.pre_id,
                                            match.created_at)


def test_merged_entry_created_at_tie_breaks_by_insertion_order():
    """Both entries created at the same instant: the later-inserted
    one wins, matching the reference scan's tie-break, even though
    the merge put the earlier entry last in the address bucket."""

    def drive(irb, sim):
        irb.insert(IrbEntry(pre_id=1, thread_id=0, transaction_id=0,
                            line_addr=None, data=b"\x05" * 64))
        irb.insert(IrbEntry(pre_id=2, thread_id=0, transaction_id=0,
                            line_addr=0x400, data=None))  # same t=0
        sim.now = 3.0
        irb.insert(IrbEntry(pre_id=1, thread_id=0, transaction_id=0,
                            line_addr=0x400, data=None))  # merge
        return irb.match_write(0, 0x400, b"\x00" * 64)

    sim_a, indexed = make_irb(capacity=8)
    got_a = drive(indexed, sim_a)
    sim_b = Simulator()
    got_b = drive(LinearScanIrb(sim_b, capacity=8, max_age_ns=1000.0),
                  sim_b)
    assert got_a is not None and got_b is not None
    assert got_a.pre_id == got_b.pre_id == 2
    assert got_a.created_at == got_b.created_at == 0.0


def test_most_recent_entry_wins_on_duplicate_addr():
    sim, irb = make_irb(capacity=8)
    first = entry(pre_id=1, addr=0)
    irb.insert(first)

    def later():
        yield sim.timeout(10)
        second = entry(pre_id=2, addr=0)
        irb.insert(second)

    sim.process(later())
    sim.run()
    match = irb.match_write(0, 0, b"\x00" * 64)
    assert match.pre_id == 2
