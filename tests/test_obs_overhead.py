"""Pin the disabled-observability path to zero per-event overhead.

PR 6 added profiler/sampler hooks to the simulator.  These tests
guarantee the *disabled* configuration (the default for every figure
sweep and bench run) kept the PR 5 fast path:

* structurally — no spans, no samples, no log records, and the
  instrumented loop is never entered;
* empirically — a guarded micro-benchmark asserting the obs-off
  dispatch loop stays within 2% of a verbatim copy of the
  pre-profiler loop (the ``repro bench`` gate runs the same check).
"""

import pytest

from repro.harness.bench import bench_obs_overhead
from repro.harness.runner import run_point
from repro.obs import log as runlog
from repro.obs.tracer import NULL_TRACER
from repro.sim import Simulator
from repro.workloads import WorkloadParams


class TestDisabledPathStructure:
    def test_hooks_default_to_none(self):
        sim = Simulator()
        assert sim.profile is None and sim.sampler is None

    def test_fast_loop_never_enters_instrumented(self, monkeypatch):
        sim = Simulator()

        def forbidden(_until, _stop):
            raise AssertionError(
                "disabled run must use the fast loop")

        monkeypatch.setattr(sim, "_run_instrumented", forbidden)
        for _ in range(3):
            sim.timeout(1.0)
        assert sim.run() == 1.0
        assert sim.events == 3

    def test_instrumented_loop_used_when_profiler_attached(self):
        from repro.obs.profile import SimProfiler

        sim = Simulator()
        sim.profile = SimProfiler()
        sim.timeout(1.0)
        sim.run()
        assert sim.profile.total_events == 1

    def test_disabled_run_allocates_no_obs_state(self):
        result = run_point("queue", mode="janus",
                           params=WorkloadParams(n_transactions=2))
        assert result.transactions == 2
        # No tracer given: the system wires the shared no-op tracer,
        # which stores nothing.
        assert len(NULL_TRACER) == 0
        assert runlog.current() is None

    def test_instrumented_and_fast_loops_agree(self):
        params = WorkloadParams(n_transactions=3)
        from repro.obs.profile import SimProfiler

        plain = run_point("queue", mode="janus", params=params)
        profiled = run_point("queue", mode="janus", params=params,
                             profiler=SimProfiler())
        assert profiled.elapsed_ns == plain.elapsed_ns
        assert profiled.stats == plain.stats


class TestDisabledPathTiming:
    def test_obs_off_overhead_under_two_percent(self):
        # Guarded micro-benchmark: best-of-each-side with sustained
        # warm-up and GC paused already rejects transient load; retry
        # the whole measurement a few times before declaring a
        # regression so a noisy CI neighbour cannot fail the build (a
        # real per-event cost fails all attempts deterministically).
        overheads = []
        for _ in range(3):
            overhead = bench_obs_overhead(events=60_000,
                                          repeats=6)["overhead"]
            overheads.append(overhead)
            if overhead < 0.02:
                return
        pytest.fail(
            "disabled-path dispatch overhead above 2% in every "
            "attempt: " + ", ".join(f"{o:.2%}" for o in overheads))
