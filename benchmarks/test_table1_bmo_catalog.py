"""Regenerates Table 1: the BMO catalogue with write latencies."""

from repro.harness.experiments import table1_bmo_catalog


def test_table1(run_once):
    result = run_once(table1_bmo_catalog)
    assert len(result.data["rows"]) == 7  # all Table 1 BMO classes
