"""Regenerates Fig. 11: manual vs. compiler-pass instrumentation.

Shape targets: automated within ~15% of manual on average (paper:
13.3%), with the gap concentrated in the loop/pointer-heavy workloads
(Queue, RB-Tree — the pass's section 4.5.2 limitations)."""

from repro.harness.experiments import fig11_compiler
from repro.harness.report import arithmetic_mean


def test_fig11(run_once):
    result = run_once(fig11_compiler, scale=0.5)
    data = result.data
    mean_manual = arithmetic_mean([d["manual"] for d in data.values()])
    mean_auto = arithmetic_mean([d["auto"] for d in data.values()])
    assert mean_auto <= mean_manual
    # Average gap in the paper's neighbourhood.
    assert mean_auto / mean_manual > 0.7
    # The loop-limited workloads lose the most from automation.
    assert data["rbtree"]["auto"] / data["rbtree"]["manual"] < 0.9
