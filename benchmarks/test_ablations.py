"""Ablation benches for the design choices DESIGN.md calls out.

1. strict sibling invalidation — charging Merkle-path rework from
   concurrent commits on the critical path erases much of the
   pre-execution benefit (why real BMT engines absorb it);
2. selective vs. always-on metadata atomicity (§4.3);
3. non-pipelined BMO units — fully-occupying engines make multi-write
   fences throughput-bound and flatten every speedup;
4. deferred/coalesced vs. immediate pre-execution on TATP's sub-line
   field updates (Fig. 8b's motivation).
"""

import dataclasses

from repro.common.config import default_config
from repro.harness.runner import run_point, speedup_over
from repro.workloads import WorkloadParams

PARAMS = WorkloadParams(n_items=32, value_size=64, n_transactions=12)


def _speedup(workload, config=None, variant="manual", params=PARAMS):
    ser = run_point(workload, mode="serialized", params=params,
                    config=config)
    jan = run_point(workload, mode="janus", variant=variant,
                    params=params, config=config)
    return speedup_over(ser, jan)


def test_ablation_strict_sibling_invalidation(benchmark, announce):
    def run():
        default = _speedup("array_swap")
        cfg = default_config()
        cfg = cfg.replace(integrity=dataclasses.replace(
            cfg.integrity, strict_sibling_invalidation=True))
        strict = _speedup("array_swap", config=cfg)
        return default, strict

    default, strict = benchmark.pedantic(run, rounds=1, iterations=1)
    announce(f"\nablation: sibling invalidation  default={default:.2f}x  "
             f"strict={strict:.2f}x")
    # Charging sibling rework on the critical path costs speedup.
    assert strict < default


def test_ablation_metadata_atomicity(benchmark, announce):
    def run():
        selective = _speedup("tatp")
        cfg = default_config().replace(
            selective_metadata_atomicity=False)
        always = _speedup("tatp", config=cfg)
        return selective, always

    selective, always = benchmark.pedantic(run, rounds=1, iterations=1)
    announce(f"\nablation: metadata atomicity  selective={selective:.2f}x  "
             f"always={always:.2f}x")
    assert selective > 1.0 and always > 1.0


def test_ablation_non_pipelined_units(benchmark, announce):
    def run():
        pipelined = _speedup("btree")
        cfg = default_config().replace(bmo_unit_pipeline_fraction=1.0)
        blocking = _speedup("btree", config=cfg)
        return pipelined, blocking

    pipelined, blocking = benchmark.pedantic(run, rounds=1,
                                             iterations=1)
    announce(f"\nablation: unit pipelining  pipelined={pipelined:.2f}x  "
             f"fully-occupying={blocking:.2f}x")
    assert pipelined > 1.0 and blocking > 1.0


def test_ablation_bmo_composition(benchmark, announce):
    """Which BMO stack costs what, and how much Janus recovers."""
    from repro.harness.experiments import bmo_composition

    result = benchmark.pedantic(bmo_composition,
                                kwargs={"scale": 0.4},
                                rounds=1, iterations=1)
    announce("\n" + result.rendered)
    rows = result.data
    # The serialized write-path tax grows with the stack.
    taxes = [row["serialized_ns_per_txn"] for row in rows.values()]
    assert taxes[0] < taxes[2]
    # Janus recovers part of the tax at every composition.
    assert all(row["speedup"] > 1.0 for row in rows.values())


def test_ablation_deferred_coalescing(benchmark, announce):
    """TATP's manual plan uses the deferred (_BUF) interface; verify
    the coalescing actually merges same-line requests."""
    from repro.core import NvmSystem
    from repro.workloads import make_workload

    def run():
        cfg = default_config(mode="janus")
        system = NvmSystem(cfg)
        workload = make_workload("tatp", system, system.cores[0],
                                 PARAMS, variant="manual")
        system.run_programs([workload.run()])
        return system.janus.request_queue.coalesced

    coalesced = benchmark.pedantic(run, rounds=1, iterations=1)
    announce(f"\nablation: deferred interface coalesced {coalesced} "
             f"same-line requests")
    assert coalesced >= PARAMS.n_transactions
