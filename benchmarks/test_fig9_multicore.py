"""Regenerates Fig. 9: parallelization and Janus speedups over the
serialized baseline on 1/2/4/8 cores, all seven workloads + average.

Shape targets: Janus >> parallelization everywhere; the Janus speedup
declines as cores are added (memory contention dilutes the BMO share,
paper 2.35x at 1 core down to 1.87x at 8)."""

from repro.harness.experiments import fig9_multicore
from repro.harness.report import arithmetic_mean


def test_fig9(run_once):
    result = run_once(fig9_multicore, scale=0.4, core_counts=(1, 2, 4, 8))
    data = result.data
    workloads = list(data)
    avg_janus_1 = arithmetic_mean([data[w][1][1] for w in workloads])
    avg_janus_8 = arithmetic_mean([data[w][8][1] for w in workloads])
    avg_par_1 = arithmetic_mean([data[w][1][0] for w in workloads])
    # Pre-execution beats parallelization-only at every core count.
    assert avg_janus_1 > avg_par_1 > 1.0
    # Benefit declines with core count (trend 1 in section 5.2.1).
    assert avg_janus_8 < avg_janus_1
    # Single-core average in the paper's neighbourhood (2.35x).
    assert 1.5 < avg_janus_1 < 3.5
