"""Regenerates Fig. 14: Janus speedup with 1x/2x/4x/unlimited
pre-execution resources at 8 KB transactions.

Shape target: more units/buffers help the large transactions that
saturate the defaults, with diminishing returns (paper section 5.2.6;
B-Tree is the workload that keeps profiting to unlimited)."""

from repro.harness.experiments import fig14_resources


def test_fig14(run_once):
    result = run_once(fig14_resources, scale=1.0,
                      workloads=["array_swap", "btree"])
    for workload, series in result.data.items():
        # Scaling resources up never hurts much and the best scaled
        # configuration beats the 1x default.
        best_scaled = max(series["2x"], series["4x"],
                          series["unlimited"])
        assert best_scaled >= series["1x"] * 0.98, (workload, series)
    assert result.data["array_swap"]["unlimited"] > \
        result.data["array_swap"]["1x"]
