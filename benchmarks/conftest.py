"""Shared benchmark configuration.

Every benchmark regenerates one table/figure of the paper at a reduced
scale and prints the rows/series the paper reports.  ``pedantic`` mode
with a single round keeps total bench time reasonable — the quantity
being measured is the simulator's wall-clock cost of regenerating the
experiment, and the printed table is the scientific output.
"""

import pytest


@pytest.fixture
def run_once(benchmark, capsys):
    """Run an experiment exactly once under pytest-benchmark.

    The regenerated table/figure is printed *outside* pytest's output
    capture — it is the scientific result of the bench, not debug
    noise.
    """

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(result.rendered)
        return result

    return _run


@pytest.fixture
def announce(capsys):
    """Print a line past pytest's capture (for ablation verdicts)."""

    def _announce(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _announce
