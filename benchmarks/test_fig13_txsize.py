"""Regenerates Fig. 13: speedup vs. transaction update size
(64 B – 8 KB) for the five scalable workloads.

Shape targets: pre-execution's benefit grows with transaction size up
to a point and then declines once the pre-execution units/buffers
saturate; parallelization's benefit is resource-insensitive and keeps
a mild upward trend (paper section 5.2.5)."""

from repro.harness.experiments import fig13_transaction_size


def test_fig13(run_once):
    result = run_once(fig13_transaction_size, scale=0.8,
                      sizes=(64, 256, 1024, 8192),
                      workloads=["array_swap", "hash_table"])
    for workload, series in result.data.items():
        sizes = sorted(series)
        janus = [series[s][1] for s in sizes]
        par = [series[s][0] for s in sizes]
        # Pre-execution speedup declines at the largest size compared
        # to its peak (buffers full).
        assert max(janus) > janus[-1], (workload, janus)
        # Pre-execution dominates parallelization at the peak.
        assert max(janus) > max(par)
