"""Regenerates Fig. 12: Janus speedup across deduplication ratios
(0.25 / 0.5 / 0.75) and fingerprint algorithms (MD5 vs. CRC-32).

Shape target: with MD5 the speedup is almost flat across ratios (the
321 ns fingerprint dominates the BMO chain either way); CRC-32 shifts
the balance but the variation stays small (paper section 5.2.4)."""

from repro.harness.experiments import fig12_dedup


def test_fig12(run_once):
    result = run_once(fig12_dedup, scale=0.4,
                      workloads=["array_swap", "hash_table", "tatp"])
    for workload, series in result.data.items():
        md5 = [series[("md5", r)] for r in (0.25, 0.5, 0.75)]
        # Near-flat under MD5: spread well under 25%.
        assert max(md5) - min(md5) < 0.25 * max(md5), (workload, md5)
        for ratio in (0.25, 0.5, 0.75):
            assert series[("crc32", ratio)] > 1.0
