"""Regenerates Fig. 6: sub-operation decomposition with external-
dependency classification."""

from repro.harness.experiments import fig6_dependency_graph


def test_fig6(run_once):
    result = run_once(fig6_dependency_graph)
    labels = result.data["classification"]
    assert labels["E1"] == "addr" and labels["D1"] == "data"
