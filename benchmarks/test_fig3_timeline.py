"""Regenerates Fig. 3: serialized vs. parallelized vs. pre-executed
BMO latency on one write's critical path."""

from repro.harness.experiments import fig3_timeline


def test_fig3(run_once):
    result = run_once(fig3_timeline)
    assert result.data["parallel_ns"] < result.data["serialized_ns"]
    assert result.data["pre_executed_ns"] == 0.0
