"""Regenerates Fig. 10: slowdown of serialized and Janus over the
non-blocking-writeback ideal, plus the fraction of writes whose BMOs
were completely pre-executed (paper: 4.93x / 2.09x / 45.13%)."""

from repro.harness.experiments import fig10_ideal_comparison
from repro.harness.report import arithmetic_mean


def test_fig10(run_once):
    result = run_once(fig10_ideal_comparison, scale=0.5)
    data = result.data
    slow_ser = arithmetic_mean([d["serialized"] for d in data.values()])
    slow_jan = arithmetic_mean([d["janus"] for d in data.values()])
    full = arithmetic_mean(
        [d["fully_pre_executed"] for d in data.values()])
    # Serialized is several times slower than ideal; Janus recovers a
    # large part but not all of it.
    assert slow_ser > 3.0
    assert 1.0 < slow_jan < slow_ser
    # Roughly half of the writes' BMOs fully pre-execute (paper 45%).
    assert 0.25 < full < 0.75
