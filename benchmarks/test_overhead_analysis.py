"""Regenerates section 5.2.7: hardware storage/area overhead."""

from repro.harness.experiments import overhead_analysis


def test_overhead(run_once):
    result = run_once(overhead_analysis)
    # The IRB alone is ~9.25 KB and the total is ~0.5% of the 2MB LLC
    # (the paper quotes 9.25KB / 0.51%).
    assert 9.0 < result.data["irb_kib"] < 9.5
    assert 0.004 < result.data["fraction_of_llc"] < 0.006
    assert result.data["bmo_gates"] == 300_000
