#!/usr/bin/env python3
"""Docs link/reference checker (the CI ``docs-check`` step).

Verifies, for ``README.md``, ``EXPERIMENTS.md``, ``DESIGN.md`` and
every ``docs/*.md``:

1. **Relative links** — every ``[text](target)`` whose target is not
   an absolute URL or a pure ``#anchor`` must resolve to a file or
   directory, relative to the file containing the link;
2. **Code paths** — every back-ticked ``src/repro/...`` path must
   exist in the repository (tokens carrying globs/ellipses are
   placeholders and are skipped);
3. **CLI subcommands** — every ``repro <subcommand>`` named inside
   back-ticked code (inline or fenced) must be a real subcommand of
   the argparse tree in :mod:`repro.cli`.

Pure standard library; exits 0 when clean, 1 with one line per
problem otherwise.  The check functions take explicit paths so the
test suite can point them at fixture trees (including deliberately
broken ones — the negative test in ``tests/test_check_docs.py``).
"""

import re
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Set

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the closing paren.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Back-ticked inline code spans.
_INLINE_CODE_RE = re.compile(r"`([^`\n]+)`")
#: ``src/repro/...`` path tokens inside a code span.  Placeholder
#: characters (``* < >``) are part of the token so that e.g.
#: ``src/repro/<pkg>/...`` is recognised as a placeholder rather
#: than truncated to a real-looking ``src/repro`` prefix.
_SRC_PATH_RE = re.compile(r"(src/repro/[\w./\-*<>]*)")
#: ``repro <sub>`` (optionally ``python -m repro <sub>``) inside code.
_SUBCOMMAND_RE = re.compile(r"(?:^|[^.\w])repro\s+([a-z][a-z0-9_-]*)")
#: Fenced code blocks (``` ... ```).
_FENCE_RE = re.compile(r"```[^\n]*\n(.*?)```", re.DOTALL)


def default_doc_files(root: Path = REPO_ROOT) -> List[Path]:
    docs = [root / "README.md", root / "EXPERIMENTS.md",
            root / "DESIGN.md"]
    docs.extend(sorted((root / "docs").glob("*.md")))
    return [d for d in docs if d.exists()]


def cli_subcommands() -> Set[str]:
    """The real subcommand set, read from the argparse tree."""
    import argparse

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro import cli

    parser = cli._build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return set(action.choices)
    raise RuntimeError("repro.cli parser has no subcommands")


def _code_spans(text: str) -> Iterable[str]:
    """Every back-ticked region: inline spans and fenced blocks."""
    without_fences = _FENCE_RE.sub("", text)
    for match in _INLINE_CODE_RE.finditer(without_fences):
        yield match.group(1)
    for match in _FENCE_RE.finditer(text):
        yield match.group(1)


def _is_placeholder(token: str) -> bool:
    return any(ch in token for ch in ("*", "<", ">", "…")) \
        or "..." in token


def check_links(doc: Path, root: Path) -> List[str]:
    """Relative markdown links must resolve from the doc's directory."""
    problems = []
    text = doc.read_text()
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (doc.parent / path_part) if not \
            path_part.startswith("/") else root / path_part.lstrip("/")
        if not resolved.exists():
            problems.append(
                f"{doc.relative_to(root)}: broken link "
                f"({target}) -> {path_part}")
    return problems


def check_src_paths(doc: Path, root: Path) -> List[str]:
    """Back-ticked ``src/repro/...`` paths must exist on disk."""
    problems = []
    for span in _code_spans(doc.read_text()):
        for match in _SRC_PATH_RE.finditer(span):
            token = match.group(1).rstrip("/.")
            if _is_placeholder(match.group(1)):
                continue
            if not (root / token).exists():
                problems.append(
                    f"{doc.relative_to(root)}: code path "
                    f"`{token}` does not exist")
    return problems


def check_subcommands(doc: Path, root: Path,
                      subcommands: Set[str]) -> List[str]:
    """``repro <sub>`` inside code spans must be real subcommands."""
    problems = []
    for span in _code_spans(doc.read_text()):
        for match in _SUBCOMMAND_RE.finditer(span):
            name = match.group(1)
            if name in subcommands or _is_placeholder(name):
                continue
            problems.append(
                f"{doc.relative_to(root)}: `repro {name}` is not a "
                f"CLI subcommand (has: {', '.join(sorted(subcommands))})")
    return problems


def check_docs(files: Optional[List[Path]] = None,
               root: Path = REPO_ROOT,
               subcommands: Optional[Set[str]] = None) -> List[str]:
    """All checks over ``files``; returns a flat problem list."""
    files = files if files is not None else default_doc_files(root)
    subcommands = subcommands if subcommands is not None \
        else cli_subcommands()
    problems: List[str] = []
    for doc in files:
        problems.extend(check_links(doc, root))
        problems.extend(check_src_paths(doc, root))
        problems.extend(check_subcommands(doc, root, subcommands))
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    root = Path(argv[0]).resolve() if argv else REPO_ROOT
    files = default_doc_files(root)
    problems = check_docs(files, root=root)
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"check_docs: {len(files)} files, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
