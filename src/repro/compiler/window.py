"""Static pre-execution-window estimation (paper §6).

"A static tool can estimate the number of instructions in this window
to determine whether the BMO latency can be perfectly overlapped."

``estimate_windows`` walks a transaction template with an
instrumentation plan and, for every directive, estimates the time
between its hook and the writeback it serves — using nominal costs per
IR statement — then compares that window against the latency of the
sub-operations the directive pre-executes.  Directives whose window
cannot cover their work are flagged, matching the runtime
``short-window`` findings of :mod:`repro.janus.misuse`.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bmo.base import ExternalInput
from repro.compiler.instrument import InstrumentationPlan
from repro.compiler.ir import (
    AddrGen,
    Cond,
    Fence,
    Hook,
    LogBackup,
    Loop,
    Store,
    Template,
    Value,
    Writeback,
)

#: Nominal per-statement costs (ns) used by the static estimate.
#: These are deliberately round numbers — the tool predicts *whether*
#: a window suffices, not exact latency.
STATEMENT_COST_NS: Dict[type, float] = {
    AddrGen: 20.0,      # address computation / table walk step
    Value: 5.0,
    Store: 5.0,
    LogBackup: 150.0,   # read old value + build + persist log record
    Writeback: 15.0,    # cache -> memory controller
    Fence: 400.0,       # wait for outstanding persists (BMO-laden)
    Hook: 0.0,
    Loop: 0.0,          # bodies counted per the estimator's unrolling
    Cond: 0.0,
}

#: Assumed loop trip count when estimating across a loop body.
NOMINAL_TRIP_COUNT = 4


@dataclass
class WindowEstimate:
    """Verdict for one directive."""

    hook: str
    kind: str
    obj: str
    window_ns: float
    required_ns: float

    @property
    def sufficient(self) -> bool:
        return self.window_ns >= self.required_ns

    def render(self) -> str:
        verdict = "ok" if self.sufficient else "INSUFFICIENT"
        return (f"@{self.hook:<18} PRE_{self.kind.upper():<5} "
                f"{self.obj:<12} window~{self.window_ns:7.0f} ns "
                f"needs~{self.required_ns:6.0f} ns  [{verdict}]")


def _linear_costs(body, out: List) -> None:
    """Flatten the template into (stmt, cost) preserving order; loop
    bodies are unrolled ``NOMINAL_TRIP_COUNT`` times for costing."""
    for stmt in body:
        if isinstance(stmt, Loop):
            for _ in range(NOMINAL_TRIP_COUNT):
                _linear_costs(stmt.body, out)
        elif isinstance(stmt, Cond):
            # Cost the longer branch (conservative for the window of
            # statements *after* the cond; hooks inside branches are
            # positioned at their first unrolling).
            then_out: List = []
            else_out: List = []
            _linear_costs(stmt.then, then_out)
            _linear_costs(stmt.otherwise, else_out)
            out.extend(then_out if
                       sum(c for _s, c in then_out)
                       >= sum(c for _s, c in else_out) else else_out)
        else:
            out.append((stmt, STATEMENT_COST_NS.get(type(stmt), 0.0)))


def _required_latency(pipeline_graph, kind: str) -> float:
    """Critical-path latency of the sub-ops a directive pre-executes."""
    if kind in ("addr", "addr_buf"):
        inputs = frozenset({ExternalInput.ADDR})
    elif kind in ("data", "data_buf"):
        inputs = frozenset({ExternalInput.DATA})
    else:
        inputs = frozenset({ExternalInput.ADDR, ExternalInput.DATA})
    names = pipeline_graph.runnable_with(inputs)
    if not names:
        return 0.0
    schedule = pipeline_graph.parallel_schedule(units=1 << 10)
    return max(schedule.end_of(name) for name in names)


def estimate_windows(template: Template, plan: InstrumentationPlan,
                     pipeline_graph) -> List[WindowEstimate]:
    """Estimate every directive's window against its required work."""
    template.validate()
    flat: List = []
    _linear_costs(template.body, flat)

    hook_positions: Dict[str, int] = {}
    for index, (stmt, _cost) in enumerate(flat):
        if isinstance(stmt, Hook) and stmt.name not in hook_positions:
            hook_positions[stmt.name] = index
    writeback_positions: Dict[str, List[int]] = {}
    for index, (stmt, _cost) in enumerate(flat):
        if isinstance(stmt, Writeback):
            writeback_positions.setdefault(stmt.obj, []).append(index)

    estimates: List[WindowEstimate] = []
    for hook, directives in plan.directives.items():
        if hook not in hook_positions:
            continue
        start = hook_positions[hook]
        for directive in directives:
            if directive.kind == "start":
                continue
            positions = writeback_positions.get(directive.obj)
            if not positions:
                continue
            target = next((p for p in positions if p > start),
                          positions[-1])
            window = sum(cost for _stmt, cost in flat[start:target])
            required = _required_latency(pipeline_graph,
                                         directive.kind)
            estimates.append(WindowEstimate(
                hook=hook, kind=directive.kind, obj=directive.obj,
                window_ns=window, required_ns=required))
    return estimates


def render_report(template: Template, plan: InstrumentationPlan,
                  pipeline_graph) -> str:
    """Human-readable window report for one instrumented template."""
    estimates = estimate_windows(template, plan, pipeline_graph)
    lines = [f"pre-execution window estimate for {template.name!r} "
             f"({plan.template}):"]
    if not estimates:
        lines.append("  (no directives to estimate)")
    for estimate in estimates:
        lines.append("  " + estimate.render())
    short = [e for e in estimates if not e.sufficient]
    lines.append(f"  {len(estimates) - len(short)}/{len(estimates)} "
                 "windows sufficient")
    return "\n".join(lines)
