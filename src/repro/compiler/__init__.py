"""The automated instrumentation pass (paper §4.5).

Workloads describe each transaction kind as a static *template* in a
small IR (:mod:`repro.compiler.ir`): statements over symbolic
variables, with explicit address-generation steps, stores, blocking
writebacks, loops, and conditionals, plus named *hook points* where
instrumentation may be injected.

The pass (:mod:`repro.compiler.instrument`) performs the paper's three
steps on a template:

1. locate blocking writebacks (a ``Writeback`` whose fence follows);
2. dependence analysis — for the address, walk the chain of
   address-generation statements; for the data, find the defining
   store/value;
3. inject ``PRE_ADDR`` / ``PRE_DATA`` directives as early as the
   dependences allow — hoisting hoistable address generation, staying
   inside the same conditional branch, and *giving up* on writebacks
   inside loops or behind memory-dependent address generation
   (§4.5.2's limitations, which is what makes Queue and RB-Tree gain
   little from the automated pass in Fig. 11).

The output is an :class:`InstrumentationPlan` mapping hook points to
directives; the workload programs consult the plan at runtime.  The
*manual* plans are hand-written by the workload authors and may use
knowledge the static pass cannot (per-iteration pre-execution inside
loops, runtime addresses).
"""

from repro.compiler.instrument import (
    AutoInstrumenter,
    Directive,
    InstrumentationPlan,
)
from repro.compiler.ir import (
    AddrGen,
    Cond,
    Fence,
    Hook,
    Loop,
    Stmt,
    Store,
    Template,
    Writeback,
)

__all__ = [
    "AddrGen",
    "AutoInstrumenter",
    "Cond",
    "Directive",
    "Fence",
    "Hook",
    "InstrumentationPlan",
    "Loop",
    "Stmt",
    "Store",
    "Template",
    "Writeback",
]
