"""Transaction-template IR.

A :class:`Template` is the static shape of one transaction kind — the
object the "compiler" analyses.  Statements reference symbolic
variables by name:

* :class:`AddrGen` — computes an address variable.  ``inputs`` names
  the variables it reads; ``entry_available`` inputs are function
  arguments (known at transaction entry).  ``memory_dependent`` marks
  pointer chasing / table walks whose result only exists at runtime —
  the paper's pass cannot hoist those.
* :class:`Value` — a data variable and where it becomes available.
* :class:`Store` — writes ``value_var`` to ``addr_var``.
* :class:`Writeback` / :class:`Fence` — the persist primitives; a
  writeback whose fence follows is *blocking*.
* :class:`Loop` — a statically-unbounded loop body (iteration count
  unknown at compile time).
* :class:`Cond` — two branches under a runtime predicate.
* :class:`Hook` — a named program point where the runtime will consult
  the instrumentation plan.

The runtime side (workloads) executes real Python against the
simulator; the template exists so the automated pass has something
faithful to analyse, with exactly the information a compiler IR would
carry.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import InstrumentationError


class Stmt:
    """Base class for template statements."""


@dataclass
class AddrGen(Stmt):
    """Compute address variable ``name`` from ``inputs``."""

    name: str
    inputs: Tuple[str, ...] = ()
    #: True when the computation walks memory (pointer chase, probe):
    #: its result cannot be hoisted above the walk.
    memory_dependent: bool = False


@dataclass
class Value(Stmt):
    """Data variable ``name`` becomes available here.

    ``from_args`` marks function arguments (available at entry).
    """

    name: str
    from_args: bool = False


@dataclass
class Store(Stmt):
    """Store ``value_var`` to the address in ``addr_var``."""

    addr_var: str
    value_var: str
    #: Object label this store targets (links stores to writebacks).
    obj: str = ""


@dataclass
class LogBackup(Stmt):
    """Undo-log backup of the object at ``addr_var``."""

    addr_var: str
    obj: str = ""


@dataclass
class Writeback(Stmt):
    """clwb of the object at ``addr_var``."""

    addr_var: str
    obj: str = ""


@dataclass
class Fence(Stmt):
    """sfence — writebacks issued before it are blocking."""


@dataclass
class Hook(Stmt):
    """Named injection point for instrumentation directives."""

    name: str


@dataclass
class Loop(Stmt):
    """A loop whose trip count is unknown statically."""

    body: List[Stmt] = field(default_factory=list)


@dataclass
class Cond(Stmt):
    """Two-way branch on a runtime predicate."""

    then: List[Stmt] = field(default_factory=list)
    otherwise: List[Stmt] = field(default_factory=list)


@dataclass
class Template:
    """One transaction kind: argument list + statement body."""

    name: str
    args: Tuple[str, ...]
    body: List[Stmt]

    def validate(self) -> "Template":
        hooks = [h.name for h in iter_stmts(self.body)
                 if isinstance(h, Hook)]
        if len(hooks) != len(set(hooks)):
            raise InstrumentationError(
                f"template {self.name!r}: duplicate hook names")
        defined = set(self.args)
        for stmt in iter_stmts(self.body):
            if isinstance(stmt, AddrGen):
                for dep in stmt.inputs:
                    if dep not in defined:
                        raise InstrumentationError(
                            f"template {self.name!r}: {stmt.name!r} "
                            f"reads undefined {dep!r}")
                defined.add(stmt.name)
            elif isinstance(stmt, Value):
                defined.add(stmt.name)
            elif isinstance(stmt, (Store, LogBackup, Writeback)):
                if stmt.addr_var not in defined:
                    raise InstrumentationError(
                        f"template {self.name!r}: use of undefined "
                        f"address {stmt.addr_var!r}")
        return self


def iter_stmts(body: Sequence[Stmt]):
    """Depth-first traversal of a statement list."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, Loop):
            yield from iter_stmts(stmt.body)
        elif isinstance(stmt, Cond):
            yield from iter_stmts(stmt.then)
            yield from iter_stmts(stmt.otherwise)


def blocking_writebacks(body: Sequence[Stmt]):
    """Step 1 of the pass: writebacks followed by a fence.

    Returns ``[(writeback, context)]`` where context describes the
    innermost enclosing construct: ``"top"``, ``"loop"``, or
    ``"cond"``.
    """
    found = []

    def walk(stmts: Sequence[Stmt], context: str):
        pending: List[Writeback] = []
        for stmt in stmts:
            if isinstance(stmt, Writeback):
                pending.append(stmt)
            elif isinstance(stmt, Fence):
                for wb in pending:
                    found.append((wb, context))
                pending = []
            elif isinstance(stmt, Loop):
                walk(stmt.body, "loop")
            elif isinstance(stmt, Cond):
                walk(stmt.then, "cond")
                walk(stmt.otherwise, "cond")
        # Writebacks with no following fence in this scope are not
        # blocking here (the fence may be outside; conservative skip
        # unless at top level where the caller fences eventually).

    walk(body, "top")
    return found
