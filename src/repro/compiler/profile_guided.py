"""Profile-guided instrumentation (paper §6, future work #1).

The static pass is limited by missing runtime information: loop trip
counts, pointer targets, allocator results (§4.5.2).  The paper's
future-work section proposes *dynamic analysis* to recover those
opportunities.  This module implements it:

1. run the workload once with a :class:`RecordingPlan` — a plan that
   issues nothing but records, for every hook firing, which objects
   had a usable address and/or full-line data at that moment;
2. derive an :class:`InstrumentationPlan` from the profile: each
   (hook, object) pair that consistently carried usable inputs gets
   the strongest directive the profile supports (``both`` > ``addr`` /
   ``data``), placed at the *earliest* hook where the inputs were
   available.

Because hooks inside loops fire per iteration, the derived plan covers
loop bodies and allocator-produced addresses — exactly the territory
the static pass must cede, and in practice it converges on the
hand-written manual plans (asserted by tests).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.compiler.instrument import Directive, InstrumentationPlan


@dataclass
class _Observation:
    """What one (hook, object) pair offered across a profiling run."""

    firings: int = 0
    with_addr: int = 0
    with_data: int = 0
    with_both: int = 0


class RecordingPlan(InstrumentationPlan):
    """A plan that records hook environments instead of issuing.

    Drop-in replacement for a real plan during a profiling run: it
    reports no directives (``at`` returns []), and the workload's
    ``fire_hook`` helper feeds it through :meth:`observe`.
    """

    def __init__(self, template: str = "profile"):
        super().__init__(template=template)
        self.observations: Dict[Tuple[str, str], _Observation] = {}
        #: Order in which hooks were first seen (per transaction the
        #: pattern repeats; first-seen order approximates earliness).
        self.hook_order: List[str] = []

    def at(self, hook: str) -> List[Directive]:
        return []

    def observe(self, hook: str, env: Dict[str, Tuple]) -> None:
        if hook not in self.hook_order:
            self.hook_order.append(hook)
        for obj, (addr, data, _size) in env.items():
            key = (hook, obj)
            record = self.observations.setdefault(key, _Observation())
            record.firings += 1
            has_addr = addr is not None
            has_data = data is not None and len(data) % 64 == 0 \
                and len(data) > 0
            if has_addr:
                record.with_addr += 1
            if has_data:
                record.with_data += 1
            if has_addr and has_data:
                record.with_both += 1


class ProfileGuidedInstrumenter:
    """Derives a plan from a profiling run."""

    def __init__(self, min_availability: float = 0.9):
        #: Fraction of firings that must have carried the inputs for a
        #: directive to be emitted (guards against conditional paths
        #: where the object is usually unusable).
        self.min_availability = min_availability

    def profile(self, system, workload_factory) -> RecordingPlan:
        """Run one profiling pass; returns the filled recording plan.

        ``workload_factory(plan)`` must build a fresh workload bound
        to ``plan`` (see :func:`profile_workload` for the common
        case).
        """
        plan = RecordingPlan()
        workload = workload_factory(plan)
        system.run_programs([workload.run()])
        return plan

    def derive(self, recording: RecordingPlan,
               template_name: str = "profile-guided"
               ) -> InstrumentationPlan:
        """Build the instrumentation plan from a profile."""
        plan = InstrumentationPlan(template=template_name)
        # Earliest hook first, so each object lands where its inputs
        # first became available.
        claimed: Dict[str, Set[str]] = {}
        for hook in recording.hook_order:
            for (obs_hook, obj), record in \
                    recording.observations.items():
                if obs_hook != hook:
                    continue
                if obj in claimed.get("__both__", set()):
                    continue
                threshold = self.min_availability * record.firings
                if record.with_both >= threshold:
                    plan.add(hook, Directive("both", obj))
                    claimed.setdefault("__both__", set()).add(obj)
                elif record.with_addr >= threshold and \
                        obj not in claimed.get("__addr__", set()):
                    plan.add(hook, Directive("addr", obj))
                    claimed.setdefault("__addr__", set()).add(obj)
                elif record.with_data >= threshold and \
                        obj not in claimed.get("__data__", set()):
                    plan.add(hook, Directive("data", obj))
                    claimed.setdefault("__data__", set()).add(obj)
        return plan


def build_profile_guided_plan(workload_name: str,
                              params=None,
                              seed: int = 42) -> InstrumentationPlan:
    """Convenience: profile ``workload_name`` on a scratch system and
    return the derived plan."""
    from repro.common.config import default_config
    from repro.core import NvmSystem
    from repro.workloads import WorkloadParams
    from repro.workloads.registry import WORKLOADS

    params = params or WorkloadParams(n_items=16, value_size=64,
                                      n_transactions=6)
    cls = WORKLOADS[workload_name]
    # Profile on a cheap design point: the plan issues nothing, so the
    # mode does not matter; parallel avoids Janus bookkeeping.
    system = NvmSystem(default_config(mode="parallel", seed=seed))
    instrumenter = ProfileGuidedInstrumenter()

    def factory(plan):
        workload = cls(system, system.cores[0], params, plan=plan)
        workload.setup()
        return workload

    recording = instrumenter.profile(system, factory)
    return instrumenter.derive(recording,
                               template_name=f"{workload_name}-pgo")
