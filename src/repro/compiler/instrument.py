"""Dependence analysis and directive injection (paper §4.5.1).

``AutoInstrumenter.instrument(template)`` returns an
:class:`InstrumentationPlan`: for every blocking writeback the pass
could handle, the plan holds ``PRE_ADDR`` / ``PRE_DATA`` directives
attached to the earliest legal hook point.  Writebacks the pass must
give up on (inside loops, or with memory-dependent address generation
that leaves no early window) are recorded in ``plan.skipped`` with the
reason — these are the §4.5.2 limitations that cost the automated
pass its performance on Queue and RB-Tree.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import InstrumentationError
from repro.compiler.ir import (
    AddrGen,
    Cond,
    Fence,
    Hook,
    LogBackup,
    Loop,
    Stmt,
    Store,
    Template,
    Value,
    Writeback,
)


@dataclass(frozen=True)
class Directive:
    """One injected pre-execution call."""

    kind: str      # "addr" | "data" | "both" | "both_val" | *_buf | "start"
    obj: str       # object label the workload resolves at runtime
    hoisted: bool = False
    #: Directives sharing a group share one pre_obj — required for the
    #: deferred interface, where buffered requests coalesce and are
    #: released under a single PRE_ID.
    group: Optional[str] = None


@dataclass
class InstrumentationPlan:
    """hook name -> directives to issue when execution passes it."""

    template: str
    directives: Dict[str, List[Directive]] = field(default_factory=dict)
    skipped: List[Tuple[str, str]] = field(default_factory=list)

    def at(self, hook: str) -> List[Directive]:
        return self.directives.get(hook, [])

    def add(self, hook: str, directive: Directive) -> None:
        self.directives.setdefault(hook, []).append(directive)

    def total_directives(self) -> int:
        return sum(len(v) for v in self.directives.values())

    @classmethod
    def empty(cls, template: str = "baseline") -> "InstrumentationPlan":
        """The uninstrumented program (the serialized baseline runs
        this)."""
        return cls(template=template)

    def describe(self) -> str:
        lines = [f"plan for {self.template}:"]
        for hook, directives in sorted(self.directives.items()):
            for d in directives:
                hoist = " (hoisted)" if d.hoisted else ""
                lines.append(f"  @{hook}: PRE_{d.kind.upper()} "
                             f"{d.obj}{hoist}")
        for obj, reason in self.skipped:
            lines.append(f"  skipped {obj}: {reason}")
        return "\n".join(lines)


class _Flat:
    """Linearised statement with its structural path."""

    __slots__ = ("stmt", "order", "path")

    def __init__(self, stmt: Stmt, order: int, path: Tuple):
        self.stmt = stmt
        self.order = order
        self.path = path


def _flatten(body, path=()):
    out: List[_Flat] = []

    def walk(stmts, current_path):
        for stmt in stmts:
            out.append(_Flat(stmt, len(out), current_path))
            if isinstance(stmt, Loop):
                walk(stmt.body, current_path + ("loop",))
            elif isinstance(stmt, Cond):
                walk(stmt.then, current_path + ("then",))
                walk(stmt.otherwise, current_path + ("else",))

    walk(body, path)
    return out


class AutoInstrumenter:
    """The static pass."""

    def instrument(self, template: Template) -> InstrumentationPlan:
        template.validate()
        flat = _flatten(template.body)
        plan = InstrumentationPlan(template=template.name)

        addr_defs = {f.stmt.name: f for f in flat
                     if isinstance(f.stmt, AddrGen)}
        value_defs = {f.stmt.name: f for f in flat
                      if isinstance(f.stmt, Value)}
        hooks = [f for f in flat if isinstance(f.stmt, Hook)]
        stores = [f for f in flat if isinstance(f.stmt, Store)]

        for wb_flat in self._blocking_writebacks(flat):
            wb: Writeback = wb_flat.stmt
            if "loop" in wb_flat.path:
                # §4.5.2 limitation 2: no runtime information about
                # loop iterations.
                plan.skipped.append((wb.obj, "inside loop"))
                continue
            self._inject_addr(template, plan, wb, wb_flat,
                              addr_defs, hooks)
            self._inject_data(template, plan, wb, wb_flat,
                              stores, value_defs, hooks)
        return plan

    # -- step 1 ------------------------------------------------------------
    @staticmethod
    def _blocking_writebacks(flat: List[_Flat]) -> List[_Flat]:
        found = []
        for f in flat:
            if not isinstance(f.stmt, Writeback):
                continue
            # Blocking iff a fence follows at the same or an outer
            # nesting level before the function ends.
            for later in flat[f.order + 1:]:
                if isinstance(later.stmt, Fence) and \
                        len(later.path) <= len(f.path):
                    found.append(f)
                    break
        return found

    # -- step 2+3 for the address ---------------------------------------------
    def _inject_addr(self, template, plan, wb, wb_flat,
                     addr_defs, hooks) -> None:
        chain_ok, memory_dep, latest_def = self._addr_chain(
            template, wb.addr_var, addr_defs)
        if not chain_ok:
            plan.skipped.append((wb.obj, "address chain unresolvable"))
            return
        if memory_dep:
            # Cannot hoist: earliest point is right after the defining
            # address generation.
            earliest_order = latest_def.order if latest_def else -1
            hoisted = False
        else:
            earliest_order = -1  # hoistable to function entry
            hoisted = latest_def is not None
        hook = self._earliest_hook(hooks, earliest_order, wb_flat)
        if hook is None:
            plan.skipped.append((wb.obj, "no legal hook for PRE_ADDR"))
            return
        plan.add(hook.stmt.name, Directive("addr", wb.obj,
                                           hoisted=hoisted))

    def _addr_chain(self, template, var, addr_defs):
        """Walk the address-generation chain of ``var``.

        Returns ``(resolvable, memory_dependent, latest_def)`` where
        ``latest_def`` is the flattened statement after which the
        address is known.
        """
        if var in template.args:
            return True, False, None
        definition = addr_defs.get(var)
        if definition is None:
            return False, False, None
        memory_dep = definition.stmt.memory_dependent
        latest = definition
        for dep in definition.stmt.inputs:
            ok, dep_memory, dep_latest = self._addr_chain(
                template, dep, addr_defs)
            if not ok:
                return False, False, None
            memory_dep = memory_dep or dep_memory
            if dep_latest is not None and (
                    latest is None or dep_latest.order > latest.order):
                latest = dep_latest
        return True, memory_dep, latest

    # -- step 2+3 for the data ---------------------------------------------------
    def _inject_data(self, template, plan, wb, wb_flat,
                     stores, value_defs, hooks) -> None:
        # The defining store: the last store to this object before the
        # writeback.
        defining = None
        for store_flat in stores:
            if store_flat.stmt.obj == wb.obj and \
                    store_flat.order < wb_flat.order:
                defining = store_flat
        if defining is None:
            plan.skipped.append((wb.obj, "no defining store"))
            return
        value_var = defining.stmt.value_var
        if value_var in template.args:
            earliest_order = -1
        else:
            value_def = value_defs.get(value_var)
            if value_def is None:
                plan.skipped.append(
                    (wb.obj, f"data {value_var!r} unresolvable"))
                return
            if "loop" in value_def.path:
                plan.skipped.append(
                    (wb.obj, "data produced inside loop"))
                return
            earliest_order = value_def.order
        hook = self._earliest_hook(hooks, earliest_order, wb_flat)
        if hook is None:
            plan.skipped.append((wb.obj, "no legal hook for PRE_DATA"))
            return
        plan.add(hook.stmt.name, Directive("data", wb.obj))

    # -- hook selection ------------------------------------------------------------
    @staticmethod
    def _earliest_hook(hooks, earliest_order: int,
                       wb_flat: _Flat) -> Optional[_Flat]:
        """The first hook after ``earliest_order`` in the *same*
        structural context as the writeback — the pass conservatively
        stays inside the writeback's conditional branch so it never
        issues a pre-execution for a write that will not happen
        (§4.5.1, step 3)."""
        for hook in hooks:
            if hook.order <= earliest_order:
                continue
            if hook.order >= wb_flat.order:
                return None
            if hook.path == wb_flat.path:
                return hook
        return None
