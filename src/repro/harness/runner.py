"""Run one (workload, mode, variant, cores) design point."""

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.config import SystemConfig, default_config
from repro.core import NvmSystem
from repro.obs import log as runlog
from repro.obs.tracer import Tracer
from repro.workloads import WorkloadParams, make_workload


@dataclass
class ExperimentResult:
    """Outcome of one simulated run."""

    workload: str
    mode: str
    variant: str
    cores: int
    elapsed_ns: float
    transactions: int
    stats: Dict[str, float] = field(default_factory=dict)
    #: Full metrics snapshot (``MetricsRegistry.snapshot``) of the run.
    snapshot: Optional[Dict] = None
    #: Recovered-structure digest (``with_digest=True``): crash the
    #: completed run, recover, and hash every core's logical state.
    #: Topology-blind — identical at any shard width for equivalent
    #: runs (docs/sharding.md), unlike the per-scope metrics above.
    digest: Optional[str] = None

    @property
    def ns_per_transaction(self) -> float:
        return self.elapsed_ns / self.transactions \
            if self.transactions else float("inf")


def run_point(workload: str,
              mode: str = "serialized",
              variant: Optional[str] = None,
              cores: int = 1,
              params: Optional[WorkloadParams] = None,
              config: Optional[SystemConfig] = None,
              tracer: Optional[Tracer] = None,
              profiler=None,
              sampler=None,
              with_digest: bool = False,
              **config_overrides) -> ExperimentResult:
    """Simulate one design point and return its result.

    ``variant`` defaults to ``baseline`` for non-Janus modes and
    ``manual`` for Janus mode (the paper's main configuration).
    Pass an enabled :class:`Tracer` to capture the run's span
    timeline (export with :func:`repro.obs.export_chrome_trace`), a
    :class:`repro.obs.profile.SimProfiler` to attribute dispatch
    cost, and/or a :class:`repro.obs.timeseries.TimeSeriesSampler`
    to record a metric time series (the sampler is bound to the
    system's registry here).  With neither, the simulator runs its
    unmodified fast dispatch loop.
    """
    if variant is None:
        variant = "manual" if mode == "janus" else "baseline"
    cfg = config if config is not None else default_config()
    cfg = cfg.replace(mode=mode, cores=cores, **config_overrides)
    cfg.validate()
    system = NvmSystem(cfg, tracer=tracer)
    if profiler is not None:
        system.sim.profile = profiler
    if sampler is not None:
        system.sim.sampler = sampler.bind(system.metrics, tracer=tracer)
    params = params or WorkloadParams()
    workloads = [
        make_workload(workload, system, core, params, variant=variant)
        for core in system.cores
    ]
    runlog.event("harness.runner", "run_point.start",
                 workload=workload, mode=mode, variant=variant,
                 cores=cores)
    elapsed = system.run_programs([w.run() for w in workloads])
    if sampler is not None:
        sampler.finish(elapsed)
    transactions = sum(w.completed_transactions for w in workloads)
    runlog.event("harness.runner", "run_point.done", sim_ns=elapsed,
                 workload=workload, mode=mode, variant=variant,
                 cores=cores, transactions=transactions,
                 events=system.sim.events)

    # Flat view for quick access; every registered scope (mc, janus,
    # irb, bmo, wq, nvm, core*) exports under its dotted path.
    stats: Dict[str, float] = system.metrics.as_flat_dict()
    dedup = system.pipeline.by_name.get("dedup")
    if dedup is not None:
        stats["dedup.observed_ratio"] = dedup.observed_ratio()
    snapshot = system.metrics.snapshot(meta={
        "workload": workload, "mode": mode, "variant": variant,
        "cores": cores, "elapsed_ns": elapsed,
        "transactions": transactions})
    digest = None
    if with_digest:
        # Crash the completed (quiesced, drained) run, recover from
        # the persisted image, and hash every core's recovered
        # logical structure.  Runs after the measurement and the
        # metrics snapshot, so it never perturbs either.
        import hashlib

        from repro.consistency.recovery import recover
        crash_snapshot = system.crash()
        regions = [(w.log.base, w.log.capacity) for w in workloads]
        state = recover(crash_snapshot, regions, verify_macs=True)
        hasher = hashlib.sha256()
        for instance in workloads:
            hasher.update(instance.logical_digest(state.read)
                          .encode("ascii"))
        digest = hasher.hexdigest()
    return ExperimentResult(
        workload=workload, mode=mode, variant=variant, cores=cores,
        elapsed_ns=elapsed, transactions=transactions, stats=stats,
        snapshot=snapshot, digest=digest)


def speedup_over(baseline: ExperimentResult,
                 candidate: ExperimentResult) -> float:
    """Speedup of ``candidate`` relative to ``baseline`` (same work)."""
    if candidate.elapsed_ns <= 0:
        return float("inf")
    return baseline.elapsed_ns / candidate.elapsed_ns


def fully_pre_executed_fraction(result: ExperimentResult) -> float:
    """Fraction of writes whose BMOs were completely pre-executed
    (the paper reports 45.13% on average, §5.2.2)."""
    full = result.stats.get("janus.fully_pre_executed", 0)
    partial = result.stats.get("janus.partially_pre_executed", 0)
    total = full + partial
    return full / total if total else 0.0
