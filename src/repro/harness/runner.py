"""Run one (workload, mode, variant, cores) design point."""

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.config import SystemConfig, default_config
from repro.core import NvmSystem
from repro.workloads import WorkloadParams, make_workload


@dataclass
class ExperimentResult:
    """Outcome of one simulated run."""

    workload: str
    mode: str
    variant: str
    cores: int
    elapsed_ns: float
    transactions: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ns_per_transaction(self) -> float:
        return self.elapsed_ns / self.transactions \
            if self.transactions else float("inf")


def run_point(workload: str,
              mode: str = "serialized",
              variant: Optional[str] = None,
              cores: int = 1,
              params: Optional[WorkloadParams] = None,
              config: Optional[SystemConfig] = None,
              **config_overrides) -> ExperimentResult:
    """Simulate one design point and return its result.

    ``variant`` defaults to ``baseline`` for non-Janus modes and
    ``manual`` for Janus mode (the paper's main configuration).
    """
    if variant is None:
        variant = "manual" if mode == "janus" else "baseline"
    cfg = config if config is not None else default_config()
    cfg = cfg.replace(mode=mode, cores=cores, **config_overrides)
    cfg.validate()
    system = NvmSystem(cfg)
    params = params or WorkloadParams()
    workloads = [
        make_workload(workload, system, core, params, variant=variant)
        for core in system.cores
    ]
    elapsed = system.run_programs([w.run() for w in workloads])
    transactions = sum(w.completed_transactions for w in workloads)

    stats: Dict[str, float] = {}
    stats.update({f"mc.{k}": v for k, v
                  in system.controller.stats.as_dict().items()})
    if system.janus is not None:
        stats.update({f"janus.{k}": v for k, v
                      in system.janus.stats.as_dict().items()})
        stats.update({f"irb.{k}": v for k, v
                      in system.janus.irb.stats.as_dict().items()})
    dedup = system.pipeline.by_name.get("dedup")
    if dedup is not None:
        stats["dedup.observed_ratio"] = dedup.observed_ratio()
    return ExperimentResult(
        workload=workload, mode=mode, variant=variant, cores=cores,
        elapsed_ns=elapsed, transactions=transactions, stats=stats)


def speedup_over(baseline: ExperimentResult,
                 candidate: ExperimentResult) -> float:
    """Speedup of ``candidate`` relative to ``baseline`` (same work)."""
    if candidate.elapsed_ns <= 0:
        return float("inf")
    return baseline.elapsed_ns / candidate.elapsed_ns


def fully_pre_executed_fraction(result: ExperimentResult) -> float:
    """Fraction of writes whose BMOs were completely pre-executed
    (the paper reports 45.13% on average, §5.2.2)."""
    full = result.stats.get("janus.fully_pre_executed", 0)
    partial = result.stats.get("janus.partially_pre_executed", 0)
    total = full + partial
    return full / total if total else 0.0
