"""Multi-cycle soak campaign: run -> crash -> recover -> *resume*.

The crash campaign (:mod:`repro.harness.crash_campaign`) proves one
crash/recovery round trip lands on a committed boundary.  The soak
campaign proves the system survives a *lifetime* of them: for every
``workload x mode`` cell it drives N cycles of

1. rebuild the system **on the previous cycle's recovered image**
   (heap layout re-carved with :meth:`~repro.mem.heap.NvmHeap.reserve`,
   carried lines re-seeded through the BMO pipeline, Python-side
   cursors rederived via ``on_restore``, rng streams re-forked under a
   cycle tag so the run never replays itself);
2. run a slice of transactions and pull the plug — at a seeded time,
   at a write-queue acceptance (so ``wq_*`` faults provably strike an
   ADR-resident entry), or *mid-recovery* / *mid-scrub* via the
   ``recovery_crash`` / ``scrub_crash`` hooks;
3. recover (MAC-verified, with the retry/backoff media policy and a
   quarantine set shared by recovery, re-recovery and scrub within
   the cycle), re-recovering after a seeded mid-recovery crash and
   asserting the second pass converges (the idempotence oracle runs
   in full on those cycles);
4. scrub, then check the recovered digest against a fault-free *twin*
   that started from the identical carried image.

Media damage **accumulates**: device-write pressure feeds a
:class:`~repro.bmo.wear_leveling.StartGap` region, and each gap move
turns the hottest line into a sticky stuck-at cell (always a single
high-word bit, so ECC keeps it correctable and the lines stay in
service — the quarantine path is exercised by the fault cycles, not
by wear).

Each cell is a sealed, seeded computation, so the campaign shards
cells across worker processes through :mod:`repro.harness.parallel`
and assembles the report in submission order — the JSON document is
byte-identical at any ``--jobs`` and under either scheduler.
"""

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.bmo.wear_leveling import StartGap
from repro.common.errors import (
    IntegrityError,
    RecoveryCrash,
    ReproError,
    UncorrectableMediaError,
)
from repro.common.rng import DeterministicRng
from repro.consistency import recover, scrub
from repro.faults import (
    DegradedModeManager,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.harness.crash_campaign import _build
from repro.harness.parallel import ParallelExecutor, SweepTask
from repro.obs import log as runlog
from repro.validate.oracles import OracleMismatch, check_recovery_idempotent
from repro.workloads import WORKLOADS, WorkloadParams

SCHEMA = "repro-soak-v1"
DEFAULT_DIR = "results"
_CELL_FN = "repro.harness.soak:run_cell"
#: Metadata stores plus ECC — accumulated media damage must be
#: correctable evidence, never silent corruption.
SOAK_BMOS = ("dedup", "encryption", "integrity", "ecc")
#: Per-cycle fault schedule; cycle ``i`` uses ``ROTATION[i % 7]``.
#: ``irb_corrupt`` degrades to ``wq_drop`` outside janus mode.
ROTATION = (
    "clean",
    "media_write_flip",
    "recovery_crash",
    "media_read_transient",
    "wq_tear",
    "irb_corrupt",
    "scrub_crash",
)


@dataclass
class SoakConfig:
    """Everything that determines a soak campaign (and its report)."""

    workloads: Tuple[str, ...] = tuple(WORKLOADS)
    modes: Tuple[str, ...] = ("serialized", "janus")
    #: Lifecycle cycles per workload x mode cell.
    cycles: int = 20
    #: Transactions executed (or attempted) per cycle.
    txns_per_cycle: int = 6
    seed: int = 7
    n_items: int = 8
    value_size: int = 64
    #: Run the full recovery-idempotence oracle on every
    #: ``recovery_crash`` cycle (crash at *every* instrumented step).
    idempotence_oracle: bool = True
    #: Memory-controller shards (docs/sharding.md): a sharded soak
    #: proves a *lifetime* of crashes always recovers onto a
    #: cross-shard consistent cut, even with per-shard flushers at
    #: different depths when the plug is pulled.
    shards: int = 1

    def params(self) -> WorkloadParams:
        # Capacity knobs (undo-log size, tpcc order slots) are sized
        # by n_transactions, and a soak lifetime spans every cycle.
        return WorkloadParams(
            n_items=self.n_items, value_size=self.value_size,
            n_transactions=self.cycles * self.txns_per_cycle)

    def to_dict(self) -> Dict:
        out = {
            "workloads": list(self.workloads),
            "modes": list(self.modes),
            "cycles": self.cycles,
            "txns_per_cycle": self.txns_per_cycle,
            "seed": self.seed,
            "n_items": self.n_items,
            "value_size": self.value_size,
            "idempotence_oracle": self.idempotence_oracle,
        }
        # Serialised only when sharded: unsharded soak reports stay
        # byte-identical to pre-sharding campaigns.
        if self.shards != 1:
            out["shards"] = self.shards
        return out


def quick_config(seed: int = 7) -> SoakConfig:
    """CI-sized soak: two workloads, four cycles (still covering a
    clean, a media, a mid-recovery, and a transient-read cycle)."""
    return SoakConfig(workloads=("array_swap", "queue"), cycles=4,
                      seed=seed)


# -- restore: rebuild a system on a recovered image ---------------------------
def _restore(name: str, mode: str, config: SoakConfig,
             carry: Optional[Dict], cycle: int,
             injector: Optional[FaultInjector] = None):
    """A fresh system, optionally resumed on the carried image.

    ``_build`` + ``setup()`` deterministically reproduce a *prefix* of
    the carried allocations (nothing ever frees); ``reserve`` re-carves
    the transaction-time tail at its exact addresses; ``seed`` replays
    every carried line through the BMO pipeline so metadata (counters,
    MACs, dedup, ECC codes) is consistent with the restored bytes.
    """
    system, workload = _build(name, mode, config.params(), config.seed,
                              injector=injector, bmos=SOAK_BMOS,
                              shards=config.shards)
    if carry is not None:
        live = {a.addr for a in system.heap.live_allocations()}
        for addr, size, label in carry["allocs"]:
            if addr not in live:
                system.heap.reserve(addr, size, label=label)
        for addr in sorted(carry["image"]):
            workload.seed(addr, carry["image"][addr])
        workload.on_restore(system.volatile.read)
    # Never replay a previous cycle's rng positions — and keep the
    # fault-free twin and the faulted run drawing identical streams.
    workload.refork_streams(f"cycle{cycle}")
    return system, workload


def _drive(workload, txns: int):
    """Generator: one cycle's transaction slice (no digest taps)."""
    for _ in range(txns):
        workload._preobjs = {}
        yield from workload.transaction()
        workload.completed_transactions += 1


def _twin_trajectory(name: str, mode: str, config: SoakConfig,
                     carry: Optional[Dict], cycle: int):
    """Fault-free twin from the same carried image: the reference
    digest after every committed transaction, plus the horizon."""
    system, workload = _restore(name, mode, config, carry, cycle)
    digests: Dict[int, str] = {
        0: workload.logical_digest(system.volatile.read)}

    def driver():
        for _ in range(config.txns_per_cycle):
            workload._preobjs = {}
            yield from workload.transaction()
            workload.completed_transactions += 1
            k = system.cores[0].current_txn_id
            digests[k] = workload.logical_digest(system.volatile.read)

    horizon = system.run_programs([driver()])
    return digests, horizon


def _cycle_plan(kind: str, cycle: int, seed: int, after_n: int,
                bit: int) -> FaultPlan:
    """The (validated-at-construction) fault plan for one cycle."""
    if kind == "clean":
        specs: List[FaultSpec] = []
    elif kind == "media_write_flip":
        # One seeded low-word bit: always ECC-correctable, so the
        # damage is healed evidence, never quarantine churn.
        specs = [FaultSpec(kind=kind, after_n=after_n, bits=(bit,))]
    elif kind == "media_read_transient":
        # Two bits in one 64-bit word: the *returned copy* is
        # uncorrectable, the stored line is clean — this is what
        # drives the recovery read path through its retry budget.
        specs = [FaultSpec(kind=kind, after_n=1 + after_n % 3,
                           bits=(5, 21))]
    elif kind == "recovery_crash":
        specs = [FaultSpec(kind=kind, after_n=1 + after_n % 24)]
    elif kind == "scrub_crash":
        specs = [FaultSpec(kind=kind, after_n=1 + after_n % 12)]
    elif kind in ("wq_tear", "wq_drop"):
        specs = [FaultSpec(kind=kind, after_n=1)]
    elif kind == "irb_corrupt":
        specs = [FaultSpec(kind=kind, after_n=after_n, bits=(bit,))]
    else:  # pragma: no cover - rotation guard
        raise ReproError(f"unknown soak fault kind {kind!r}")
    return FaultPlan(seed=seed * 1000 + cycle, specs=specs)


def _wear_victims(carry: Dict, system, footprint: List[int],
                  cycle: int) -> List[Dict]:
    """Feed the cycle's device-write pressure into Start-Gap; each gap
    move wears out the hottest not-yet-stuck line (one high-word
    stuck-at bit — correctable forever, since no line ever collects a
    second one)."""
    wear: StartGap = carry["wear"]
    before = wear.moves
    total_writes = sum(device.writes for device in system.devices)
    for _ in range(total_writes):
        wear.record_write()
    new_victims = []
    counts: Dict[int, int] = {}
    for device in system.devices:
        for line, n in device.write_counts.items():
            counts[line] = counts.get(line, 0) + n
    hottest = sorted((line for line in footprint
                      if line not in carry["stuck"]),
                     key=lambda line: (-counts.get(line, 0), line))
    for k in range(min(wear.moves - before, 2, len(hottest))):
        line = hottest[k]
        bit = 320 + (cycle * 7 + k) % 192
        carry["stuck"][line] = [(bit, 1)]
        new_victims.append({"addr": line, "bit": bit,
                            "gap_moves": wear.moves})
    return new_victims


def _footprint(system, workload) -> List[int]:
    """Carried line addresses: every live allocation except the undo
    log (recovery already resolved it; each cycle starts a fresh one)."""
    log_lo = workload.log.base
    log_hi = workload.log.base + workload.log.capacity
    lines: List[int] = []
    for alloc in system.heap.live_allocations():
        if alloc.addr >= log_lo and alloc.addr < log_hi:
            continue
        for line in range(alloc.addr, alloc.addr + alloc.size, 64):
            lines.append(line)
    return lines


# -- one lifecycle cycle ------------------------------------------------------
def _run_cycle(name: str, mode: str, config: SoakConfig,
               carry: Optional[Dict], cycle: int, rng) -> Dict:
    """One run -> crash -> recover -> scrub -> check -> carry step.

    Returns the cycle record; the new carry rides in ``record["_carry"]``
    (popped by the caller, never serialised).  A rejected cycle keeps
    the previous carry — the persistent image is unchanged, exactly
    like a real machine refusing to mount damaged state.
    """
    kind = ROTATION[cycle % len(ROTATION)]
    if kind == "irb_corrupt" and mode != "janus":
        kind = "wq_drop"
    # Every seeded choice is drawn up front, unconditionally, so a
    # rejected cycle never desynchronises later cycles' draws.
    crash_frac = 0.30 + 0.55 * rng.random()
    after_n = 1 + rng.randrange(16)
    accept_n = 2 + rng.randrange(6)
    bit = rng.randrange(320)
    policy = RetryPolicy()

    runlog.bind(cycle=cycle)
    try:
        digests, horizon = _twin_trajectory(name, mode, config, carry,
                                            cycle)
        plan = _cycle_plan(kind, cycle, config.seed, after_n, bit)
        injector = FaultInjector(plan)
        if carry is not None:
            # Accumulated wear: stuck-at cells re-damage every write.
            injector._stuck.update(
                {addr: list(cells)
                 for addr, cells in carry["stuck"].items()})
        system, workload = _restore(name, mode, config, carry, cycle,
                                    injector=injector)
        record: Dict = {"cycle": cycle, "fault": kind}
        runlog.event("soak", "cycle.start", level="info",
                     workload=name, mode=mode, fault=kind)

        if kind == "clean":
            system.run_programs(
                [_drive(workload, config.txns_per_cycle)])
        elif kind in ("wq_tear", "wq_drop"):
            # Crash the instant the Nth acceptance completes — the
            # only moment an entry provably sits undrained in ADR.
            stop = system.sim.event("soak-accept-crash")
            originals = [q.accept for q in system.write_queues]
            seen = {"accepts": 0}

            def _wrap(original):
                def wrapped(entry):
                    yield from original(entry)
                    seen["accepts"] += 1
                    if seen["accepts"] == accept_n \
                            and not stop.triggered:
                        stop.succeed()
                return wrapped

            for queue, original in zip(system.write_queues, originals):
                queue.accept = _wrap(original)
            system.sim.process(
                _drive(workload, config.txns_per_cycle), name="stream")
            system.sim.run(stop_event=stop)
            for queue, original in zip(system.write_queues, originals):
                queue.accept = original
        else:
            system.sim.process(
                _drive(workload, config.txns_per_cycle), name="stream")
            system.sim.run(until=crash_frac * horizon)
        record["crash_at"] = system.sim.now
        snapshot = system.crash()

        # One quarantine set per cycle, shared by recovery, re-recovery
        # and scrub (a mid-scrub crash must not lose poison records).
        # It does NOT ride in the carry: the restore re-seeds every
        # carried line — a full rewrite — and rewriting a poisoned line
        # clears its poison.  Persistent damage is modelled where it
        # lives: stuck cells re-damage on write, and a line whose data
        # was truly lost simply drops out of the carried image.
        quarantine: Set[int] = set()
        regions = [(workload.log.base, workload.log.capacity)]
        state = None
        record["mid_recovery_crash"] = False
        try:
            try:
                state = recover(snapshot, regions, verify_macs=True,
                                injector=injector, policy=policy,
                                quarantine=quarantine)
            except RecoveryCrash as crashed:
                # The seeded second power failure: recovery must be
                # re-runnable from the (mutated) snapshot + quarantine.
                record["mid_recovery_crash"] = True
                record["crash_step"] = crashed.step
                record["crash_stage"] = crashed.stage
                runlog.event("soak", "recovery.crashed", level="warn",
                             workload=name, mode=mode,
                             step=crashed.step, stage=crashed.stage)
                state = recover(snapshot, regions, verify_macs=True,
                                policy=policy, quarantine=quarantine)
            record["result"] = "recovered"
        except ReproError as error:
            record["result"] = f"rejected:{type(error).__name__}"
            record["error"] = str(error)
            runlog.event("soak", "recovery.rejected", level="error",
                         workload=name, mode=mode,
                         error=type(error).__name__)

        if kind == "recovery_crash" and config.idempotence_oracle \
                and state is not None:
            # The full contract, not just the one seeded point: crash
            # at *every* instrumented step and prove convergence.
            # Gated on a successful main recovery — a snapshot the
            # recovery legitimately rejects rejects identically inside
            # the oracle's reference pass.
            try:
                record["oracle_points"] = check_recovery_idempotent(
                    snapshot, regions, verify_macs=True, policy=policy)
            except OracleMismatch as mismatch:
                record["oracle_failed"] = str(mismatch)

        if state is not None:
            committed = state.committed_txns
            record["committed"] = len(committed)
            record["prefix_ok"] = \
                committed == list(range(1, len(committed) + 1))
            record["rolled_back"] = len(state.rolled_back)
            record["media_corrected"] = len(state.media_corrected)
            record["torn_log_lines"] = len(set(state.torn_log_lines))
            record["read_retries"] = state.read_retries
            record["backoff_ns"] = state.backoff_ns
            record["escalations"] = state.escalations
            try:
                record["digest"] = workload.logical_digest(state.read)
                record["digest_ok"] = \
                    record["digest"] == digests.get(record["committed"])
            except ReproError as error:
                record["result"] = f"rejected:{type(error).__name__}"
                record["error"] = str(error)
                state = None

        # Post-crash scrub, itself crashable on scrub_crash cycles.
        degraded = DegradedModeManager(system, injector=injector,
                                       policy=policy,
                                       quarantine=quarantine)
        try:
            scrub_report = scrub(system, degraded=degraded)
            record["mid_scrub_crash"] = False
        except RecoveryCrash as crashed:
            record["mid_scrub_crash"] = True
            record["scrub_crash_stage"] = crashed.stage
            runlog.event("soak", "scrub.crashed", level="warn",
                         workload=name, mode=mode, step=crashed.step,
                         stage=crashed.stage)
            # Re-scrub without the injector: heals and quarantine
            # records are idempotent, the shared set survived.
            redo = DegradedModeManager(system, policy=policy,
                                       quarantine=quarantine)
            scrub_report = scrub(system, degraded=redo, injector=None)
            degraded = redo
        record["scrub"] = {
            "clean": scrub_report.clean,
            "lines_checked": scrub_report.lines_checked,
            "mac_failures": len(scrub_report.mac_failures),
            "corrected_lines": len(scrub_report.corrected_lines),
            "poisoned_lines": len(scrub_report.poisoned_lines),
        }
        record["injected"] = list(injector.injected)
        faults = system.metrics.scope("faults").as_dict()
        record["degraded_retries"] = int(faults.get("read_retries", 0))
        record["degraded_backoff_ns"] = \
            int(faults.get("retry_backoff_ns", 0))

        evidence = {
            "rejected": record["result"].startswith("rejected:"),
            "media_corrected": record.get("media_corrected", 0) > 0,
            "torn_log_lines": record.get("torn_log_lines", 0) > 0,
            "read_retries": record.get("read_retries", 0) > 0
            or record["degraded_retries"] > 0,
            "escalated": record.get("escalations", 0) > 0,
            "mid_recovery_crash": record["mid_recovery_crash"],
            "mid_scrub_crash": record["mid_scrub_crash"],
            "scrub_corrected": record["scrub"]["corrected_lines"] > 0,
            "scrub_poisoned": record["scrub"]["poisoned_lines"] > 0,
            "scrub_detected": record["scrub"]["mac_failures"] > 0,
        }
        record["evidence"] = evidence
        silent = (record["result"] == "recovered"
                  and not record.get("digest_ok", False)
                  and not any(evidence.values()))
        record["accounted"] = not record["injected"] or not silent
        record["silent"] = bool(record["injected"]) and silent

        if state is not None:
            # Harvest the next cycle's carry from the recovered image.
            new_carry: Dict = {
                "stuck": dict(carry["stuck"]) if carry else {},
                "wear": carry["wear"] if carry
                else StartGap(max(len(_footprint(system, workload)), 1),
                              gap_write_interval=64),
                "allocs": [(a.addr, a.size, a.label)
                           for a in system.heap.live_allocations()],
            }
            footprint = _footprint(system, workload)
            footprint_set = set(footprint)
            image: Dict[int, bytes] = {}
            lost: List[int] = []
            for line in sorted(state.written_lines()):
                if line not in footprint_set:
                    continue
                # Extract through the *recovered* view: a line scrub
                # poisoned on the post-crash media may still have been
                # resolved by recovery (rollback / redo / heal) — that
                # published value is the data the next cycle resumes
                # on.  Only a line recovery itself cannot produce is
                # genuinely lost.
                try:
                    image[line] = state.read_line(line)
                except UncorrectableMediaError:
                    lost.append(line)
                except IntegrityError as error:
                    record["extract_error"] = str(error)
                    break
            new_carry["image"] = image
            record["wear_victims"] = _wear_victims(new_carry, system,
                                                   footprint, cycle)
            record["carried_lines"] = len(image)
            record["lost_lines"] = len(lost)
            record["stuck_lines"] = len(new_carry["stuck"])
            record["quarantined_lines"] = len(quarantine)
            if "extract_error" not in record:
                record["_carry"] = new_carry
        runlog.event("soak", "cycle.done", level="info", workload=name,
                     mode=mode, result=record["result"],
                     committed=record.get("committed"),
                     digest_ok=record.get("digest_ok"))
        return record
    finally:
        runlog.unbind("cycle")


def run_cell(name: str, mode: str, config: SoakConfig) -> Dict:
    """One workload x mode cell: the full lifecycle, sequentially.

    Cycles chain through the carried image, so a cell is the sharding
    unit — cells are independent seeded computations, cycles are not.
    """
    rng = DeterministicRng(config.seed).stream(f"soak-{name}-{mode}")
    carry: Optional[Dict] = None
    cycles: List[Dict] = []
    for cycle in range(config.cycles):
        record = _run_cycle(name, mode, config, carry, cycle, rng)
        carry = record.pop("_carry", carry)
        cycles.append(record)
    recovered = sum(1 for c in cycles if c["result"] == "recovered")
    return {
        "cycles": cycles,
        "recovered": recovered,
        "rejected": len(cycles) - recovered,
        "digests_ok": sum(1 for c in cycles if c.get("digest_ok")),
        "committed_total": sum(c.get("committed", 0) for c in cycles),
        "final_carried_lines": len(carry["image"]) if carry else 0,
        "final_stuck_lines": len(carry["stuck"]) if carry else 0,
        "final_quarantined": next(
            (c["quarantined_lines"] for c in reversed(cycles)
             if "quarantined_lines" in c), 0),
    }


# -- the campaign -------------------------------------------------------------
def run_soak(config: Optional[SoakConfig] = None,
             jobs: Optional[int] = None,
             timeout_s: Optional[float] = None,
             progress=None) -> Dict:
    """Run the soak campaign; returns the (deterministic) report.

    Cells shard across worker processes; the report is assembled in
    submission order, so the JSON document is byte-identical for any
    job count and either scheduler.
    """
    config = config or SoakConfig()
    executor = ParallelExecutor(jobs=jobs, timeout_s=timeout_s,
                                progress=progress)
    runlog.event("soak", "campaign.start",
                 workloads=list(config.workloads),
                 modes=list(config.modes), cycles=config.cycles,
                 seed=config.seed)
    cells = [(name, mode) for name in config.workloads
             for mode in config.modes]
    results = {r.key: r for r in executor.map([
        SweepTask(key=(name, mode), fn=_CELL_FN,
                  kwargs=dict(name=name, mode=mode, config=config))
        for name, mode in cells])}

    report: Dict = {
        "schema": SCHEMA,
        "config": config.to_dict(),
        "cells": {},
        "violations": [],
    }
    violations: List[Dict] = report["violations"]
    for name in config.workloads:
        entry: Dict = {}
        report["cells"][name] = entry
        for mode in config.modes:
            outcome = results[(name, mode)]
            if not outcome.ok:
                entry[mode] = {"result": "failed",
                               "error": outcome.error}
                violations.append({"workload": name, "mode": mode,
                                   "kind": "cell-failed",
                                   "detail": outcome.error})
                continue
            cell = outcome.value
            entry[mode] = cell
            for record in cell["cycles"]:
                where = {"workload": name, "mode": mode,
                         "cycle": record["cycle"]}
                if record.get("silent"):
                    violations.append({**where, "kind": "silent-fault"})
                if record.get("oracle_failed"):
                    violations.append(
                        {**where, "kind": "idempotence-broken",
                         "detail": record["oracle_failed"]})
                if record.get("extract_error"):
                    violations.append(
                        {**where, "kind": "extract-integrity",
                         "detail": record["extract_error"]})
                if record["result"] == "recovered":
                    if not record.get("digest_ok") \
                            and not any(record["evidence"].values()):
                        violations.append(
                            {**where, "kind": "digest-mismatch"})
                    if not record.get("prefix_ok", True):
                        violations.append({**where,
                                           "kind": "commit-gap"})
                elif not record["fault"].startswith(("wq_", "media",
                                                     "irb")):
                    # Only injected-damage cycles may reject; a clean
                    # or crash-hook cycle that rejects lost data.
                    violations.append({**where,
                                       "kind": "recovery-rejected",
                                       "detail": record.get("error",
                                                            "")})

    report["summary"] = summarise(report)
    for violation in violations:
        runlog.event("soak", "violation", level="error", **violation)
    runlog.event("soak", "campaign.done",
                 cycles=report["summary"]["cycles"],
                 violations=len(violations))
    return report


def summarise(report: Dict) -> Dict:
    cycles = recovered = rejected = digests_ok = 0
    injected = retries = backoff = escalations = 0
    mid_recovery = mid_scrub = oracle_points = committed = 0
    for entry in report["cells"].values():
        for cell in entry.values():
            if cell.get("result") == "failed":
                continue
            for record in cell["cycles"]:
                cycles += 1
                committed += record.get("committed", 0)
                if record["result"] == "recovered":
                    recovered += 1
                else:
                    rejected += 1
                if record.get("digest_ok"):
                    digests_ok += 1
                injected += len(record.get("injected", []))
                retries += record.get("read_retries", 0) \
                    + record.get("degraded_retries", 0)
                backoff += record.get("backoff_ns", 0) \
                    + record.get("degraded_backoff_ns", 0)
                escalations += record.get("escalations", 0)
                mid_recovery += bool(record.get("mid_recovery_crash"))
                mid_scrub += bool(record.get("mid_scrub_crash"))
                oracle_points += record.get("oracle_points", 0)
    return {
        "cycles": cycles,
        "recovered": recovered,
        "rejected": rejected,
        "digests_ok": digests_ok,
        "committed_txns": committed,
        "faults_injected": injected,
        "read_retries": retries,
        "backoff_ns": backoff,
        "escalations": escalations,
        "mid_recovery_crashes": mid_recovery,
        "mid_scrub_crashes": mid_scrub,
        "idempotence_points": oracle_points,
        "violations": len(report["violations"]),
    }


# -- report I/O ---------------------------------------------------------------
def render_json(report: Dict) -> str:
    """Canonical serialisation — byte-identical for identical runs."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def soak_path(directory: str = DEFAULT_DIR) -> str:
    from datetime import date
    return os.path.join(directory,
                        f"SOAK_{date.today().isoformat()}.json")


def write_report(report: Dict, path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(render_json(report))


def render_summary(report: Dict) -> str:
    summary = report["summary"]
    lines = [
        f"soak: {summary['cycles']} cycles "
        f"({summary['recovered']} recovered, "
        f"{summary['rejected']} rejected, "
        f"{summary['committed_txns']} txns committed)",
        f"  mid-recovery crashes: {summary['mid_recovery_crashes']}, "
        f"mid-scrub crashes: {summary['mid_scrub_crashes']}, "
        f"idempotence points: {summary['idempotence_points']}",
        f"  media policy: {summary['read_retries']} retries, "
        f"{summary['backoff_ns']} ns backoff, "
        f"{summary['escalations']} escalations",
        f"  faults injected: {summary['faults_injected']}",
    ]
    for name, entry in report["cells"].items():
        for mode, cell in entry.items():
            if cell.get("result") == "failed":
                lines.append(f"    {name:12s} {mode:10s} FAILED")
                continue
            lines.append(
                f"    {name:12s} {mode:10s} "
                f"{cell['recovered']:3d} recovered / "
                f"{cell['rejected']} rejected, "
                f"{cell['digests_ok']} digests ok, "
                f"stuck={cell['final_stuck_lines']} "
                f"quarantined={cell['final_quarantined']}")
    if report["violations"]:
        lines.append(f"  VIOLATIONS: {len(report['violations'])}")
        for violation in report["violations"]:
            lines.append("    " + json.dumps(violation, sort_keys=True))
    else:
        lines.append("  invariants: every cycle recovered onto a "
                     "committed boundary or rejected explicitly; "
                     "no silent data loss")
    return "\n".join(lines)
