"""Wall-clock performance benchmark harness (``repro bench``).

The simulator's *simulated* write latencies are the paper's subject;
this harness tracks the *host* cost of simulating them, so that perf
regressions in the hot write path (IRB lookups, metric accounting,
event dispatch) are caught by CI instead of silently accumulating.

Three parts:

* **Workload benches** — run every tier-1 workload under Janus mode
  and record wall-clock seconds, dispatched simulator events/sec, and
  simulated-ns advanced per wall-second.
* **IRB microbenchmark** — drive the indexed
  :class:`~repro.janus.irb.IntermediateResultBuffer` and the
  linear-scan reference (:class:`~repro.janus.irb_linear.LinearScanIrb`)
  with an identical high-occupancy operation stream and report the
  indexed/linear speedup.  This ratio is host-speed-independent.
* **Calibration** — a fixed pure-Python loop timed on the same host.
  Cross-machine comparisons (CI versus the machine that produced the
  committed baseline) normalise events/sec by the calibration score,
  so the regression gate measures the *code*, not the hardware.

Reports are JSON (``schema: repro-bench-v1``), written as
``BENCH_<date>.json`` under ``benchmarks/perf/`` — the repo's perf
trajectory.  :func:`compare` diffs two reports and returns the
regressions beyond a threshold.
"""

import datetime
import glob
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.common.config import default_config
from repro.common.rng import DeterministicRng
from repro.core import NvmSystem
from repro.janus.irb import IntermediateResultBuffer, IrbEntry
from repro.janus.irb_linear import LinearScanIrb
from repro.sim import Simulator
from repro.workloads import WORKLOADS, WorkloadParams, make_workload

BENCH_SCHEMA = "repro-bench-v1"
DEFAULT_DIR = os.path.join("benchmarks", "perf")
DEFAULT_THRESHOLD = 0.25
#: Acceptance floor for the indexed IRB's microbench speedup.
DEFAULT_MIN_IRB_SPEEDUP = 2.0


# -- calibration ---------------------------------------------------------
def calibrate(target_s: float = 0.05, repeats: int = 3) -> float:
    """Score this host: iterations/sec of a fixed dict-churn loop.

    The loop exercises the same primitive operations the simulator
    leans on (dict insert/lookup/delete, integer arithmetic), so the
    score tracks how fast this host runs *this kind* of Python.

    Best of ``repeats``: transient load only ever slows the loop
    down, so the fastest sample is the most faithful estimate of the
    host's steady speed.  A single sample can be depressed by a
    scheduler stall, which skews every normalised events/sec number
    derived from the report.
    """
    n = 10_000
    best = 0.0
    for _ in range(repeats):
        while True:
            start = time.perf_counter()
            table: Dict[int, int] = {}
            acc = 0
            for i in range(n):
                table[i & 1023] = i
                acc += table.get((i * 7) & 1023, 0)
                if i & 2047 == 0:
                    table.clear()
            elapsed = time.perf_counter() - start
            if elapsed >= target_s:
                break
            n *= 4
        best = max(best, n / elapsed)
    return best


# -- workload benches ----------------------------------------------------
def bench_workload(name: str, txns: int, mode: str = "janus",
                   cores: int = 1, repeats: int = 1) -> Dict:
    """Time one workload end to end; returns the best of ``repeats``."""
    best: Optional[Dict] = None
    for _ in range(repeats):
        cfg = default_config(mode=mode)
        cfg = cfg.replace(mode=mode, cores=cores)
        system = NvmSystem(cfg)
        params = WorkloadParams(n_transactions=txns)
        variant = "manual" if mode == "janus" else "baseline"
        workloads = [make_workload(name, system, core, params,
                                   variant=variant)
                     for core in system.cores]
        start = time.perf_counter()
        sim_ns = system.run_programs([w.run() for w in workloads])
        wall_s = time.perf_counter() - start
        events = system.sim.events
        sample = {
            "wall_s": wall_s,
            "sim_ns": sim_ns,
            "events": events,
            "events_per_sec": events / wall_s if wall_s else 0.0,
            "sim_ns_per_wall_s": sim_ns / wall_s if wall_s else 0.0,
            "transactions": sum(w.completed_transactions
                                for w in workloads),
        }
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    return best


# -- IRB microbenchmark --------------------------------------------------
def _irb_op_stream(resident: int, ops: int, seed: int = 0
                   ) -> Tuple[List[Tuple], List[Tuple]]:
    """Deterministic (fill, mixed-op) streams for the IRB bench.

    The fill keeps ``resident`` entries live (distinct keys and lines,
    a few threads); the mixed stream is write-path-shaped: mostly
    ``match_write`` (hits and misses), with consume+reinsert churn and
    occasional line invalidations.
    """
    rng = DeterministicRng(seed).stream(f"bench:irb:{resident}:{ops}")
    threads = 4
    fill = []
    for i in range(resident):
        fill.append(("insert", i, i % threads, 64 * i, bytes([i & 0xFF]) * 64))
    mixed = []
    for _ in range(ops):
        roll = rng.random()
        i = rng.randrange(resident)
        thread = i % threads
        line = 64 * i
        if roll < 0.70:
            # match_write: ~half hits, half misses (wrong thread/line).
            if rng.random() < 0.5:
                mixed.append(("match", thread, line, b"\x00" * 64))
            else:
                mixed.append(("match", (thread + 1) % threads, line,
                              b"\x00" * 64))
        elif roll < 0.90:
            mixed.append(("churn", i, thread, line,
                          bytes([rng.randrange(256)]) * 64))
        else:
            mixed.append(("inval", line))
    return fill, mixed


def _drive_irb(irb, fill: List[Tuple], mixed: List[Tuple]) -> float:
    """Run the streams against ``irb``; returns mixed-phase seconds."""
    live = {}
    for op in fill:
        _, i, thread, line, data = op
        entry = IrbEntry(pre_id=i, thread_id=thread, transaction_id=0,
                         line_addr=line, data=data)
        live[i] = irb.insert(entry)
    start = time.perf_counter()
    for op in mixed:
        kind = op[0]
        if kind == "match":
            irb.match_write(op[1], op[2], op[3])
        elif kind == "churn":
            _, i, thread, line, data = op
            old = live.get(i)
            if old is not None:
                irb.consume(old)
            live[i] = irb.insert(
                IrbEntry(pre_id=i, thread_id=thread, transaction_id=0,
                         line_addr=line, data=data))
        else:  # inval
            irb.invalidate_line(op[1])
    return time.perf_counter() - start


def bench_irb_micro(resident: int = 384, ops: int = 4000,
                    seed: int = 0, repeats: int = 3) -> Dict:
    """Indexed vs linear-scan IRB on an identical op stream.

    ``resident`` keeps the buffer at high occupancy (the acceptance
    criterion asks for >= 256 live entries) so the linear scans pay
    their full O(n) cost per operation.
    """
    fill, mixed = _irb_op_stream(resident, ops, seed=seed)
    indexed_s = linear_s = float("inf")
    for _ in range(repeats):
        indexed_s = min(indexed_s, _drive_irb(
            IntermediateResultBuffer(Simulator(), capacity=2 * resident,
                                     max_age_ns=None),
            fill, mixed))
        linear_s = min(linear_s, _drive_irb(
            LinearScanIrb(Simulator(), capacity=2 * resident,
                          max_age_ns=None),
            fill, mixed))
    return {
        "resident_entries": resident,
        "ops": ops,
        "indexed_wall_s": indexed_s,
        "linear_wall_s": linear_s,
        "indexed_ops_per_sec": ops / indexed_s if indexed_s else 0.0,
        "linear_ops_per_sec": ops / linear_s if linear_s else 0.0,
        "speedup": linear_s / indexed_s if indexed_s else float("inf"),
    }


# -- observability-off overhead micro ------------------------------------
def _obs_overhead_subprocess(events: int, repeats: int
                             ) -> Optional[Dict]:
    """Run one in-process overhead measurement in a fresh interpreter.

    Returns ``None`` when a subprocess cannot be launched (restricted
    environments), letting the caller fall back to measuring
    in-process.
    """
    import subprocess

    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    code = (
        "import json\n"
        "from repro.harness.bench import bench_obs_overhead\n"
        f"r = bench_obs_overhead(events={events}, repeats={repeats}, "
        "processes=1)\n"
        "print(json.dumps(r))\n")
    try:
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, timeout=120,
            capture_output=True, text=True)
        if proc.returncode != 0:
            return None
        return json.loads(proc.stdout.strip().splitlines()[-1])
    except (OSError, subprocess.SubprocessError, ValueError,
            IndexError):
        return None


def _dispatch_cascade(sim: Simulator, events: int) -> None:
    """Schedule a pure self-rescheduling dispatch chain of ``events``
    callbacks — the cheapest possible workload, so any per-event cost
    added to the dispatch loop shows at full relative weight."""
    remaining = [events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim._schedule(1.0, tick)

    sim._schedule(0.0, tick)


def _baseline_loop(sim: Simulator, until=None, stop_event=None) -> float:
    """The bare bucketed dispatch loop, verbatim — the obs-off gate
    measures :meth:`Simulator.run` against this copy of
    ``Simulator._run_bucket`` with no profiler/sampler delegation
    check.  Keeping the batch bookkeeping and the
    ``stop_event``/``until``/monotonicity checks is what makes the
    comparison honest: those costs belong to the scheduler itself and
    must not be counted as observability overhead."""
    from heapq import heappop

    from repro.common.errors import SimulationError
    buckets = sim._buckets
    times = sim._times
    batch = sim._batch
    pos = sim._batch_pos
    base = pos
    dispatched = 0
    stopped = False
    try:
        while True:
            if pos < len(batch):
                if stop_event is not None and stop_event.triggered:
                    stopped = True
                    break
                if until is not None and sim._batch_time > until:
                    sim.now = until
                    return sim.now
                if stop_event is None:
                    if pos:
                        while pos < len(batch):
                            fn, args = batch[pos]
                            pos += 1
                            fn(*args)
                    else:
                        for pos, (fn, args) in enumerate(batch, 1):
                            fn(*args)
                else:
                    while pos < len(batch):
                        if stop_event.triggered:
                            stopped = True
                            break
                        fn, args = batch[pos]
                        pos += 1
                        fn(*args)
                    if stopped:
                        break
                continue
            if stop_event is not None and stop_event.triggered:
                stopped = True
                break
            if not times:
                break
            time_ = times[0]
            if until is not None and time_ > until:
                sim.now = until
                return sim.now
            heappop(times)
            if time_ < sim.now:
                raise SimulationError("time went backwards")
            dispatched += pos - base
            sim.now = time_
            sim._batch_time = time_
            batch = sim._batch = buckets.pop(time_)
            pos = 0
            base = 0
    finally:
        sim.events += dispatched + (pos - base)
        sim._batch_pos = pos
    if until is not None and not times and pos >= len(batch) \
            and not stopped:
        sim.now = max(sim.now, until)
    return sim.now


def bench_obs_overhead(events: int = 120_000,
                       repeats: int = 10,
                       processes: int = 3) -> Dict:
    """Overhead of the obs-capable ``run()`` with observability off.

    Times an identical pure-dispatch cascade through (a) the real
    :meth:`Simulator.run` with ``profile``/``sampler`` unset and (b) a
    verbatim copy of the pre-profiler loop.  Overhead is the ratio of
    the two *minima*: transient host effects only ever slow a sample
    down, so with enough alternating trials each side's fastest
    sample converges on its true cost, while a real per-event cost
    inflates every sample of the ``run()`` side including its
    minimum.  Noise controls, each of which proved necessary on
    shared/virtualized runners: trials are timed with
    :func:`time.process_time` (CPU time — hypervisor steal and
    scheduler preemption do not count against either side), GC is
    paused inside the timed regions (collector pauses otherwise land
    on one side at random), a sustained untimed warm-up lets a
    frequency-scaled host reach its steady clock before anything is
    timed, and trials are sized in the tens of milliseconds (shorter
    samples are dominated by timer jitter).

    One noise source survives all of that: per-interpreter memory
    layout (ASLR, allocation order) biases two distinct code objects
    against each other by several percent, with the same sign for the
    lifetime of the process — no amount of in-process repetition
    averages it out.  So when ``processes`` > 1 the measurement runs
    in that many *fresh interpreters* and the smallest overhead wins:
    a favourably-laid-out process reads the true ~0%, while a real
    per-event cost shows in every layout.  ``processes=1`` measures
    in-process (it is also what each subprocess runs).  The
    acceptance gate is overhead < 2% (``repro bench`` fails beyond
    ``--max-obs-overhead``).
    """
    import gc

    if processes > 1:
        best: Optional[Dict] = None
        for _ in range(processes):
            result = _obs_overhead_subprocess(events, repeats)
            if result is None:       # no subprocess support: fall back
                break
            if best is None or result["overhead"] < best["overhead"]:
                best = result
        if best is not None:
            best["processes"] = processes
            return best

    # Sustained warm-up: ~0.5s of full-speed alternating runs, enough
    # for bytecode specialization on both loops and for the host to
    # leave its idle frequency state.
    deadline = time.perf_counter() + 0.5
    while time.perf_counter() < deadline:
        for loop in (lambda s: s.run(), _baseline_loop):
            sim = Simulator("bucket")
            _dispatch_cascade(sim, min(events, 20_000))
            loop(sim)

    fast_s = baseline_s = float("inf")
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(repeats):
            sim = Simulator("bucket")
            _dispatch_cascade(sim, events)
            gc.collect()
            gc.disable()
            start = time.process_time()
            sim.run()
            fast_s = min(fast_s, time.process_time() - start)
            if gc_was_enabled:
                gc.enable()

            sim = Simulator("bucket")
            _dispatch_cascade(sim, events)
            gc.collect()
            gc.disable()
            start = time.process_time()
            _baseline_loop(sim)
            baseline_s = min(baseline_s, time.process_time() - start)
            if gc_was_enabled:
                gc.enable()
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "events": events,
        "run_wall_s": fast_s,
        "baseline_wall_s": baseline_s,
        "overhead": fast_s / baseline_s - 1.0 if baseline_s else 0.0,
    }


# -- the full report -----------------------------------------------------
def run_bench(quick: bool = False, seed: int = 0,
              workloads: Optional[List[str]] = None,
              jobs: int = 1, progress=None) -> Dict:
    """Run the whole suite and return a ``repro-bench-v1`` report.

    ``jobs`` shards the per-workload benches (each a sealed repeated
    run) across worker processes via :mod:`repro.harness.parallel`.
    The default stays 1 — this is a *timing* harness, and concurrent
    benches contend for cores, so the CI regression gate and the
    committed baselines always use ``jobs=1``; ``jobs>1`` is for
    quick exploratory sweeps where relative numbers suffice.
    """
    from repro.harness.parallel import ParallelExecutor, SweepTask

    names = list(workloads) if workloads else sorted(WORKLOADS)
    txns = 6 if quick else 24
    # Quick runs are short enough that a single sample is noisy on
    # shared CI runners; best-of-3 keeps the regression gate stable
    # (full runs are long enough for best-of-2).
    repeats = 3 if quick else 2
    executor = ParallelExecutor(jobs=jobs, progress=progress)
    results = executor.map_values(
        [SweepTask(key=(name,), fn="repro.harness.bench:bench_workload",
                   kwargs=dict(name=name, txns=txns, repeats=repeats))
         for name in names], strict=True)
    per_workload: Dict[str, Dict] = {
        name: results[(name,)] for name in names}
    micro = bench_irb_micro(
        resident=256 if quick else 384,
        ops=1500 if quick else 4000,
        seed=seed,
        repeats=2 if quick else 3)
    obs_overhead = bench_obs_overhead(
        events=60_000 if quick else 120_000,
        repeats=6 if quick else 10)
    total_wall = sum(w["wall_s"] for w in per_workload.values())
    total_events = sum(w["events"] for w in per_workload.values())
    total_sim_ns = sum(w["sim_ns"] for w in per_workload.values())
    return {
        "schema": BENCH_SCHEMA,
        "meta": {
            "date": datetime.date.today().isoformat(),
            "quick": quick,
            "jobs": executor.jobs,
            "txns": txns,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "calibration_ops_per_sec": calibrate(),
        },
        "workloads": per_workload,
        "irb_micro": micro,
        "obs_overhead": obs_overhead,
        "totals": {
            "wall_s": total_wall,
            "events": total_events,
            "events_per_sec": (total_events / total_wall
                               if total_wall else 0.0),
            "sim_ns_per_wall_s": (total_sim_ns / total_wall
                                  if total_wall else 0.0),
        },
    }


# -- trajectory files ----------------------------------------------------
def bench_path(directory: str = DEFAULT_DIR,
               date: Optional[str] = None) -> str:
    date = date or datetime.date.today().isoformat()
    return os.path.join(directory, f"BENCH_{date}.json")


def find_baseline(directory: str = DEFAULT_DIR,
                  exclude: Optional[str] = None) -> Optional[str]:
    """Latest ``BENCH_*.json`` in ``directory`` other than ``exclude``.

    ``BENCH_<ISO-date>.json`` names sort chronologically.
    """
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if exclude is not None:
        excluded = os.path.abspath(exclude)
        paths = [p for p in paths if os.path.abspath(p) != excluded]
    return paths[-1] if paths else None


def write_report(report: Dict, path: str) -> str:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path: str) -> Dict:
    with open(path) as handle:
        report = json.load(handle)
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: not a {BENCH_SCHEMA} report")
    return report


# -- regression gate -----------------------------------------------------
def _normalised_eps(report: Dict, workload: str,
                    calibrated: bool) -> Optional[float]:
    bench = report.get("workloads", {}).get(workload)
    if bench is None:
        return None
    eps = bench.get("events_per_sec", 0.0)
    if calibrated:
        return eps / report["meta"]["calibration_ops_per_sec"]
    return eps


#: Extra slack on per-workload checks over the aggregate threshold.
#: Individual workload samples are a fraction of a second of wall
#: clock; ±30% swings from shared-host noise are routine, so gating
#: each workload at the aggregate threshold made the gate flaky.
WORKLOAD_NOISE_ALLOWANCE = 0.15


def compare(baseline: Dict, current: Dict,
            threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Regressions of ``current`` vs ``baseline`` beyond ``threshold``.

    Compares events/sec normalised by each report's calibration score
    when both have one (so a slower CI host does not read as a code
    regression).  Two tiers:

    * the **total** across all workloads — where independent
      per-workload noise largely averages out — gates at
      ``threshold``;
    * each **individual workload** gates at ``threshold`` plus
      :data:`WORKLOAD_NOISE_ALLOWANCE`, catching a catastrophic
      single-workload regression that a healthy aggregate could hide.

    Returns human-readable descriptions; an empty list means the gate
    passes.
    """
    regressions: List[str] = []
    calibrated = bool(
        baseline.get("meta", {}).get("calibration_ops_per_sec")
        and current.get("meta", {}).get("calibration_ops_per_sec"))
    unit = "normalised events/sec" if calibrated else "events/sec"
    workload_threshold = min(0.9, threshold + WORKLOAD_NOISE_ALLOWANCE)
    for workload in sorted(baseline.get("workloads", {})):
        base = _normalised_eps(baseline, workload, calibrated)
        cur = _normalised_eps(current, workload, calibrated)
        if base is None or cur is None or base <= 0:
            continue
        drop = 1.0 - cur / base
        if drop > workload_threshold:
            regressions.append(
                f"{workload}: {unit} fell {drop:.0%} "
                f"({base:.3g} -> {cur:.3g}, "
                f"threshold {workload_threshold:.0%})")
    base_total = baseline.get("totals", {}).get("events_per_sec")
    cur_total = current.get("totals", {}).get("events_per_sec")
    if base_total and cur_total is not None:
        if calibrated:
            base_total /= baseline["meta"]["calibration_ops_per_sec"]
            cur_total /= current["meta"]["calibration_ops_per_sec"]
        drop = 1.0 - cur_total / base_total
        if drop > threshold:
            regressions.append(
                f"total: {unit} fell {drop:.0%} "
                f"({base_total:.3g} -> {cur_total:.3g}, "
                f"threshold {threshold:.0%})")
    return regressions


def render(report: Dict, baseline: Optional[Dict] = None) -> str:
    """Human-readable summary of one report (plus baseline deltas)."""
    lines = []
    meta = report["meta"]
    lines.append(f"repro bench — {meta['date']}"
                 f"{' (quick)' if meta.get('quick') else ''}  "
                 f"py{meta['python']}")
    lines.append(f"{'workload':12s} {'wall s':>8s} {'events':>9s} "
                 f"{'events/s':>10s} {'sim-ns/s':>12s}")
    for name in sorted(report["workloads"]):
        w = report["workloads"][name]
        lines.append(f"{name:12s} {w['wall_s']:8.3f} {w['events']:9d} "
                     f"{w['events_per_sec']:10,.0f} "
                     f"{w['sim_ns_per_wall_s']:12,.0f}")
    totals = report["totals"]
    lines.append(f"{'TOTAL':12s} {totals['wall_s']:8.3f} "
                 f"{totals['events']:9d} "
                 f"{totals['events_per_sec']:10,.0f} "
                 f"{totals['sim_ns_per_wall_s']:12,.0f}")
    micro = report["irb_micro"]
    lines.append(
        f"irb micro ({micro['resident_entries']} resident, "
        f"{micro['ops']} ops): indexed "
        f"{micro['indexed_ops_per_sec']:,.0f} ops/s vs linear "
        f"{micro['linear_ops_per_sec']:,.0f} ops/s -> "
        f"{micro['speedup']:.1f}x")
    obs = report.get("obs_overhead")
    if obs:
        lines.append(
            f"obs-off dispatch overhead ({obs['events']} events): "
            f"{obs['overhead']:+.2%} vs pre-profiler loop")
    if baseline is not None:
        base_total = baseline["totals"]["events_per_sec"]
        cur_total = totals["events_per_sec"]
        if base_total > 0:
            lines.append(
                f"vs baseline {baseline['meta']['date']}: total "
                f"events/sec {cur_total / base_total:.2f}x (raw)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Allow ``python -m repro.harness.bench`` as a shortcut."""
    from repro.cli import main as cli_main
    return cli_main(["bench"] + list(argv or sys.argv[1:]))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
