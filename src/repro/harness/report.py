"""Plain-text tables and series for the figure reproductions,
plus the path helpers every harness writer goes through.

Output paths (``results/figures/...``, trace/stats JSON, charts) are
created with ``parents=True`` — a missing ``results/`` directory is
not an error, so the harness works from any working directory, not
just a repo checkout."""

from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.common.errors import ReproError


class ReportOverwriteError(ReproError):
    """Refusal to clobber a file that is not a previous render of the
    same report (``repro figure --out`` without ``--force``)."""


def ensure_parent(path: Union[str, Path]) -> str:
    """Create ``path``'s parent directories (``parents=True``);
    returns ``path`` as a string for chaining into ``open()``."""
    p = Path(path)
    if str(p.parent) not in ("", "."):
        p.parent.mkdir(parents=True, exist_ok=True)
    return str(p)


def write_text(text: str, path: Union[str, Path]) -> str:
    """Write rendered figure/report text to ``path``, creating any
    missing parent directories; guarantees a trailing newline."""
    target = ensure_parent(path)
    with open(target, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    return target


def write_report_text(text: str, path: Union[str, Path],
                      force: bool = False) -> str:
    """:func:`write_text` that refuses to silently overwrite a file it
    did not produce.

    A re-render of the same report is recognized by its first line
    (the caption) and overwritten freely; any other existing file —
    someone's notes, a different figure, a data file that happens to
    share the name — raises :class:`ReportOverwriteError` unless
    ``force``.
    """
    p = Path(path)
    if p.exists() and not force:
        if p.is_dir():
            raise ReportOverwriteError(f"{path} is a directory")
        try:
            with open(p, errors="replace") as handle:
                existing_first = handle.readline().rstrip("\n")
        except OSError as error:
            raise ReportOverwriteError(
                f"cannot inspect existing file {path}: {error}")
        new_first = text.split("\n", 1)[0]
        if existing_first != new_first:
            raise ReportOverwriteError(
                f"{path} exists and does not look like a previous "
                f"render of this report (first line "
                f"{existing_first[:40]!r} != {new_first[:40]!r}); "
                f"pass --force to overwrite")
    return write_text(text, path)


class Table:
    """A fixed-column ASCII table with a caption."""

    def __init__(self, caption: str, columns: Sequence[str]):
        self.caption = caption
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, expected "
                f"{len(self.columns)}")
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.caption]
        header = " | ".join(col.ljust(widths[i])
                            for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(widths[i])
                                    for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_series(name: str, points: Dict, unit: str = "x") -> str:
    """One figure series as ``name: k1=v1 k2=v2 ...``."""
    parts = [f"{key}={value:.2f}{unit}" if isinstance(value, float)
             else f"{key}={value}{unit}"
             for key, value in points.items()]
    return f"{name}: " + "  ".join(parts)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
