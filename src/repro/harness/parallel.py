"""Parallel sweep executor: shard independent simulation points.

Every figure sweep, the crash-point campaign, and the bench harness
run *sealed* simulation points: a point is fully determined by its
arguments (workload, mode, seed, config), shares no state with its
neighbours, and produces a picklable result.  This module is the one
backend that runs such point sets — inline in this process, or
sharded across worker processes — while guaranteeing that the merged
output is **byte-identical regardless of the worker count**:

* a :class:`SweepTask` names its workload as a ``module:callable``
  dotted path plus picklable args, so a fresh worker process can
  re-resolve and run it (:func:`run_task` is the pure entry point);
* :class:`ParallelExecutor` runs one short-lived process per task
  (up to ``jobs`` concurrently), giving real per-task timeouts —
  a wedged point is terminated, retried up to ``retries`` times
  (the bounded-retry idiom of
  :class:`repro.faults.DegradedModeManager`), and finally recorded
  as a failed :class:`TaskResult` without sinking the sweep;
* results are merged **in task-submission order**, never completion
  order, so ``results/CRASHTEST_*.json`` and the figure tables stay
  byte-identical to a serial run;
* worker-side accounting travels back as a metrics snapshot and is
  folded into the parent's :class:`~repro.obs.MetricsRegistry` with
  :meth:`~repro.obs.MetricsRegistry.fold` (scope ``parallel``:
  ``tasks_done`` / ``tasks_failed`` / ``retries`` / ``timeouts`` /
  per-worker-slot labeled counters, plus a task wall-time
  histogram).

Worker count resolution (:func:`resolve_jobs`): an explicit ``jobs``
argument wins, then the ``REPRO_JOBS`` environment variable, then
``os.cpu_count()``.  ``jobs=1`` (or an unavailable ``multiprocessing``)
never spawns a process — the sweep runs inline, including the retry
accounting, so the two paths differ only in wall-clock.
"""

import os
import time
import traceback
from dataclasses import dataclass, field
from importlib import import_module
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import log as runlog
from repro.obs.metrics import MetricsRegistry

#: Environment variable consulted when no explicit ``jobs`` is given.
ENV_JOBS = "REPRO_JOBS"
#: Default bounded-retry budget per task (attempts = retries + 1).
DEFAULT_RETRIES = 1
#: Seconds between liveness polls of the worker set.
_POLL_S = 0.02


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit ``jobs`` > ``$REPRO_JOBS`` > cpu count."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(ENV_JOBS)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _mp_context():
    """A usable multiprocessing context, or ``None``.

    Prefers ``fork`` (cheap on Linux; inherits ``sys.path`` and loaded
    modules) and falls back to ``spawn``.  Platforms without working
    multiprocessing primitives yield ``None`` → inline execution.
    """
    try:
        import multiprocessing as mp
        methods = mp.get_all_start_methods()
        if "fork" in methods:
            return mp.get_context("fork")
        if methods:
            return mp.get_context(methods[0])
    except (ImportError, OSError, ValueError):
        pass
    return None


def resolve_callable(path: str) -> Callable:
    """``pkg.module:attr`` (or dotted ``attr.sub``) → the callable."""
    module_name, sep, attr = path.partition(":")
    if not sep:
        raise ValueError(
            f"task fn {path!r} must be 'module:callable'")
    target = import_module(module_name)
    for part in attr.split("."):
        target = getattr(target, part)
    return target


@dataclass(frozen=True)
class SweepTask:
    """One sealed simulation point.

    ``key`` identifies the point in the merged result set (tuples sort
    and compare well); ``fn`` is a ``module:callable`` path resolved
    *inside the worker*, so the task itself stays picklable no matter
    what the callable is.  ``args``/``kwargs`` must be picklable.
    """

    key: Tuple
    fn: str
    args: Tuple = ()
    kwargs: Dict = field(default_factory=dict)


@dataclass
class TaskResult:
    """Outcome of one task, success or not — sweeps never raise."""

    key: Tuple
    ok: bool
    value: object = None
    error: str = ""
    traceback: str = ""
    #: Attempts consumed (1 = first try succeeded).
    attempts: int = 1
    #: Task wall-clock seconds (last attempt).
    wall_s: float = 0.0
    #: Worker-side metrics snapshot (folded by the executor).
    metrics: Optional[Dict] = None


def run_task(task: SweepTask, worker: int = 0) -> TaskResult:
    """Pure worker entry point: resolve, run, classify, account.

    Runs in the worker process (or inline).  Never raises: failures
    come back as ``ok=False`` with the error and traceback rendered to
    strings (exception objects themselves may not be picklable).
    Worker-side accounting is carried as a metrics snapshot under the
    ``parallel.worker`` scope for cross-process fold-in.
    """
    registry = MetricsRegistry()
    scope = registry.scope("parallel.worker")
    start = time.perf_counter()
    try:
        value = resolve_callable(task.fn)(*task.args, **task.kwargs)
        wall = time.perf_counter() - start
        scope.counter("tasks_done",
                      labels={"worker": str(worker)}).add()
        scope.histogram("task_wall_s").observe(wall)
        return TaskResult(key=task.key, ok=True, value=value,
                          wall_s=wall, metrics=registry.snapshot())
    except BaseException as error:  # noqa: BLE001 — report, don't sink
        wall = time.perf_counter() - start
        scope.counter("tasks_failed",
                      labels={"worker": str(worker)}).add()
        return TaskResult(
            key=task.key, ok=False,
            error=f"{type(error).__name__}: {error}",
            traceback=traceback.format_exc(), wall_s=wall,
            metrics=registry.snapshot())


def _worker_main(conn, task: SweepTask, worker: int) -> None:
    """Child process body: run one task, ship the result, exit."""
    try:
        result = run_task(task, worker=worker)
        try:
            conn.send(result)
        except Exception:
            # The *value* may fail to pickle even though the task ran;
            # resend as an explicit failure so the parent can retry or
            # record it instead of seeing a silent dead worker.
            conn.send(TaskResult(
                key=task.key, ok=False,
                error="ResultPickleError: task result was not "
                      "picklable", traceback=traceback.format_exc()))
    finally:
        conn.close()


class ParallelExecutor:
    """Run a task list across worker processes; merge deterministically.

    ``map`` returns one :class:`TaskResult` per task **in submission
    order**.  ``jobs=1`` (or no usable multiprocessing) executes
    inline in this process; ``timeout_s`` then cannot preempt a wedged
    task and is ignored (cooperative execution has no kill switch).
    """

    def __init__(self, jobs: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = DEFAULT_RETRIES,
                 metrics: Optional[MetricsRegistry] = None,
                 progress: Optional[Callable[[int, int, int], None]]
                 = None):
        self.jobs = resolve_jobs(jobs)
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.progress = progress
        scope = self.metrics.scope("parallel")
        self._c_done = scope.counter("tasks_done")
        self._c_failed = scope.counter("tasks_failed")
        self._c_retries = scope.counter("retries")
        self._c_timeouts = scope.counter("timeouts")
        self._c_spawned = scope.counter("workers_spawned")
        self._h_wall = scope.histogram("task_wall_s")

    # -- bookkeeping shared by both paths --------------------------------
    def _record(self, result: TaskResult) -> None:
        (self._c_done if result.ok else self._c_failed).add()
        self._h_wall.observe(result.wall_s)
        if result.metrics is not None:
            self.metrics.fold(result.metrics)
            result.metrics = None  # folded; don't ship twice
        if not result.ok:
            runlog.event("harness.parallel", "task_failed",
                         level="error", key=list(result.key),
                         error=result.error, attempts=result.attempts)

    def _report(self, done: int, total: int, failed: int) -> None:
        if self.progress is not None:
            self.progress(done, total, failed)

    # -- public API -------------------------------------------------------
    def map(self, tasks: Sequence[SweepTask]) -> List[TaskResult]:
        tasks = list(tasks)
        if not tasks:
            return []
        if self.jobs <= 1 or len(tasks) == 1:
            return self._map_inline(tasks)
        ctx = _mp_context()
        if ctx is None:
            return self._map_inline(tasks)
        return self._map_processes(tasks, ctx)

    def map_values(self, tasks: Sequence[SweepTask],
                   strict: bool = True) -> Dict[Tuple, object]:
        """``key -> value`` for every task; raise on failure if strict."""
        results = self.map(tasks)
        if strict:
            failed = [r for r in results if not r.ok]
            if failed:
                first = failed[0]
                raise RuntimeError(
                    f"{len(failed)}/{len(results)} sweep tasks failed; "
                    f"first: {first.key} {first.error}\n"
                    f"{first.traceback}")
        return {r.key: r.value for r in results if r.ok}

    # -- inline path ------------------------------------------------------
    def _map_inline(self, tasks: List[SweepTask]) -> List[TaskResult]:
        results: List[TaskResult] = []
        failed = 0
        for task in tasks:
            result = run_task(task)
            attempts = 1
            while not result.ok and attempts <= self.retries:
                self._c_retries.add()
                runlog.event("harness.parallel", "task_retry",
                             level="warn", key=list(task.key),
                             attempt=attempts, error=result.error)
                result = run_task(task)
                attempts += 1
            result.attempts = attempts
            self._record(result)
            failed += 0 if result.ok else 1
            results.append(result)
            self._report(len(results), len(tasks), failed)
        return results

    # -- process path -----------------------------------------------------
    def _map_processes(self, tasks: List[SweepTask],
                       ctx) -> List[TaskResult]:
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        pending = list(range(len(tasks)))  # popped front-first
        attempts = [0] * len(tasks)
        running: Dict[int, Tuple] = {}  # index -> (proc, conn, t0, slot)
        free_slots = list(range(self.jobs - 1, -1, -1))
        done = failed = 0

        def launch(index: int) -> None:
            slot = free_slots.pop()
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, tasks[index], slot),
                daemon=True)
            proc.start()
            child_conn.close()
            attempts[index] += 1
            self._c_spawned.add()
            running[index] = (proc, parent_conn, time.perf_counter(),
                              slot)

        def finish(index: int, result: TaskResult) -> None:
            nonlocal done, failed
            proc, conn, _t0, slot = running.pop(index)
            conn.close()
            proc.join()
            free_slots.append(slot)
            result.attempts = attempts[index]
            results[index] = result
            self._record(result)
            done += 1
            failed += 0 if result.ok else 1
            self._report(done, len(tasks), failed)

        def retry_or_fail(index: int, error: str, tb: str = "") -> None:
            if attempts[index] <= self.retries:
                proc, conn, _t0, slot = running.pop(index)
                conn.close()
                proc.join()
                free_slots.append(slot)
                self._c_retries.add()
                runlog.event("harness.parallel", "task_retry",
                             level="warn",
                             key=list(tasks[index].key),
                             attempt=attempts[index], error=error)
                pending.insert(0, index)
            else:
                finish(index, TaskResult(
                    key=tasks[index].key, ok=False, error=error,
                    traceback=tb))

        while pending or running:
            while pending and free_slots:
                launch(pending.pop(0))
            time.sleep(0 if any(
                conn.poll() for _p, conn, _t, _s in running.values())
                else _POLL_S)
            for index in list(running):
                proc, conn, t0, _slot = running[index]
                if conn.poll():
                    try:
                        result = conn.recv()
                    except (EOFError, OSError):
                        retry_or_fail(
                            index,
                            "WorkerDied: result pipe closed before a "
                            "result arrived")
                        continue
                    if not result.ok \
                            and attempts[index] <= self.retries:
                        retry_or_fail(index, result.error,
                                      result.traceback)
                    else:
                        finish(index, result)
                    continue
                if self.timeout_s is not None \
                        and time.perf_counter() - t0 > self.timeout_s:
                    self._c_timeouts.add()
                    runlog.event("harness.parallel", "task_timeout",
                                 level="warn",
                                 key=list(tasks[index].key),
                                 timeout_s=self.timeout_s,
                                 attempt=attempts[index])
                    proc.terminate()
                    retry_or_fail(
                        index,
                        f"TaskTimeout: exceeded {self.timeout_s:g}s "
                        f"(attempt {attempts[index]})")
                elif not proc.is_alive():
                    # Died without sending (segfault, os._exit, kill).
                    retry_or_fail(
                        index,
                        f"WorkerDied: exit code {proc.exitcode} "
                        "before sending a result")
        return [r for r in results if r is not None]


def sweep(tasks: Sequence[SweepTask], jobs: Optional[int] = None,
          timeout_s: Optional[float] = None,
          retries: int = DEFAULT_RETRIES,
          metrics: Optional[MetricsRegistry] = None,
          progress: Optional[Callable[[int, int, int], None]] = None
          ) -> List[TaskResult]:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    return ParallelExecutor(jobs=jobs, timeout_s=timeout_s,
                            retries=retries, metrics=metrics,
                            progress=progress).map(tasks)


def progress_line(label: str, stream=None) -> Callable[[int, int, int],
                                                       None]:
    """A CLI progress callback: live ``\\r`` line on a tty, sparse
    milestone lines otherwise (so CI logs stay readable)."""
    import sys
    stream = stream if stream is not None else sys.stderr
    is_tty = bool(getattr(stream, "isatty", lambda: False)())
    last_milestone = [-1]

    def report(done: int, total: int, failed: int) -> None:
        tail = f", {failed} failed" if failed else ""
        if is_tty:
            end = "\n" if done == total else ""
            print(f"\r{label}: {done}/{total}{tail}", end=end,
                  file=stream, flush=True)
            return
        milestone = (4 * done) // max(1, total)
        if milestone != last_milestone[0] or done == total:
            last_milestone[0] = milestone
            print(f"{label}: {done}/{total}{tail}", file=stream,
                  flush=True)

    return report
