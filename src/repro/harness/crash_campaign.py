"""Crash-point campaign: sweep seeded crash points, prove recovery.

The campaign is the repo's end-to-end robustness argument.  For every
``workload x mode`` pair it:

1. runs a *calibration* pass to completion, recording the logical
   digest of the structure after every committed transaction (the
   reference trajectory) and the run's time horizon;
2. sweeps ``points`` seeded crash times across that horizon — each
   point runs a fresh system, pulls the plug mid-stream, recovers
   (MAC-verified) and rolls back the undo log, then decodes the
   recovered image with the workload's structure-aware
   ``logical_state``;
3. asserts the recovered digest equals the reference digest at the
   recovered commit count — i.e. recovery always lands exactly on a
   committed-transaction boundary — and that the post-crash scrub is
   clean.

Because the reference trajectories are compared *across modes*, the
campaign also proves the paper's requirement 1 (§3.2): Janus
pre-execution never changes the post-crash recoverable state relative
to the serialized baseline.

A second section exercises every fault class from
:mod:`repro.faults` in a targeted scenario and classifies the outcome
(recovered-consistent / rejected with a ``ReproError`` subclass /
corrected / poisoned).  A fault that produces a divergent digest with
no error and no correction evidence is a *silent* failure and lands
in ``violations``.

Reports are deterministic: identical seed + config produce a
byte-identical JSON document (no timestamps in the body — the date
lives only in the file name).  Every simulation point (reference
trajectory, crash point, fault scenario) is a sealed seeded run, so
the campaign shards them across worker processes through
:mod:`repro.harness.parallel` (``jobs``/``--jobs``/``$REPRO_JOBS``)
and assembles the report in sweep order — the bytes are identical at
any job count.
"""

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import default_config
from repro.common.errors import ReproError
from repro.common.rng import DeterministicRng
from repro.consistency import recover, scrub
from repro.core import NvmSystem
from repro.faults import DegradedModeManager, FaultInjector, FaultPlan, \
    FaultSpec
from repro.harness.parallel import ParallelExecutor, SweepTask, TaskResult
from repro.obs import log as runlog
from repro.workloads import WORKLOADS, WorkloadParams, make_workload

SCHEMA = "repro-crashtest-v1"
DEFAULT_DIR = "results"
DEFAULT_MODES = ("serialized", "janus")
#: Worker entry points, resolved by dotted path inside each worker.
_REFERENCE_FN = "repro.harness.crash_campaign:reference_trajectory"
_CRASH_POINT_FN = "repro.harness.crash_campaign:run_crash_point"
_SCENARIO_FN = "repro.harness.crash_campaign:run_fault_scenario"
#: BMO set used by the fault scenarios: every metadata store plus ECC,
#: so media faults exercise correction *and* poisoning.
FAULT_BMOS = ("dedup", "encryption", "integrity", "ecc")


@dataclass
class CampaignConfig:
    """Everything that determines a campaign (and its report)."""

    workloads: Tuple[str, ...] = tuple(WORKLOADS)
    modes: Tuple[str, ...] = DEFAULT_MODES
    #: Seeded crash points per workload x mode.
    points: int = 20
    seed: int = 7
    n_items: int = 8
    value_size: int = 64
    n_transactions: int = 12
    fault_scenarios: bool = True
    #: Memory-controller shards (docs/sharding.md).  The sharded
    #: campaign proves recovery lands on a *cross-shard* consistent
    #: cut — e.g. a crash caught with one shard's epoch flusher
    #: behind the others still recovers a committed boundary.
    shards: int = 1

    def params(self) -> WorkloadParams:
        return WorkloadParams(n_items=self.n_items,
                              value_size=self.value_size,
                              n_transactions=self.n_transactions)

    def to_dict(self) -> Dict:
        out = {
            "workloads": list(self.workloads),
            "modes": list(self.modes),
            "points": self.points,
            "seed": self.seed,
            "n_items": self.n_items,
            "value_size": self.value_size,
            "n_transactions": self.n_transactions,
            "fault_scenarios": self.fault_scenarios,
        }
        # Only serialised when sharded, so unsharded reports stay
        # byte-identical to pre-sharding campaigns.
        if self.shards != 1:
            out["shards"] = self.shards
        return out


def quick_config(seed: int = 7) -> CampaignConfig:
    """CI-sized campaign: two workloads, fewer points."""
    return CampaignConfig(workloads=("array_swap", "queue"),
                          points=5, seed=seed, n_transactions=8)


# -- building blocks ---------------------------------------------------------
def _variant(mode: str) -> str:
    return "manual" if mode == "janus" else "baseline"


def _build(name: str, mode: str, params: WorkloadParams, seed: int,
           injector: Optional[FaultInjector] = None,
           bmos: Optional[Sequence[str]] = None,
           shards: int = 1):
    overrides = {"mode": mode, "seed": seed}
    if bmos is not None:
        overrides["bmos"] = tuple(bmos)
    if shards != 1:
        overrides["shards"] = shards
    system = NvmSystem(default_config(**overrides), injector=injector)
    workload = make_workload(name, system, system.cores[0], params,
                             variant=_variant(mode))
    return system, workload


def reference_trajectory(name: str, mode: str, params: WorkloadParams,
                         seed: int,
                         bmos: Optional[Sequence[str]] = None,
                         shards: int = 1):
    """Run to completion; digest after setup and after every commit.

    Returns ``(digests, horizon_ns)`` where ``digests[k]`` is the
    logical digest with exactly ``k`` transactions committed.  The
    workloads draw all their randomness from mode-independent rng
    streams, so for a fixed seed the trajectory is identical across
    modes — the campaign asserts exactly that.
    """
    system, workload = _build(name, mode, params, seed, bmos=bmos,
                              shards=shards)
    digests: Dict[int, str] = {
        0: workload.logical_digest(system.volatile.read)}

    def driver():
        for _ in range(params.n_transactions):
            workload._preobjs = {}
            yield from workload.transaction()
            workload.completed_transactions += 1
            k = system.cores[0].current_txn_id
            digests[k] = workload.logical_digest(system.volatile.read)

    horizon = system.run_programs([driver()])
    return digests, horizon


def run_crash_point(name: str, mode: str, params: WorkloadParams,
                    seed: int, crash_at: float,
                    plan: Optional[FaultPlan] = None,
                    bmos: Optional[Sequence[str]] = None,
                    crash_on_accept: Optional[int] = None,
                    shards: int = 1) -> Dict:
    """One crash point: run, crash, recover, scrub, decode.

    Returns a record with the recovered commit count, the logical
    digest (or the rejection error), rollback/scrub evidence, and any
    injected faults.  Never lets damage through silently: a
    ``ReproError`` from recovery or decoding is captured as an
    explicit rejection.

    ``crash_on_accept=N`` crashes the instant the Nth write-queue
    acceptance completes — the only moment an entry is guaranteed to
    sit in the ADR domain undrained, which the ``wq_*`` fault
    scenarios need (a wall-clock crash time almost always finds the
    single-core queue empty).
    """
    injector = FaultInjector(plan) if plan is not None else None
    system, workload = _build(name, mode, params, seed,
                              injector=injector, bmos=bmos,
                              shards=shards)
    system.sim.process(workload.run(), name="stream")
    if crash_on_accept is None:
        system.sim.run(until=crash_at)
    else:
        # Count acceptances across every shard's queue — the Nth
        # acceptance system-wide, wherever it lands.
        stop = system.sim.event("accept-crash")
        originals = [queue.accept for queue in system.write_queues]
        seen = {"accepts": 0}

        def _wrap(original):
            def wrapped(entry):
                yield from original(entry)
                seen["accepts"] += 1
                if seen["accepts"] == crash_on_accept \
                        and not stop.triggered:
                    stop.succeed()
            return wrapped

        for queue, original in zip(system.write_queues, originals):
            queue.accept = _wrap(original)
        system.sim.run(stop_event=stop)
        for queue, original in zip(system.write_queues, originals):
            queue.accept = original
        crash_at = system.sim.now
    snapshot = system.crash()

    record: Dict = {"crash_at": crash_at, "mode": mode}
    state = None
    try:
        state = recover(snapshot,
                        [(workload.log.base, workload.log.capacity)],
                        verify_macs=True)
        committed = state.committed_txns
        record["committed"] = len(committed)
        record["prefix_ok"] = \
            committed == list(range(1, len(committed) + 1))
        record["rolled_back"] = len(state.rolled_back)
        record["media_corrected"] = len(state.media_corrected)
        record["torn_log_lines"] = len(set(state.torn_log_lines))
        record["digest"] = workload.logical_digest(state.read)
        record["result"] = "recovered"
    except ReproError as error:
        record["result"] = f"rejected:{type(error).__name__}"
        record["error"] = str(error)

    degraded = DegradedModeManager(system, injector=injector)
    report = scrub(system, degraded=degraded)
    record["scrub"] = {
        "clean": report.clean,
        "lines_checked": report.lines_checked,
        "mac_failures": len(report.mac_failures),
        "merkle_failures": len(report.merkle_failures),
        "dedup_failures": len(report.dedup_failures),
        "corrected_lines": len(report.corrected_lines),
        "poisoned_lines": len(report.poisoned_lines),
    }
    if injector is not None:
        record["injected"] = list(injector.injected)
    return record


def crash_mid_bmo(name: str, mode: str = "janus",
                  commit_index: int = 5,
                  params: Optional[WorkloadParams] = None,
                  seed: int = 7):
    """Crash in the mid-BMO window: metadata committed, data write
    not yet accepted into the persist domain.

    The pipeline commits unreconstructable metadata synchronously in
    ``_persist``; the write-queue acceptance (the ADR persist point)
    is a separate simulation event.  Stopping the simulator exactly
    between the two models a power failure in that window.  Returns
    ``(system, workload, snapshot)``; the caller recovers and checks
    the image still lands on a committed boundary.
    """
    params = params or WorkloadParams(n_items=8, value_size=64,
                                      n_transactions=10)
    system, workload = _build(name, mode, params, seed)
    original = system.pipeline.commit
    stop = system.sim.event("mid-bmo-crash")
    state = {"commits": 0}

    def wrapped(ctx):
        action = original(ctx)
        state["commits"] += 1
        if state["commits"] == commit_index and not stop.triggered:
            stop.succeed()
        return action

    system.pipeline.commit = wrapped
    system.sim.process(workload.run(), name="stream")
    system.sim.run(stop_event=stop)
    system.pipeline.commit = original
    if state["commits"] < commit_index:
        # Short run: fall back to crashing at the end (still valid).
        pass
    snapshot = system.crash()
    return system, workload, snapshot


# -- fault scenarios ---------------------------------------------------------
#: (label, kind, spec kwargs, bmos, expectation note).  ``after_n``
#: values are small so short scenario runs reliably reach them.
FAULT_SCENARIOS = (
    ("media-flip-correctable", "media_write_flip",
     {"after_n": 4, "bits": (13,)}, FAULT_BMOS,
     "single-bit media damage: ECC corrects during recovery/scrub"),
    ("media-flip-uncorrectable", "media_write_flip",
     {"after_n": 4, "bits": (3, 9)}, FAULT_BMOS,
     "double-bit same-word damage: detected, line poisoned"),
    ("media-read-transient", "media_read_transient",
     {"after_n": 2, "bits": (5, 21)}, FAULT_BMOS,
     "transient read damage: bounded retry re-fetches clean bytes"),
    ("meta-merkle", "meta_merkle",
     {"bits": (7,)}, ("dedup", "encryption", "integrity"),
     "Merkle leaf corruption at power loss: scrub localises it"),
    ("meta-counter", "meta_counter",
     {"bits": (0,)}, ("encryption", "integrity"),
     "counter bump at power loss: MAC chain breaks, IntegrityError"),
    ("irb-corrupt", "irb_corrupt",
     {"after_n": 2, "bits": (17,)}, None,
     "IRB data corruption: write-time mismatch forces recompute"),
    ("irb-stale", "irb_stale",
     {"after_n": 2}, None,
     "stale pre-executed result: invalidation refreshes it"),
    ("wq-drop", "wq_drop",
     {"after_n": 1}, None,
     "ADR drop at power loss: log CRC / MAC detects the hole"),
    ("wq-tear", "wq_tear",
     {"after_n": 1}, None,
     "ADR torn line at power loss: detected, never consumed"),
)


def _scenario_mode(kind: str) -> str:
    # IRB faults need the Janus engine; run everything under Janus so
    # the scenarios also cover the pre-execution datapath.
    return "janus"


def run_fault_scenario(label: str, kind: str, spec_kwargs: Dict,
                       bmos: Optional[Sequence[str]],
                       config: CampaignConfig) -> Dict:
    """Inject one fault class; classify and account for the outcome."""
    mode = _scenario_mode(kind)
    params = config.params()
    name = config.workloads[0]
    digests, horizon = reference_trajectory(name, mode, params,
                                            config.seed, bmos=bmos)
    plan = FaultPlan(seed=config.seed,
                     specs=[FaultSpec(kind=kind, **spec_kwargs)])
    # wq_* faults strike entries sitting in the ADR domain at power
    # loss; crash at an acceptance so one provably is.
    accept = 9 if kind.startswith("wq_") else None
    record = run_crash_point(name, mode, params, config.seed,
                             crash_at=0.6 * horizon, plan=plan,
                             bmos=bmos, crash_on_accept=accept)
    record["label"] = label
    record["kind"] = kind
    record["workload"] = name
    if record["result"] == "recovered":
        expected = digests.get(record["committed"])
        record["digest_ok"] = record["digest"] == expected

    injected = record.get("injected", [])
    scrub_info = record["scrub"]
    evidence = {
        "rejected": record["result"].startswith("rejected:"),
        "media_corrected": record.get("media_corrected", 0) > 0,
        "torn_log_lines": record.get("torn_log_lines", 0) > 0,
        "scrub_corrected": scrub_info["corrected_lines"] > 0,
        "scrub_poisoned": scrub_info["poisoned_lines"] > 0,
        "scrub_detected": (scrub_info["mac_failures"]
                           + scrub_info["merkle_failures"]
                           + scrub_info["dedup_failures"]) > 0,
    }
    record["evidence"] = evidence
    # Accounting: an injected fault must either leave the recovered
    # state consistent (absorbed by design: ECC fix, IRB recompute,
    # rollback) or leave explicit evidence.  A divergent digest with
    # no evidence is a silent failure.
    silent = (record["result"] == "recovered"
              and not record.get("digest_ok", False)
              and not any(evidence.values()))
    record["accounted"] = not injected or not silent
    record["silent"] = bool(injected) and silent
    return record


# -- the campaign ------------------------------------------------------------
def _crash_times(config: CampaignConfig, name: str, mode: str,
                 horizon: float) -> List[float]:
    """The seeded crash times for one workload x mode sweep."""
    rng = DeterministicRng(config.seed).stream(
        f"crash-points-{name}-{mode}")
    return [max(1.0, (i + rng.random()) / config.points * horizon)
            for i in range(config.points)]


def run_campaign(config: Optional[CampaignConfig] = None,
                 jobs: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 progress=None) -> Dict:
    """Run the full campaign; returns the (deterministic) report.

    ``jobs`` shards the independent simulation points (reference
    trajectories, crash points, fault scenarios) across worker
    processes via :mod:`repro.harness.parallel`.  Every point is a
    sealed seeded run and the report is assembled in sweep order, so
    the JSON document is **byte-identical for any job count** —
    including ``jobs=1``, which runs inline with no processes at all.
    A point that still fails after the executor's bounded retries
    (or exceeds ``timeout_s``) is recorded as a ``failed:`` result
    plus a ``point-failed`` violation instead of sinking the sweep.
    """
    config = config or CampaignConfig()
    executor = ParallelExecutor(jobs=jobs, timeout_s=timeout_s,
                                progress=progress)
    runlog.event("harness.crashtest", "campaign.start",
                 workloads=list(config.workloads),
                 modes=list(config.modes), points=config.points,
                 seed=config.seed)
    report: Dict = {
        "schema": SCHEMA,
        "config": config.to_dict(),
        "workloads": {},
        "fault_scenarios": [],
        "violations": [],
    }
    violations: List[Dict] = report["violations"]
    params = config.params()
    pairs = [(name, mode) for name in config.workloads
             for mode in config.modes]

    # Phase 1 — reference trajectories (one per workload x mode).
    # These anchor every downstream check, so a failure here is fatal.
    shard_kwargs = {} if config.shards == 1 \
        else {"shards": config.shards}
    references = executor.map_values([
        SweepTask(key=(name, mode), fn=_REFERENCE_FN,
                  kwargs=dict(name=name, mode=mode, params=params,
                              seed=config.seed, **shard_kwargs))
        for name, mode in pairs], strict=True)

    # Phase 2 — every crash point of every sweep, one task each.
    point_tasks = []
    crash_ats: Dict[Tuple, float] = {}
    for name, mode in pairs:
        _digests, horizon = references[(name, mode)]
        for i, crash_at in enumerate(
                _crash_times(config, name, mode, horizon)):
            crash_ats[(name, mode, i)] = crash_at
            point_tasks.append(SweepTask(
                key=(name, mode, i), fn=_CRASH_POINT_FN,
                kwargs=dict(name=name, mode=mode, params=params,
                            seed=config.seed, crash_at=crash_at,
                            **shard_kwargs)))
    point_results = {r.key: r for r in executor.map(point_tasks)}

    # Phase 3 — fault-class scenarios.
    scenario_results: Dict[str, "TaskResult"] = {}
    if config.fault_scenarios:
        scenario_results = {r.key[0]: r for r in executor.map([
            SweepTask(key=(label,), fn=_SCENARIO_FN,
                      kwargs=dict(label=label, kind=kind,
                                  spec_kwargs=dict(spec_kwargs),
                                  bmos=bmos, config=config))
            for label, kind, spec_kwargs, bmos, _note
            in FAULT_SCENARIOS])}

    # Assembly — strictly in sweep order, never completion order.
    for name in config.workloads:
        entry: Dict = {"modes": {}}
        report["workloads"][name] = entry
        reference: Optional[Dict[int, str]] = None
        for mode in config.modes:
            digests, horizon = references[(name, mode)]
            if reference is None:
                reference = digests
            elif digests != reference:
                violations.append({
                    "workload": name, "mode": mode,
                    "kind": "mode-divergence",
                    "detail": "reference trajectory differs from "
                              f"{config.modes[0]}",
                })
            points = []
            for i in range(config.points):
                crash_at = crash_ats[(name, mode, i)]
                outcome = point_results[(name, mode, i)]
                if not outcome.ok:
                    record = {"crash_at": crash_at, "mode": mode,
                              "result": "failed:" +
                              outcome.error.split(":", 1)[0],
                              "error": outcome.error}
                else:
                    record = outcome.value
                record["point"] = i
                if record["result"] == "recovered":
                    expected = digests.get(record["committed"])
                    record["digest_ok"] = record["digest"] == expected
                    for flag, kind in ((record["digest_ok"],
                                        "digest-mismatch"),
                                       (record["prefix_ok"],
                                        "commit-gap"),
                                       (record["scrub"]["clean"],
                                        "scrub-dirty")):
                        if not flag:
                            violations.append({
                                "workload": name, "mode": mode,
                                "point": i, "kind": kind,
                                "crash_at": crash_at,
                            })
                else:
                    # No faults are injected in the main sweep, so a
                    # rejection here is itself a violation; a point
                    # whose *simulation* failed (worker raised or
                    # timed out after retries) is one too.
                    violations.append({
                        "workload": name, "mode": mode, "point": i,
                        "kind": "point-failed"
                        if record["result"].startswith("failed:")
                        else "recovery-rejected",
                        "detail": record.get("error", ""),
                        "crash_at": crash_at,
                    })
                points.append(record)
            entry["modes"][mode] = {
                "horizon_ns": horizon,
                "reference_digests": {str(k): v
                                      for k, v in digests.items()},
                "points": points,
            }

    if config.fault_scenarios:
        for label, _kind, _spec_kwargs, _bmos, note in FAULT_SCENARIOS:
            outcome = scenario_results[label]
            if not outcome.ok:
                record = {"label": label,
                          "result": "failed:" +
                          outcome.error.split(":", 1)[0],
                          "error": outcome.error,
                          "accounted": False}
                violations.append({
                    "kind": "scenario-failed", "scenario": label,
                    "detail": outcome.error,
                })
            else:
                record = outcome.value
            record["note"] = note
            report["fault_scenarios"].append(record)
            if record.get("silent"):
                violations.append({
                    "kind": "silent-fault",
                    "scenario": label,
                    "detail": "injected fault produced a divergent "
                              "digest with no detection evidence",
                })

    report["summary"] = summarise(report)
    for violation in violations:
        runlog.event("harness.crashtest", "violation", level="error",
                     **violation)
    runlog.event("harness.crashtest", "campaign.done",
                 crash_points=report["summary"]["crash_points"],
                 violations=len(violations))
    return report


def summarise(report: Dict) -> Dict:
    points = 0
    recovered = 0
    rejected = 0
    injected = 0
    for entry in report["workloads"].values():
        for mode_entry in entry["modes"].values():
            for record in mode_entry["points"]:
                points += 1
                if record["result"] == "recovered":
                    recovered += 1
                else:
                    rejected += 1
    accounted = sum(1 for s in report["fault_scenarios"]
                    if s.get("accounted"))
    for scenario in report["fault_scenarios"]:
        injected += len(scenario.get("injected", []))
    return {
        "crash_points": points,
        "recovered": recovered,
        "rejected": rejected,
        "fault_scenarios": len(report["fault_scenarios"]),
        "faults_injected": injected,
        "scenarios_accounted": accounted,
        "violations": len(report["violations"]),
    }


# -- report I/O --------------------------------------------------------------
def render_json(report: Dict) -> str:
    """Canonical serialisation — byte-identical for identical runs."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def crashtest_path(directory: str = DEFAULT_DIR) -> str:
    from datetime import date
    return os.path.join(directory,
                        f"CRASHTEST_{date.today().isoformat()}.json")


def write_report(report: Dict, path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(render_json(report))


def render_summary(report: Dict) -> str:
    summary = report["summary"]
    lines = [
        f"crashtest: {summary['crash_points']} crash points "
        f"({summary['recovered']} recovered, "
        f"{summary['rejected']} rejected)",
        f"  fault scenarios: {summary['fault_scenarios']} "
        f"({summary['faults_injected']} faults injected, "
        f"{summary['scenarios_accounted']} accounted)",
    ]
    for scenario in report["fault_scenarios"]:
        status = "ok" if scenario.get("accounted") else "SILENT"
        lines.append(f"    {scenario['label']:28s} "
                     f"{scenario['result']:32s} {status}")
    if report["violations"]:
        lines.append(f"  VIOLATIONS: {len(report['violations'])}")
        for violation in report["violations"]:
            lines.append("    " + json.dumps(violation, sort_keys=True))
    else:
        lines.append("  invariants: all crash points recovered onto a "
                     "committed boundary; no silent faults")
    return "\n".join(lines)
