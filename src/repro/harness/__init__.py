"""Experiment harness: run design points, compute speedups, and
regenerate every table and figure of the paper's evaluation.

The per-figure drivers in :mod:`repro.harness.experiments` return
structured results *and* render the same rows/series the paper
reports; the files under ``benchmarks/`` are thin pytest-benchmark
wrappers around them.
"""

from repro.harness.parallel import (
    ParallelExecutor,
    SweepTask,
    TaskResult,
    resolve_jobs,
)
from repro.harness.report import Table, format_series
from repro.harness.runner import ExperimentResult, run_point, speedup_over

__all__ = [
    "ExperimentResult",
    "ParallelExecutor",
    "SweepTask",
    "Table",
    "TaskResult",
    "format_series",
    "resolve_jobs",
    "run_point",
    "speedup_over",
]
