"""Per-figure experiment drivers.

Every public function regenerates one table or figure from the paper's
evaluation and returns a :class:`FigureResult` whose ``rendered`` text
carries the same rows/series the paper reports.  The ``scale``
parameter trades fidelity for runtime (benchmarks use small scales;
the examples use larger ones).

Every parameter sweep (fig9-fig14, the composition ablation) first
builds an *ordered* list of design-point specs, executes them through
:mod:`repro.harness.parallel` (``jobs`` worker processes — each point
is a sealed, seeded simulation), and then assembles rows **in spec
order**, so the rendered table is byte-identical at any job count.
"""

import dataclasses
from dataclasses import dataclass, field as dc_field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bmo import build_pipeline
from repro.bmo.base import ExternalInput
from repro.common.config import DedupConfig, default_config
from repro.harness.parallel import ParallelExecutor, SweepTask
from repro.harness.report import Table, arithmetic_mean
from repro.harness.runner import (
    ExperimentResult,
    fully_pre_executed_fraction,
    run_point,
    speedup_over,
)
from repro.janus.overhead import hardware_overhead_report
from repro.workloads import WorkloadParams
from repro.workloads.registry import SCALABLE_WORKLOADS, WORKLOADS

ALL_WORKLOADS = list(WORKLOADS)


@dataclass
class FigureResult:
    """Structured data + rendered text for one experiment."""

    name: str
    data: Dict = dc_field(default_factory=dict)
    rendered: str = ""

    def __str__(self) -> str:
        return self.rendered


def _params(scale: float, value_size: int = 64,
            dedup_ratio: float = 0.5) -> WorkloadParams:
    return WorkloadParams(
        n_items=32,
        value_size=value_size,
        n_transactions=max(4, int(24 * scale)),
        dedup_ratio=dedup_ratio,
    )


#: Worker entry point for every figure sweep (resolved in the worker).
_RUN_POINT = "repro.harness.runner:run_point"

#: ``(key, run_point kwargs)`` — the unit every sweep is built from.
PointSpec = Tuple[Tuple, Dict]


def _sweep_points(specs: List[PointSpec],
                  jobs: Optional[int] = None,
                  progress: Optional[Callable[[int, int, int], None]]
                  = None) -> Dict[Tuple, ExperimentResult]:
    """Run an ordered spec list; return ``key -> ExperimentResult``.

    A figure with missing points is useless, so a point that still
    fails after the executor's bounded retries raises (strict mode)
    rather than rendering a partial table.
    """
    tasks = [SweepTask(key=key, fn=_RUN_POINT, kwargs=kwargs)
             for key, kwargs in specs]
    executor = ParallelExecutor(jobs=jobs, progress=progress)
    return executor.map_values(tasks, strict=True)


# ---------------------------------------------------------------------------
# Table 1 — BMO catalogue
# ---------------------------------------------------------------------------

def table1_bmo_catalog() -> FigureResult:
    """The BMO catalogue with per-write extra latency (paper Table 1)."""
    cfg = default_config()
    lat = cfg.bmo_latencies
    rows = [
        ("Encryption", "security",
         f"{lat.counter_gen_ns + lat.aes_ns + lat.xor_ns:.0f} ns",
         "counter-mode (E1-E3)"),
        ("Integrity verification", "security",
         f"{cfg.integrity.height * lat.sha1_ns:.0f} ns",
         f"{cfg.integrity.height}-level Merkle tree"),
        ("Deduplication", "bandwidth",
         f"{lat.md5_ns + lat.dedup_lookup_ns:.0f} ns",
         "MD5 fingerprint + lookup"),
        ("ORAM", "security",
         "~1000 ns", "Path ORAM (O1-O3)"),
        ("Compression", "bandwidth",
         f"{lat.compression_ns:.0f} ns", "FPC/BDI class"),
        ("Error correction", "durability",
         f"{lat.ecc_ns:.0f} ns", "ECP class"),
        ("Wear-leveling", "durability",
         f"{lat.wear_leveling_ns:.0f} ns", "Start-Gap"),
    ]
    table = Table("Table 1: backend memory operations",
                  ["BMO", "type", "extra write latency", "mechanism"])
    for row in rows:
        table.add_row(*row)
    return FigureResult("table1", data={"rows": rows},
                        rendered=table.render())


# ---------------------------------------------------------------------------
# Fig. 3 — undo-log timeline (serialized / parallel / pre-executed)
# ---------------------------------------------------------------------------

def fig3_timeline() -> FigureResult:
    """Static schedules for one write's BMOs under the three designs."""
    cfg = default_config()
    pipeline = build_pipeline(cfg)
    units = cfg.janus.bmo_units
    serial = pipeline.graph.serial_schedule(pipeline.bmo_order)
    parallel = pipeline.graph.parallel_schedule(units=units)
    # Pre-execution: address- and data-dependent parts done early;
    # nothing remains at write time.
    pre_done = pipeline.graph.runnable_with(
        frozenset({ExternalInput.ADDR, ExternalInput.DATA}))
    remaining = pipeline.graph.parallel_schedule(units=units,
                                                 done=pre_done)
    lines = [
        "Fig. 3: BMO latency of one write on the critical path",
        f"(a) serialized : {serial.makespan:7.1f} ns",
        f"(b) parallelized: {parallel.makespan:7.1f} ns",
        f"(c) pre-executed: {remaining.makespan:7.1f} ns "
        "(inputs known early; work done off the critical path)",
        "",
        "parallel schedule:",
        parallel.render(),
    ]
    return FigureResult(
        "fig3",
        data={"serialized_ns": serial.makespan,
              "parallel_ns": parallel.makespan,
              "pre_executed_ns": remaining.makespan},
        rendered="\n".join(lines))


# ---------------------------------------------------------------------------
# Fig. 6 — dependency graph and classification
# ---------------------------------------------------------------------------

def fig6_dependency_graph() -> FigureResult:
    """Decomposition + external-dependency classification."""
    cfg = default_config()
    pipeline = build_pipeline(cfg)
    labels = pipeline.classification()
    table = Table("Fig. 6: sub-operation classification",
                  ["sub-op", "BMO", "latency (ns)", "deps", "external"])
    for name in pipeline.all_subops:
        op = pipeline.graph.subops[name]
        table.add_row(name, op.bmo, op.latency_ns,
                      ",".join(op.deps) or "-", labels[name])
    return FigureResult("fig6", data={"classification": labels},
                        rendered=table.render())


# ---------------------------------------------------------------------------
# Fig. 9 — multi-core speedups
# ---------------------------------------------------------------------------

def fig9_multicore(scale: float = 1.0,
                   core_counts=(1, 2, 4, 8),
                   workloads: Optional[List[str]] = None,
                   jobs: Optional[int] = None,
                   progress=None) -> FigureResult:
    """Speedup of parallelization and Janus over serialized."""
    workloads = workloads or ALL_WORKLOADS
    params = _params(scale)
    specs: List[PointSpec] = []
    for name in workloads:
        for cores in core_counts:
            for mode, variant in (("serialized", None),
                                  ("parallel", None),
                                  ("janus", "manual")):
                specs.append(((name, cores, mode), dict(
                    workload=name, mode=mode, variant=variant,
                    cores=cores, params=params)))
    points = _sweep_points(specs, jobs=jobs, progress=progress)
    table = Table(
        "Fig. 9: speedup over the serialized design",
        ["workload", "cores", "parallelization", "pre-execution"])
    data: Dict = {}
    for name in workloads:
        for cores in core_counts:
            ser = points[(name, cores, "serialized")]
            par = points[(name, cores, "parallel")]
            jan = points[(name, cores, "janus")]
            s_par = speedup_over(ser, par)
            s_jan = speedup_over(ser, jan)
            data.setdefault(name, {})[cores] = (s_par, s_jan)
            table.add_row(name, cores, s_par, s_jan)
    for cores in core_counts:
        table.add_row(
            "avg", cores,
            arithmetic_mean([data[w][cores][0] for w in workloads]),
            arithmetic_mean([data[w][cores][1] for w in workloads]))
    return FigureResult("fig9", data=data, rendered=table.render())


# ---------------------------------------------------------------------------
# Fig. 10 — slowdown vs. non-blocking writeback
# ---------------------------------------------------------------------------

def fig10_ideal_comparison(scale: float = 1.0,
                           workloads: Optional[List[str]] = None,
                           jobs: Optional[int] = None,
                           progress=None) -> FigureResult:
    """Serialized and Janus slowdown over the ideal design, plus the
    fraction of writes whose BMOs were completely pre-executed."""
    workloads = workloads or ALL_WORKLOADS
    params = _params(scale)
    specs: List[PointSpec] = []
    for name in workloads:
        for mode, variant in (("serialized", None),
                              ("janus", "manual"), ("ideal", None)):
            specs.append(((name, mode), dict(
                workload=name, mode=mode, variant=variant,
                params=params)))
    points = _sweep_points(specs, jobs=jobs, progress=progress)
    table = Table(
        "Fig. 10: slowdown over non-blocking writeback (ideal)",
        ["workload", "serialized", "janus", "fully pre-executed"])
    data: Dict = {}
    for name in workloads:
        ser = points[(name, "serialized")]
        jan = points[(name, "janus")]
        ideal = points[(name, "ideal")]
        slow_ser = ser.elapsed_ns / ideal.elapsed_ns
        slow_jan = jan.elapsed_ns / ideal.elapsed_ns
        full = (jan.stats.get("janus.fully_pre_executed", 0)
                / max(1, jan.stats.get("mc.writebacks", 1)))
        data[name] = {"serialized": slow_ser, "janus": slow_jan,
                      "fully_pre_executed": full}
        table.add_row(name, slow_ser, slow_jan, f"{full * 100:.1f}%")
    table.add_row(
        "avg",
        arithmetic_mean([d["serialized"] for d in data.values()]),
        arithmetic_mean([d["janus"] for d in data.values()]),
        f"{arithmetic_mean([d['fully_pre_executed'] for d in data.values()]) * 100:.1f}%")
    return FigureResult("fig10", data=data, rendered=table.render())


# ---------------------------------------------------------------------------
# Scheduling-mode comparison (coalesced / async-epoch extensions)
# ---------------------------------------------------------------------------

#: The four modes of the documented consistency contract
#: (``docs/scheduling-modes.md``); ``parallel``/``ideal`` are
#: oracle-only and stay out of the headline comparison.
CONTRACT_MODES = ("serialized", "coalesced", "async-epoch", "janus")


def modes_comparison(scale: float = 1.0,
                     modes: Tuple[str, ...] = CONTRACT_MODES,
                     workloads: Optional[List[str]] = None,
                     jobs: Optional[int] = None,
                     progress=None) -> FigureResult:
    """Four-mode scheduling comparison across every workload.

    One row per workload: ns/transaction under each mode plus the
    speedup of each relaxed/pre-executing mode over the serialized
    baseline.  ``coalesced`` batches integrity-tree node charges
    across overlapping writebacks; ``async-epoch`` defers durability
    to epoch close (bounded by the staleness dial); ``janus`` is the
    paper's pre-execution design.
    """
    workloads = workloads or ALL_WORKLOADS
    params = _params(scale)
    specs: List[PointSpec] = []
    for name in workloads:
        for mode in modes:
            variant = "manual" if mode == "janus" else None
            specs.append(((name, mode), dict(
                workload=name, mode=mode, variant=variant,
                params=params)))
    points = _sweep_points(specs, jobs=jobs, progress=progress)
    header = ["workload"]
    header += [f"{m} ns/txn" for m in modes]
    header += [f"{m} speedup" for m in modes if m != "serialized"]
    table = Table(
        "Scheduling modes: ns/transaction and speedup over serialized",
        header)
    data: Dict = {}
    txns = params.n_transactions
    for name in workloads:
        ser = points[(name, "serialized")]
        row: List = [name]
        entry: Dict = {}
        for mode in modes:
            res = points[(name, mode)]
            ns_per_txn = res.elapsed_ns / max(1, txns)
            entry[mode] = {"elapsed_ns": res.elapsed_ns,
                           "ns_per_txn": ns_per_txn}
            row.append(ns_per_txn)
        for mode in modes:
            if mode == "serialized":
                continue
            s = speedup_over(ser, points[(name, mode)])
            entry[mode]["speedup"] = s
            row.append(s)
        data[name] = entry
        table.add_row(*row)
    avg_row: List = ["avg"]
    for mode in modes:
        avg_row.append(arithmetic_mean(
            [data[w][mode]["ns_per_txn"] for w in workloads]))
    for mode in modes:
        if mode == "serialized":
            continue
        avg_row.append(arithmetic_mean(
            [data[w][mode]["speedup"] for w in workloads]))
    table.add_row(*avg_row)
    return FigureResult("modes", data=data, rendered=table.render())


# ---------------------------------------------------------------------------
# Sharded-controller scaling sweep (docs/sharding.md)
# ---------------------------------------------------------------------------

#: Every scheduling mode — the sharded topology must honour all six
#: per-shard, so the sweep covers the full contract, not just the
#: headline four.
ALL_MODES = ("serialized", "parallel", "janus", "ideal",
             "coalesced", "async-epoch")


def shards_sweep(scale: float = 1.0,
                 shards: Tuple[int, ...] = (1, 2, 4),
                 modes: Tuple[str, ...] = ALL_MODES,
                 workloads: Optional[List[str]] = None,
                 cores: int = 4,
                 jobs: Optional[int] = None,
                 progress=None) -> FigureResult:
    """Speedup vs. shard count across every workload and mode.

    One row per ``(workload, mode)``: ns/transaction at each shard
    count plus the speedup of each sharded topology over ``shards=1``
    *within the same mode*.  Every point runs with the invariant
    checker attached (``check_invariants=True``), so a rendered table
    doubles as a ``--check``-clean certificate for the sharded
    machine.

    Four cores by default: channel parallelism only matters once the
    write stream is wide enough to queue, and the flush-bound
    ``async-epoch`` mode is where per-shard channel groups pay off.
    The strict modes are BMO-bound (the shared pipeline is the
    critical path), so their rows are expected to stay flat — an
    honest negative result the table reports rather than hides.
    """
    workloads = workloads or ALL_WORKLOADS
    params = _params(scale)
    specs: List[PointSpec] = []
    for name in workloads:
        for mode in modes:
            variant = "manual" if mode == "janus" else None
            for n_shards in shards:
                specs.append(((name, mode, n_shards), dict(
                    workload=name, mode=mode, variant=variant,
                    cores=cores, params=params, shards=n_shards,
                    check_invariants=True)))
    points = _sweep_points(specs, jobs=jobs, progress=progress)
    base = shards[0]
    header = ["workload", "mode"]
    header += [f"s={n} ns/txn" for n in shards]
    header += [f"s={n} speedup" for n in shards if n != base]
    table = Table(
        f"Sharded controllers: ns/transaction and speedup over "
        f"shards={base} ({cores} cores, invariants checked)",
        header)
    data: Dict = {}
    txns = params.n_transactions
    for name in workloads:
        for mode in modes:
            ref = points[(name, mode, base)]
            row: List = [name, mode]
            entry: Dict = {}
            for n_shards in shards:
                res = points[(name, mode, n_shards)]
                entry[n_shards] = {
                    "elapsed_ns": res.elapsed_ns,
                    "ns_per_txn": res.elapsed_ns / max(1, txns),
                }
                row.append(entry[n_shards]["ns_per_txn"])
            for n_shards in shards:
                if n_shards == base:
                    continue
                s = speedup_over(ref, points[(name, mode, n_shards)])
                entry[n_shards]["speedup"] = s
                row.append(s)
            data[(name, mode)] = entry
            table.add_row(*row)
    for mode in modes:
        avg_row: List = ["avg", mode]
        for n_shards in shards:
            avg_row.append(arithmetic_mean(
                [data[(w, mode)][n_shards]["ns_per_txn"]
                 for w in workloads]))
        for n_shards in shards:
            if n_shards == base:
                continue
            avg_row.append(arithmetic_mean(
                [data[(w, mode)][n_shards]["speedup"]
                 for w in workloads]))
        table.add_row(*avg_row)
    # JSON-friendly data keys ("workload/mode" instead of a tuple).
    flat = {f"{w}/{m}": {str(n): v for n, v in entry.items()}
            for (w, m), entry in data.items()}
    return FigureResult("shards", data=flat, rendered=table.render())


# ---------------------------------------------------------------------------
# Fig. 11 — manual vs. automated instrumentation
# ---------------------------------------------------------------------------

def fig11_compiler(scale: float = 1.0,
                   workloads: Optional[List[str]] = None,
                   include_profile_guided: bool = False,
                   jobs: Optional[int] = None,
                   progress=None) -> FigureResult:
    """Manual vs. compiler-pass instrumentation speedups.

    ``include_profile_guided`` adds the §6 dynamic-analysis extension
    as a third column (not a paper bar; it shows how much of the
    static pass's gap runtime information recovers).
    """
    workloads = workloads or ALL_WORKLOADS
    params = _params(scale)
    variants = [("serialized", None), ("janus", "manual"),
                ("janus", "auto")]
    if include_profile_guided:
        variants.append(("janus", "profile"))
    specs: List[PointSpec] = []
    for name in workloads:
        for mode, variant in variants:
            specs.append(((name, mode, variant), dict(
                workload=name, mode=mode, variant=variant,
                params=params)))
    points = _sweep_points(specs, jobs=jobs, progress=progress)
    columns = ["workload", "manual", "auto"]
    if include_profile_guided:
        columns.append("profile-guided")
    columns.append("auto/manual")
    table = Table(
        "Fig. 11: Janus speedup, manual vs. automated instrumentation",
        columns)
    data: Dict = {}
    for name in workloads:
        ser = points[(name, "serialized", None)]
        manual = points[(name, "janus", "manual")]
        auto = points[(name, "janus", "auto")]
        s_manual = speedup_over(ser, manual)
        s_auto = speedup_over(ser, auto)
        data[name] = {"manual": s_manual, "auto": s_auto}
        row = [name, s_manual, s_auto]
        if include_profile_guided:
            profile = points[(name, "janus", "profile")]
            data[name]["profile"] = speedup_over(ser, profile)
            row.append(data[name]["profile"])
        row.append(s_auto / s_manual)
        table.add_row(*row)
    mean_manual = arithmetic_mean([d["manual"] for d in data.values()])
    mean_auto = arithmetic_mean([d["auto"] for d in data.values()])
    avg_row = ["avg", mean_manual, mean_auto]
    if include_profile_guided:
        avg_row.append(arithmetic_mean(
            [d["profile"] for d in data.values()]))
    avg_row.append(mean_auto / mean_manual)
    table.add_row(*avg_row)
    return FigureResult("fig11", data=data, rendered=table.render())


# ---------------------------------------------------------------------------
# Fig. 12 — deduplication ratios and fingerprint algorithms
# ---------------------------------------------------------------------------

def fig12_dedup(scale: float = 1.0,
                ratios=(0.25, 0.5, 0.75),
                algorithms=("md5", "crc32"),
                workloads: Optional[List[str]] = None,
                jobs: Optional[int] = None,
                progress=None) -> FigureResult:
    """Janus speedup under different dedup ratios and algorithms."""
    workloads = workloads or ALL_WORKLOADS
    specs: List[PointSpec] = []
    for name in workloads:
        for algorithm in algorithms:
            for ratio in ratios:
                cfg = default_config()
                cfg = cfg.replace(dedup=DedupConfig(
                    target_ratio=ratio, algorithm=algorithm))
                params = _params(scale, dedup_ratio=ratio)
                base = dict(workload=name, params=params, config=cfg)
                specs.append((
                    (name, algorithm, ratio, "serialized"),
                    dict(base, mode="serialized")))
                specs.append((
                    (name, algorithm, ratio, "janus"),
                    dict(base, mode="janus", variant="manual")))
    points = _sweep_points(specs, jobs=jobs, progress=progress)
    table = Table(
        "Fig. 12: Janus speedup vs. dedup ratio and fingerprint",
        ["workload", "algorithm", "ratio", "speedup"])
    data: Dict = {}
    for name in workloads:
        for algorithm in algorithms:
            for ratio in ratios:
                ser = points[(name, algorithm, ratio, "serialized")]
                jan = points[(name, algorithm, ratio, "janus")]
                speedup = speedup_over(ser, jan)
                data.setdefault(name, {})[(algorithm, ratio)] = speedup
                table.add_row(name, algorithm, ratio, speedup)
    return FigureResult("fig12", data=data, rendered=table.render())


# ---------------------------------------------------------------------------
# Fig. 13 — transaction size sweep
# ---------------------------------------------------------------------------

def fig13_transaction_size(scale: float = 1.0,
                           sizes=(64, 256, 1024, 4096, 8192),
                           workloads: Optional[List[str]] = None,
                           jobs: Optional[int] = None,
                           progress=None) -> FigureResult:
    """Parallelization and pre-execution speedups vs. update size
    (the five scalable workloads; TATP/TPCC keep their semantics)."""
    workloads = workloads or SCALABLE_WORKLOADS
    specs: List[PointSpec] = []
    for name in workloads:
        for size in sizes:
            params = WorkloadParams(
                n_items=8, value_size=size,
                n_transactions=max(3, int(8 * scale)))
            for mode, variant in (("serialized", None),
                                  ("parallel", None),
                                  ("janus", "manual")):
                specs.append(((name, size, mode), dict(
                    workload=name, mode=mode, variant=variant,
                    params=params)))
    points = _sweep_points(specs, jobs=jobs, progress=progress)
    table = Table(
        "Fig. 13: speedup vs. transaction update size",
        ["workload", "size (B)", "parallelization", "pre-execution"])
    data: Dict = {}
    for name in workloads:
        for size in sizes:
            ser = points[(name, size, "serialized")]
            par = points[(name, size, "parallel")]
            jan = points[(name, size, "janus")]
            s_par = speedup_over(ser, par)
            s_jan = speedup_over(ser, jan)
            data.setdefault(name, {})[size] = (s_par, s_jan)
            table.add_row(name, size, s_par, s_jan)
    return FigureResult("fig13", data=data, rendered=table.render())


# ---------------------------------------------------------------------------
# Fig. 14 — BMO unit / buffer scaling
# ---------------------------------------------------------------------------

def _fig14_label_config(resource_scale):
    cfg = default_config()
    if resource_scale is None:
        janus_cfg = dataclasses.replace(
            cfg.janus, unlimited_resources=True)
        label = "unlimited"
    else:
        janus_cfg = dataclasses.replace(
            cfg.janus, resource_scale=resource_scale)
        label = f"{resource_scale}x"
    return label, cfg.replace(janus=janus_cfg)


def fig14_resources(scale: float = 1.0,
                    scales=(1, 2, 4, None),
                    value_size: int = 8192,
                    workloads: Optional[List[str]] = None,
                    jobs: Optional[int] = None,
                    progress=None) -> FigureResult:
    """Janus speedup with 1x/2x/4x/unlimited pre-execution resources
    at a fixed large transaction size.  The serialized baseline keeps
    the default hardware (the paper scales only Janus's resources)."""
    workloads = workloads or SCALABLE_WORKLOADS
    params = WorkloadParams(n_items=8, value_size=value_size,
                            n_transactions=max(3, int(6 * scale)))
    specs: List[PointSpec] = []
    for name in workloads:
        specs.append(((name, "serialized"), dict(
            workload=name, mode="serialized", params=params)))
        for resource_scale in scales:
            label, cfg = _fig14_label_config(resource_scale)
            specs.append(((name, label), dict(
                workload=name, mode="janus", variant="manual",
                params=params, config=cfg)))
    points = _sweep_points(specs, jobs=jobs, progress=progress)
    table = Table(
        "Fig. 14: Janus speedup vs. BMO units and buffer entries",
        ["workload", "resources", "speedup"])
    data: Dict = {}
    for name in workloads:
        baseline = points[(name, "serialized")]
        for resource_scale in scales:
            label, _cfg = _fig14_label_config(resource_scale)
            speedup = speedup_over(baseline, points[(name, label)])
            data.setdefault(name, {})[label] = speedup
            table.add_row(name, label, speedup)
    return FigureResult("fig14", data=data, rendered=table.render())


# ---------------------------------------------------------------------------
# Extra: BMO-composition sensitivity (which backend costs what)
# ---------------------------------------------------------------------------

def bmo_composition(scale: float = 1.0,
                    workload: str = "array_swap",
                    jobs: Optional[int] = None,
                    progress=None) -> FigureResult:
    """Serialized cost and Janus recovery for growing BMO stacks.

    Not a paper figure — an ablation DESIGN.md calls out: it shows how
    each backend contributes to the write-path tax and how much of
    each contribution pre-execution wins back.
    """
    stacks = [
        ("encryption",),
        ("encryption", "integrity"),
        ("dedup", "encryption", "integrity"),
        ("dedup", "encryption", "integrity", "ecc"),
        ("wear_leveling", "dedup", "encryption", "integrity", "ecc"),
    ]
    params = _params(scale)
    specs: List[PointSpec] = []
    for stack in stacks:
        cfg = default_config(bmos=stack)
        base = dict(workload=workload, params=params, config=cfg)
        specs.append(((stack, "serialized"),
                      dict(base, mode="serialized")))
        specs.append(((stack, "janus"),
                      dict(base, mode="janus", variant="manual")))
    points = _sweep_points(specs, jobs=jobs, progress=progress)
    table = Table(
        "BMO composition: serialized tax and Janus recovery",
        ["BMO stack", "serial BMO (ns)", "ns/txn serialized",
         "ns/txn janus", "janus speedup"])
    data: Dict = {}
    for stack in stacks:
        cfg = default_config(bmos=stack)
        ser = points[(stack, "serialized")]
        jan = points[(stack, "janus")]
        serial_ns = build_pipeline(cfg).serial_latency()
        speedup = speedup_over(ser, jan)
        data["+".join(stack)] = {
            "serial_bmo_ns": serial_ns,
            "serialized_ns_per_txn": ser.ns_per_transaction,
            "janus_ns_per_txn": jan.ns_per_transaction,
            "speedup": speedup,
        }
        table.add_row("+".join(stack), serial_ns,
                      ser.ns_per_transaction, jan.ns_per_transaction,
                      speedup)
    return FigureResult("bmo_composition", data=data,
                        rendered=table.render())


# ---------------------------------------------------------------------------
# §5.2.7 — hardware overhead
# ---------------------------------------------------------------------------

def overhead_analysis() -> FigureResult:
    """Storage and area overhead of the Janus hardware."""
    report = hardware_overhead_report()
    rendered = "Section 5.2.7: hardware overhead\n" + \
        "\n".join(report.lines())
    return FigureResult("overhead", data=dataclasses.asdict(report),
                        rendered=rendered)
