"""Per-write latency tracing.

Attach a :class:`WriteTracer` to a system before running programs and
every critical-path writeback is recorded with its phase breakdown:

* ``transfer`` — cache hierarchy -> memory controller (~15 ns);
* ``bmo``      — backend-memory-operation time on the critical path
  (zero when a fully pre-executed IRB entry served the write);
* ``persist``  — write-queue acceptance (and metadata atomicity waits).

The tracer answers the question the paper's Fig. 1 poses — *where does
the write's critical latency go?* — for live runs, and exports CSV for
offline analysis.

Since the unified observability layer (:mod:`repro.obs`), this class
is a thin *consumer* of the system-wide span tracer: ``attach``
registers a sink on ``system.tracer`` and reconstructs
:class:`WriteRecord` entries from the memory controller's ``write``
spans.  The public API (``records``, ``phase_means``, ``to_csv``,
...) is unchanged; for timelines and sub-operation spans, export the
span tracer itself via :func:`repro.obs.export_chrome_trace`.
"""

import csv
import io
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.stats import Histogram


@dataclass
class WriteRecord:
    """One traced writeback."""

    thread_id: int
    line_addr: int
    start_ns: float
    mc_arrival_ns: float
    bmo_done_ns: float
    persisted_ns: float
    critical: bool

    @property
    def transfer_ns(self) -> float:
        return self.mc_arrival_ns - self.start_ns

    @property
    def bmo_ns(self) -> float:
        return self.bmo_done_ns - self.mc_arrival_ns

    @property
    def persist_ns(self) -> float:
        return self.persisted_ns - self.bmo_done_ns

    @property
    def total_ns(self) -> float:
        return self.persisted_ns - self.start_ns


class WriteTracer:
    """Collects :class:`WriteRecord` entries from a memory controller.

    Usage::

        system = NvmSystem(cfg)
        tracer = WriteTracer.attach(system)
        system.run_programs([...])
        print(tracer.summary())
    """

    def __init__(self) -> None:
        self.records: List[WriteRecord] = []

    @classmethod
    def attach(cls, system) -> "WriteTracer":
        """Subscribe to ``system``'s span tracer (enabling it)."""
        tracer = cls()
        system.tracer.add_sink(tracer.on_event)
        return tracer

    def add(self, record: WriteRecord) -> None:
        self.records.append(record)

    def on_event(self, event: dict) -> None:
        """Span-tracer sink: fold ``write`` spans into records."""
        if event.get("ph") != "X" or event.get("cat") != "write":
            return
        args = event.get("args", {})
        self.add(WriteRecord(
            thread_id=args["thread_id"],
            line_addr=args["line_addr"],
            start_ns=event["ts"],
            mc_arrival_ns=args["mc_arrival_ns"],
            bmo_done_ns=args["bmo_done_ns"],
            persisted_ns=args["persisted_ns"],
            critical=args["critical"]))

    def __len__(self) -> int:
        return len(self.records)

    # -- analysis -----------------------------------------------------------
    def phase_means(self) -> Dict[str, float]:
        if not self.records:
            return {"transfer": 0.0, "bmo": 0.0, "persist": 0.0,
                    "total": 0.0}
        n = len(self.records)
        return {
            "transfer": sum(r.transfer_ns for r in self.records) / n,
            "bmo": sum(r.bmo_ns for r in self.records) / n,
            "persist": sum(r.persist_ns for r in self.records) / n,
            "total": sum(r.total_ns for r in self.records) / n,
        }

    def bmo_histogram(self) -> Histogram:
        hist = Histogram("bmo_ns")
        for record in self.records:
            hist.observe(record.bmo_ns)
        return hist

    def zero_bmo_fraction(self) -> float:
        """Writes whose BMO time was (near-)zero — the fully
        pre-executed ones."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.bmo_ns < 1.0) \
            / len(self.records)

    def summary(self) -> str:
        means = self.phase_means()
        return (
            f"{len(self.records)} writes traced | mean critical path "
            f"{means['total']:.1f} ns = transfer {means['transfer']:.1f}"
            f" + BMO {means['bmo']:.1f} + persist {means['persist']:.1f}"
            f" | {self.zero_bmo_fraction() * 100:.0f}% zero-BMO")

    # -- export ---------------------------------------------------------------
    def to_csv(self, path: Optional[str] = None) -> str:
        """Write records as CSV; returns the CSV text."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["thread", "line_addr", "start_ns",
                         "transfer_ns", "bmo_ns", "persist_ns",
                         "total_ns", "critical"])
        for r in self.records:
            writer.writerow([r.thread_id, f"{r.line_addr:#x}",
                             f"{r.start_ns:.2f}",
                             f"{r.transfer_ns:.2f}",
                             f"{r.bmo_ns:.2f}",
                             f"{r.persist_ns:.2f}",
                             f"{r.total_ns:.2f}",
                             int(r.critical)])
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text
