"""ASCII bar charts for figure data.

The paper's evaluation figures are grouped bar charts; the drivers in
:mod:`repro.harness.experiments` return the underlying numbers, and
this module renders them the way the paper draws them — one group per
workload, one bar per series — so a terminal run reads like the
figure.
"""

from typing import Dict, List, Optional, Sequence


def bar_chart(title: str,
              groups: Dict[str, Dict[str, float]],
              unit: str = "x",
              width: int = 44,
              baseline: Optional[float] = 1.0) -> str:
    """Render grouped horizontal bars.

    ``groups`` maps group label -> {series label -> value}.  A
    ``baseline`` (default 1.0 — the serialized reference in every
    speedup figure) is marked with ``|`` on each bar's scale.
    """
    lines = [title]
    all_values = [v for series in groups.values()
                  for v in series.values()]
    if not all_values:
        lines.append("  (no data)")
        return "\n".join(lines)
    peak = max(all_values + ([baseline] if baseline else []))
    label_width = max((len(s) for series in groups.values()
                       for s in series), default=4)

    def bar(value: float) -> str:
        filled = int(round(width * value / peak)) if peak else 0
        cells = ["#"] * filled + [" "] * (width - filled)
        if baseline and 0 < baseline <= peak:
            mark = min(width - 1, int(round(width * baseline / peak)))
            if cells[mark] == " ":
                cells[mark] = "|"
        return "".join(cells)

    for group, series in groups.items():
        lines.append(f"{group}:")
        for label, value in series.items():
            lines.append(f"  {label:<{label_width}} "
                         f"[{bar(value)}] {value:.2f}{unit}")
    return "\n".join(lines)


def fig9_chart(data: Dict[str, Dict[int, Sequence[float]]]) -> str:
    """Fig. 9 as bars: per workload, parallelization vs pre-execution
    at each core count."""
    groups: Dict[str, Dict[str, float]] = {}
    for workload, per_cores in data.items():
        series: Dict[str, float] = {}
        for cores, (parallel, janus) in sorted(per_cores.items()):
            series[f"{cores}-core parallel"] = parallel
            series[f"{cores}-core janus"] = janus
        groups[workload] = series
    return bar_chart("Fig. 9 (bars): speedup over serialized", groups)


def fig11_chart(data: Dict[str, Dict[str, float]]) -> str:
    """Fig. 11 as bars: manual vs auto (vs profile when present)."""
    groups = {workload: dict(series)
              for workload, series in data.items()}
    return bar_chart(
        "Fig. 11 (bars): instrumentation variants", groups)


def series_chart(title: str, series: Dict[str, Dict],
                 unit: str = "x") -> str:
    """Generic one-level chart: {label: value}."""
    return bar_chart(title, {"": series}, unit=unit)


def save_chart(text: str, path) -> str:
    """Write a rendered chart to ``path``, creating missing parent
    directories (``repro figure --chart --out`` must not require a
    pre-existing ``results/`` tree)."""
    from repro.harness.report import write_text
    return write_text(text, path)
