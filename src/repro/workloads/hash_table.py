"""Hash table: upsert random keys into a chained hash table.

The paper singles this workload out (§5.2.1, trend 2): the update
location is discovered by the chain walk *immediately before* the
update, so the address-dependent pre-execution window is short and the
speedup smaller than Array Swap / B-Tree / TATP.
"""

import struct

from repro.compiler import (
    AddrGen,
    Fence,
    Hook,
    InstrumentationPlan,
    Store,
    Template,
    Writeback,
)
from repro.compiler.instrument import Directive
from repro.compiler.ir import LogBackup, Value
from repro.common.units import CACHE_LINE_BYTES
from repro.workloads.base import TransactionalWorkload, commit_template_tail

_NODE = struct.Struct("<QQQ")  # key, value_ptr, next


class HashTableWorkload(TransactionalWorkload):
    """Chained hash table with line-sized nodes (Table 4)."""

    name = "hash_table"
    scalable = True

    N_BUCKETS = 128

    def setup(self) -> None:
        heap = self.system.heap
        self.buckets = heap.alloc_line(self.N_BUCKETS * 8,
                                       label="ht-buckets")
        self.seed(self.buckets, bytes(self.N_BUCKETS * 8))
        # Pre-populate with n_items keys.
        for key in range(self.params.n_items):
            self._seed_insert(key)

    def _bucket_addr(self, key: int) -> int:
        return self.buckets + (key % self.N_BUCKETS) * 8

    def _seed_insert(self, key: int) -> None:
        heap = self.system.heap
        blob = heap.alloc_line(self.params.value_size, label="ht-blob")
        node = heap.alloc_line(CACHE_LINE_BYTES, label="ht-node")
        self.seed(blob, self.make_value())
        bucket = self._bucket_addr(key)
        old_head = int.from_bytes(
            self.system.volatile.read(bucket, 8), "little")
        self.seed(node, _NODE.pack(key, blob, old_head).ljust(
            CACHE_LINE_BYTES, b"\x00"))
        line = bytearray(self.system.volatile.read_line(
            bucket - bucket % CACHE_LINE_BYTES))
        offset = bucket % CACHE_LINE_BYTES
        line[offset:offset + 8] = node.to_bytes(8, "little")
        self.seed(bucket - offset, bytes(line))

    # -- chain walk (simulated reads) -----------------------------------
    def _find(self, key: int):
        """Generator: walk the chain; returns (node_addr, value_ptr)."""
        head = yield from self.core.read(self._bucket_addr(key), 8)
        node = int.from_bytes(head, "little")
        while node:
            raw = yield from self.core.read(node, CACHE_LINE_BYTES)
            node_key, value_ptr, next_node = _NODE.unpack_from(raw)
            if node_key == key:
                return node, value_ptr
            node = next_node
        return 0, 0

    def transaction(self):
        size = self.params.value_size
        key = self.pick_index()
        new_value = self.make_value()
        yield from self.fire_hook("entry", {
            "value": (None, new_value, size),
        })
        node, value_ptr = yield from self._find(key)
        if node == 0:
            # Key absent (only possible pre-population miss): walk
            # found nothing; update the newest node in the bucket
            # instead so every transaction exercises the update path.
            head = yield from self.core.read(self._bucket_addr(key), 8)
            node = int.from_bytes(head, "little")
            if node == 0:
                return
            raw = yield from self.core.read(node, CACHE_LINE_BYTES)
            _k, value_ptr, _n = _NODE.unpack_from(raw)
        # after_lookup: the update address is finally known — the
        # short pre-execution window the paper describes.
        yield from self.fire_hook("after_lookup", {
            "value": (value_ptr, new_value, size),
        })
        txn = self.log.begin()
        yield from self.fire_hook("pre_commit",
                                  self.commit_env(txn, [size]))
        yield from txn.backup(value_ptr, size)
        yield from txn.fence_backups()
        yield from txn.write(value_ptr, new_value)
        yield from txn.fence_updates()
        yield from txn.commit()

    # -- functional check ---------------------------------------------------
    def lookup_value(self, key: int) -> bytes:
        """Non-simulated lookup for tests."""
        bucket = self._bucket_addr(key)
        node = int.from_bytes(
            self.system.volatile.read(bucket, 8), "little")
        while node:
            raw = self.system.volatile.read(node, CACHE_LINE_BYTES)
            node_key, value_ptr, next_node = _NODE.unpack_from(raw)
            if node_key == key:
                return self.system.volatile.read(
                    value_ptr, self.params.value_size)
            node = next_node
        return b""

    # -- logical state ---------------------------------------------------------
    def logical_state(self, read) -> dict:
        from repro.common.errors import RecoveryError

        limit = self.params.n_items + self.params.n_transactions + 8
        table = {}
        for b in range(self.N_BUCKETS):
            node = int.from_bytes(read(self.buckets + b * 8, 8),
                                  "little")
            chain, seen = [], set()
            while node:
                if node in seen:
                    raise RecoveryError(
                        f"hash chain cycle at node {node:#x}")
                if len(chain) > limit:
                    raise RecoveryError("hash chain exceeds bound")
                seen.add(node)
                key, value_ptr, next_node = _NODE.unpack_from(
                    read(node, CACHE_LINE_BYTES))
                chain.append([key,
                              read(value_ptr, self.params.value_size)
                              if value_ptr else b""])
                node = next_node
            if chain:
                table[b] = chain
        return {"buckets": table}

    # -- template / plans -----------------------------------------------------
    @classmethod
    def template(cls) -> Template:
        return Template(
            name=cls.name,
            args=("key", "new_value"),
            body=[
                Hook("entry"),
                # The chain walk: address known only after probing.
                AddrGen("slot", inputs=("key",), memory_dependent=True),
                Hook("after_lookup"),
                LogBackup("slot", obj="value"),
                Fence(),
                Store("slot", "new_value", obj="value"),
                Writeback("slot", obj="value"),
                Fence(),
            ] + commit_template_tail())

    @classmethod
    def manual_plan(cls) -> InstrumentationPlan:
        plan = InstrumentationPlan(template=f"{cls.name}-manual")
        # The data is known at entry (before the walk) — the manual
        # programmer exploits that; the pass does too (val from args).
        plan.add("entry", Directive("data", "value"))
        plan.add("after_lookup", Directive("addr", "value"))
        plan.add("pre_commit", Directive("both_val", "commit"))
        return plan
