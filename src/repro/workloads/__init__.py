"""The seven NVM transactional workloads of Table 4.

Every workload is an undo-logging transactional program over real data
structures laid out on the NVM heap: Array Swap, Queue (linked list),
Hash Table, RB-Tree, B-Tree, TATP-style subscriber updates, and
TPC-C-style new-order inserts.

Each workload provides three instrumentation variants driven through
one mechanism (:class:`InstrumentationPlan` consulted at named hook
points):

* ``baseline``  — the uninstrumented program (serialized / parallel /
  ideal modes);
* ``auto``      — the plan produced by the compiler pass over the
  workload's IR template (§4.5);
* ``manual``    — the hand-written best-effort plan (§4.4), which may
  exploit runtime knowledge the static pass cannot (loops, pointers,
  deferred/coalesced requests, commit-value pre-execution).
"""

from repro.workloads.array_swap import ArraySwapWorkload
from repro.workloads.base import TransactionalWorkload, WorkloadParams
from repro.workloads.btree import BTreeWorkload
from repro.workloads.hash_table import HashTableWorkload
from repro.workloads.queue_wl import QueueWorkload
from repro.workloads.rbtree import RBTreeWorkload
from repro.workloads.registry import WORKLOADS, make_workload
from repro.workloads.tatp import TatpWorkload
from repro.workloads.tpcc import TpccWorkload

__all__ = [
    "ArraySwapWorkload",
    "BTreeWorkload",
    "HashTableWorkload",
    "QueueWorkload",
    "RBTreeWorkload",
    "TatpWorkload",
    "TpccWorkload",
    "TransactionalWorkload",
    "WORKLOADS",
    "WorkloadParams",
    "make_workload",
]
