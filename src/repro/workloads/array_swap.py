"""Array Swap: swap two random items in a persistent array.

The friendliest workload for pre-execution: both item addresses are
pure functions of the transaction arguments (hoistable), and the data
of each in-place write is known as soon as the two items are read —
long before the backups persist.  Both the manual and the automated
plans cover every blocking write (Fig. 11 shows them nearly tied).
"""

from repro.compiler import (
    AddrGen,
    Fence,
    Hook,
    InstrumentationPlan,
    Store,
    Template,
    Writeback,
)
from repro.compiler.instrument import Directive
from repro.compiler.ir import LogBackup, Value
from repro.workloads.base import TransactionalWorkload, commit_template_tail


class ArraySwapWorkload(TransactionalWorkload):
    """Swap random items in an array (Table 4, "Array Swap")."""

    name = "array_swap"
    scalable = True

    def setup(self) -> None:
        item = self.params.value_size
        self.base = self.system.heap.alloc_line(
            self.params.n_items * item, label="swap-array")
        for i in range(self.params.n_items):
            self.seed(self.base + i * item, self.make_value())

    def _addr(self, index: int) -> int:
        return self.base + index * self.params.value_size

    def transaction(self):
        size = self.params.value_size
        i = self.pick_index()
        j = self.pick_index()
        while j == i and self.params.n_items > 1:
            j = self.pick_index()
        addr_i, addr_j = self._addr(i), self._addr(j)

        # entry: both addresses are already known.
        yield from self.fire_hook("entry", {
            "item_i": (addr_i, None, size),
            "item_j": (addr_j, None, size),
        })
        value_i = yield from self.core.read(addr_i, size)
        value_j = yield from self.core.read(addr_j, size)
        # after_read: the data of both in-place writes is now known.
        yield from self.fire_hook("after_read", {
            "item_i": (addr_i, value_j, size),
            "item_j": (addr_j, value_i, size),
        })

        txn = self.log.begin()
        # The commit record's address and content are both predictable
        # here (two backups of known size will precede it), so its
        # BMOs can overlap the whole backup/update phases.
        yield from self.fire_hook("pre_commit",
                                  self.commit_env(txn, [size, size]))
        yield from txn.backup(addr_i, size)
        yield from txn.backup(addr_j, size)
        yield from txn.fence_backups()
        yield from txn.write(addr_i, value_j)
        yield from txn.write(addr_j, value_i)
        yield from txn.fence_updates()
        yield from txn.commit()

    # -- logical state ------------------------------------------------------
    def logical_state(self, read) -> dict:
        size = self.params.value_size
        return {"items": [read(self._addr(i), size)
                          for i in range(self.params.n_items)]}

    # -- static template (what the compiler pass sees) ----------------------
    @classmethod
    def template(cls) -> Template:
        return Template(
            name=cls.name,
            args=("i", "j"),
            body=[
                Hook("entry"),
                AddrGen("loc_i", inputs=("i",)),
                AddrGen("loc_j", inputs=("j",)),
                Value("val_i"),   # loaded
                Value("val_j"),
                Hook("after_read"),
                LogBackup("loc_i", obj="item_i"),
                LogBackup("loc_j", obj="item_j"),
                Fence(),
                Store("loc_i", "val_j", obj="item_i"),
                Store("loc_j", "val_i", obj="item_j"),
                Writeback("loc_i", obj="item_i"),
                Writeback("loc_j", obj="item_j"),
                Fence(),
            ] + commit_template_tail())

    @classmethod
    def manual_plan(cls) -> InstrumentationPlan:
        plan = InstrumentationPlan(template=f"{cls.name}-manual")
        plan.add("entry", Directive("addr", "item_i"))
        plan.add("entry", Directive("addr", "item_j"))
        plan.add("after_read", Directive("data", "item_i"))
        plan.add("after_read", Directive("data", "item_j"))
        plan.add("pre_commit", Directive("both_val", "commit"))
        return plan
