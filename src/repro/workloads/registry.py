"""Workload registry and factory."""

from typing import Dict, Optional, Type

from repro.common.errors import ConfigError
from repro.compiler import InstrumentationPlan
from repro.workloads.array_swap import ArraySwapWorkload
from repro.workloads.base import TransactionalWorkload, WorkloadParams
from repro.workloads.btree import BTreeWorkload
from repro.workloads.hash_table import HashTableWorkload
from repro.workloads.queue_wl import QueueWorkload
from repro.workloads.rbtree import RBTreeWorkload
from repro.workloads.tatp import TatpWorkload
from repro.workloads.tpcc import TpccWorkload

#: The paper's Table 4 suite, in its order.
WORKLOADS: Dict[str, Type[TransactionalWorkload]] = {
    "array_swap": ArraySwapWorkload,
    "queue": QueueWorkload,
    "hash_table": HashTableWorkload,
    "rbtree": RBTreeWorkload,
    "btree": BTreeWorkload,
    "tatp": TatpWorkload,
    "tpcc": TpccWorkload,
}

#: The five workloads whose transaction size scales (Fig. 13/14).
SCALABLE_WORKLOADS = [name for name, cls in WORKLOADS.items()
                      if cls.scalable]

INSTRUMENTATION_VARIANTS = ("baseline", "manual", "auto", "profile")


def plan_for(workload_cls: Type[TransactionalWorkload],
             variant: str,
             params: Optional[WorkloadParams] = None
             ) -> InstrumentationPlan:
    """The instrumentation plan for a variant of a workload."""
    if variant == "baseline":
        return InstrumentationPlan.empty(workload_cls.name)
    if variant == "manual":
        return workload_cls.manual_plan()
    if variant == "auto":
        return workload_cls.auto_plan()
    if variant == "profile":
        # §6 future-work: dynamic (profile-guided) instrumentation.
        from repro.compiler.profile_guided import \
            build_profile_guided_plan
        return build_profile_guided_plan(workload_cls.name,
                                         params=params)
    raise ConfigError(f"unknown instrumentation variant {variant!r}")


def make_workload(name: str, system, core,
                  params: Optional[WorkloadParams] = None,
                  variant: str = "manual") -> TransactionalWorkload:
    """Construct and seed a workload instance on one core."""
    if name not in WORKLOADS:
        raise ConfigError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(WORKLOADS)}")
    cls = WORKLOADS[name]
    params = params or WorkloadParams()
    workload = cls(system, core, params,
                   plan=plan_for(cls, variant, params=params))
    workload.setup()
    return workload
