"""TATP-style subscriber updates (Table 4, "TATP").

Models ``UPDATE_SUBSCRIBER_DATA``: pick a random subscriber id, update
two fields of its fixed-layout record.  The record address is a pure
function of the id (``base + s_id * record_size``) and both field
values are transaction arguments, so pre-execution has the widest
possible window — TATP is among the biggest winners in Fig. 9.

The two sub-line field updates also showcase the *deferred* interface
(paper Fig. 8b): the manual plan buffers one ``PRE_BOTH_BUF`` per
field and releases them with ``PRE_START_BUF`` so requests to the same
cache line coalesce.
"""

from repro.compiler import (
    AddrGen,
    Fence,
    Hook,
    InstrumentationPlan,
    Store,
    Template,
    Writeback,
)
from repro.compiler.instrument import Directive
from repro.compiler.ir import LogBackup
from repro.common.units import CACHE_LINE_BYTES
from repro.workloads.base import TransactionalWorkload, commit_template_tail


class TatpWorkload(TransactionalWorkload):
    """Random subscriber-record updates."""

    name = "tatp"
    scalable = False  # fixed-semantics benchmark (paper §5.2.5)

    #: Subscriber record: two separately-updated line-sized fields
    #: (bit/hex flags line, numberx line).
    RECORD_LINES = 2

    def setup(self) -> None:
        self.record_size = self.RECORD_LINES * CACHE_LINE_BYTES
        self.base = self.system.heap.alloc_line(
            self.params.n_items * self.record_size, label="tatp-subs")
        for s_id in range(self.params.n_items):
            self.seed(self.base + s_id * self.record_size,
                      self.make_value(self.record_size))

    def _record_addr(self, s_id: int) -> int:
        return self.base + s_id * self.record_size

    # -- logical state ------------------------------------------------------
    def logical_state(self, read) -> dict:
        return {"records": [read(self._record_addr(s), self.record_size)
                            for s in range(self.params.n_items)]}

    def transaction(self):
        s_id = self.pick_index()
        record = self._record_addr(s_id)
        # Two 32-byte flag fields share the record's first line (the
        # Fig. 8b shape: separate updates, one cache line) and the
        # "numberx" field occupies the second line wholesale.
        field_a = record
        field_b = record + 32
        numberx = record + CACHE_LINE_BYTES
        rnd = self._value_rng
        new_a = bytes(rnd.getrandbits(8) for _ in range(32))
        new_b = bytes(rnd.getrandbits(8) for _ in range(32))
        new_numberx = self.make_value(CACHE_LINE_BYTES)

        # Address AND data are argument-derived: everything is known
        # at entry.
        yield from self.fire_hook("entry", {
            "field_a": (field_a, new_a, 32),
            "field_b": (field_b, new_b, 32),
            "numberx": (numberx, new_numberx, CACHE_LINE_BYTES),
            "fields_start": (field_a, None, 0),
        })

        txn = self.log.begin()
        yield from self.fire_hook(
            "pre_commit", self.commit_env(txn, [self.record_size]))
        yield from txn.backup(record, self.record_size)
        yield from txn.fence_backups()
        yield from self.core.store(field_a, new_a)
        yield from self.core.store(field_b, new_b)
        yield from self.core.clwb(record, CACHE_LINE_BYTES)
        yield from txn.write(numberx, new_numberx)
        yield from txn.fence_updates()
        yield from txn.commit()

    # -- template / plans ----------------------------------------------------
    @classmethod
    def template(cls) -> Template:
        return Template(
            name=cls.name,
            args=("s_id", "new_a", "new_b", "new_nx"),
            body=[
                Hook("entry"),
                AddrGen("field_a", inputs=("s_id",)),
                AddrGen("field_b", inputs=("s_id",)),
                AddrGen("numberx", inputs=("s_id",)),
                LogBackup("field_a", obj="field_a"),
                Fence(),
                Store("field_a", "new_a", obj="field_a"),
                Store("field_b", "new_b", obj="field_b"),
                Store("numberx", "new_nx", obj="numberx"),
                Writeback("field_a", obj="field_a"),
                Writeback("field_b", obj="field_b"),
                Writeback("numberx", obj="numberx"),
                Fence(),
            ] + commit_template_tail())

    @classmethod
    def manual_plan(cls) -> InstrumentationPlan:
        plan = InstrumentationPlan(template=f"{cls.name}-manual")
        # Deferred + coalesced (Fig. 8b shape), then released.
        plan.add("entry", Directive("both_buf", "field_a",
                                    group="fields"))
        plan.add("entry", Directive("both_buf", "field_b",
                                    group="fields"))
        plan.add("entry", Directive("start", "fields_start",
                                    group="fields"))
        plan.add("entry", Directive("both", "numberx"))
        plan.add("pre_commit", Directive("both_val", "commit"))
        return plan
