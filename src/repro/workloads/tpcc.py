"""TPC-C-style NEW_ORDER transactions (Table 4, "TPCC").

Models the write path of NEW_ORDER against warehouse tables laid out
on the NVM heap: read and bump the district's ``next_o_id``, insert an
ORDER record, insert 5-15 ORDER-LINE records, commit.

The order-line inserts run in a data-dependent loop — the automated
pass skips them (§4.5.2), while the manual plan pre-executes each line
as it is produced.  The order record's address derives from the loaded
``next_o_id``, so its pre-execution window opens right after the
district read, early in the transaction.
"""

import struct

from repro.compiler import (
    AddrGen,
    Fence,
    Hook,
    InstrumentationPlan,
    Loop,
    Store,
    Template,
    Writeback,
)
from repro.compiler.instrument import Directive
from repro.compiler.ir import LogBackup, Value
from repro.common.units import CACHE_LINE_BYTES
from repro.workloads.base import TransactionalWorkload, commit_template_tail

_DISTRICT = struct.Struct("<QQ")   # next_o_id, ytd
_ORDER = struct.Struct("<QQQB")    # o_id, c_id, entry_d, ol_cnt

MAX_ORDER_LINES = 15


class TpccWorkload(TransactionalWorkload):
    """NEW_ORDER inserts."""

    name = "tpcc"
    scalable = False  # fixed-semantics benchmark (paper §5.2.5)

    def setup(self) -> None:
        heap = self.system.heap
        self.max_orders = self.params.n_transactions + 8
        self.district_addr = heap.alloc_line(CACHE_LINE_BYTES,
                                             label="tpcc-district")
        self.seed(self.district_addr,
                  _DISTRICT.pack(1, 0).ljust(CACHE_LINE_BYTES, b"\x00"))
        self.order_size = CACHE_LINE_BYTES
        self.orders_base = heap.alloc_line(
            self.max_orders * self.order_size, label="tpcc-orders")
        self.ol_size = max(CACHE_LINE_BYTES, self.params.value_size)
        self.ol_base = heap.alloc_line(
            self.max_orders * MAX_ORDER_LINES * self.ol_size,
            label="tpcc-orderlines")
        self.orders_inserted = 0

    def _order_addr(self, o_id: int) -> int:
        return self.orders_base + (o_id % self.max_orders) \
            * self.order_size

    def _ol_addr(self, o_id: int, index: int) -> int:
        slot = (o_id % self.max_orders) * MAX_ORDER_LINES + index
        return self.ol_base + slot * self.ol_size

    def transaction(self):
        # entry: only the (global) district address is known yet.
        yield from self.fire_hook("entry", {
            "district": (self.district_addr, None, CACHE_LINE_BYTES)})
        # Read the district record: next_o_id determines every insert
        # address for this order.
        district = yield from self.core.read(self.district_addr,
                                             CACHE_LINE_BYTES)
        next_o_id, ytd = _DISTRICT.unpack_from(district)
        o_id = next_o_id
        ol_cnt = 5 + self._choice_rng.randrange(MAX_ORDER_LINES - 5 + 1)
        c_id = self.pick_index()

        order_addr = self._order_addr(o_id)
        order_record = _ORDER.pack(o_id, c_id, 20190622, ol_cnt).ljust(
            CACHE_LINE_BYTES, b"\x00")
        new_district = _DISTRICT.pack(next_o_id + 1, ytd + 1).ljust(
            CACHE_LINE_BYTES, b"\x00")

        # after_district_read: every insert address is now known.
        yield from self.fire_hook("after_district_read", {
            "order": (order_addr, order_record, CACHE_LINE_BYTES),
            "district": (self.district_addr, new_district,
                         CACHE_LINE_BYTES),
        })

        # All order-line payloads and addresses are known before the
        # backup phase — the manual plan pre-executes each one here,
        # one loop iteration per line, which the static pass cannot do
        # (§4.5.2); the window spans the backup fence.
        order_lines = []
        for i in range(ol_cnt):
            ol_addr = self._ol_addr(o_id, i)
            ol_data = self.make_value(self.ol_size)
            order_lines.append((ol_addr, ol_data))
            yield from self.fire_hook("ol_iter", {
                "order_line": (ol_addr, ol_data, self.ol_size)})

        txn = self.log.begin()
        yield from self.fire_hook(
            "pre_commit", self.commit_env(txn, [CACHE_LINE_BYTES]))
        yield from txn.backup(self.district_addr, CACHE_LINE_BYTES)
        yield from txn.fence_backups()
        yield from txn.write(self.district_addr, new_district)
        yield from txn.write(order_addr, order_record)
        for ol_addr, ol_data in order_lines:
            yield from txn.write(ol_addr, ol_data)
        yield from txn.fence_updates()
        yield from txn.commit()
        self.orders_inserted += 1

    # -- logical state ---------------------------------------------------------
    def logical_state(self, read) -> dict:
        from repro.common.errors import RecoveryError

        next_o_id, ytd = _DISTRICT.unpack_from(
            read(self.district_addr, CACHE_LINE_BYTES))
        if not 1 <= next_o_id <= self.max_orders + 1:
            raise RecoveryError(
                f"district next_o_id {next_o_id} out of range")
        orders = []
        for o_id in range(1, next_o_id):
            raw = read(self._order_addr(o_id), CACHE_LINE_BYTES)
            rec_o_id, c_id, entry_d, ol_cnt = _ORDER.unpack_from(raw)
            if rec_o_id != o_id:
                raise RecoveryError(
                    f"order slot {o_id} holds o_id {rec_o_id}")
            if not 5 <= ol_cnt <= MAX_ORDER_LINES:
                raise RecoveryError(
                    f"order {o_id} ol_cnt {ol_cnt} out of range")
            lines = [read(self._ol_addr(o_id, i), self.ol_size)
                     for i in range(ol_cnt)]
            orders.append({"o_id": o_id, "c_id": c_id,
                           "ol_cnt": ol_cnt, "lines": lines})
        return {"next_o_id": next_o_id, "ytd": ytd, "orders": orders}

    def on_restore(self, read) -> None:
        """Rederive the insert counter from the recovered district
        record (``next_o_id`` starts at 1)."""
        next_o_id, _ytd = _DISTRICT.unpack_from(
            read(self.district_addr, CACHE_LINE_BYTES))
        self.orders_inserted = next_o_id - 1

    # -- functional check -----------------------------------------------------
    def read_order(self, o_id: int):
        raw = self.system.volatile.read(self._order_addr(o_id),
                                        CACHE_LINE_BYTES)
        return _ORDER.unpack_from(raw)

    # -- template / plans ---------------------------------------------------------
    @classmethod
    def template(cls) -> Template:
        return Template(
            name=cls.name,
            args=("c_id",),
            body=[
                Hook("entry"),
                # next_o_id is loaded from the district record.
                AddrGen("order_slot", inputs=(), memory_dependent=True),
                Value("order_record"),
                Value("new_district"),
                AddrGen("district", inputs=()),
                Hook("after_district_read"),
                LogBackup("district", obj="district"),
                Fence(),
                Store("district", "new_district", obj="district"),
                Store("order_slot", "order_record", obj="order"),
                Writeback("district", obj="district"),
                Writeback("order_slot", obj="order"),
                Loop(body=[
                    AddrGen("ol_slot", inputs=("order_slot",),
                            memory_dependent=True),
                    Value("ol_data"),
                    Store("ol_slot", "ol_data", obj="order_line"),
                    Writeback("ol_slot", obj="order_line"),
                ]),
                Fence(),
            ] + commit_template_tail())

    @classmethod
    def manual_plan(cls) -> InstrumentationPlan:
        plan = InstrumentationPlan(template=f"{cls.name}-manual")
        plan.add("after_district_read", Directive("both", "order"))
        plan.add("after_district_read", Directive("both", "district"))
        plan.add("ol_iter", Directive("both", "order_line"))
        plan.add("pre_commit", Directive("both_val", "commit"))
        return plan
