"""Shared workload infrastructure: parameters, value generation with a
target deduplication ratio, hook-driven instrumentation, fast seeding.
"""

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import RecoveryError, SimulationError
from repro.common.units import CACHE_LINE_BYTES, align_up, line_span
from repro.compiler import AutoInstrumenter, InstrumentationPlan
from repro.compiler.ir import (
    AddrGen,
    Fence,
    Hook,
    Store,
    Template,
    Value,
    Writeback,
)
from repro.consistency.undo_log import UndoLog
from repro.janus.api import PreObj


def _jsonable(value):
    """Recursively convert a logical state to JSON-able primitives."""
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def commit_template_tail():
    """IR statements for the transaction-commit step.

    The undo-log library is small and inlined by the compiler the
    paper builds on (LLVM after inlining sees the commit record's
    store and writeback inside the transaction function), so every
    workload template ends with this tail.  The commit record's
    address comes from the log allocator (memory-dependent — known at
    the ``pre_commit`` hook, where the runtime predicts it from the
    planned backups) and its content from the transaction id.
    """
    return [
        AddrGen("commit_rec", inputs=(), memory_dependent=True),
        Value("commit_record"),
        Hook("pre_commit"),
        Store("commit_rec", "commit_record", obj="commit"),
        Writeback("commit_rec", obj="commit"),
        Fence(),
    ]


@dataclass
class WorkloadParams:
    """Knobs shared by every workload."""

    #: Number of items/records in the pre-populated structure.
    n_items: int = 256
    #: Bytes updated per transaction (64 B default; Fig. 13 sweeps
    #: this from 64 B to 8 KB on the scalable workloads).
    value_size: int = 64
    #: Transactions to execute per core.
    n_transactions: int = 50
    #: Target fraction of written lines that duplicate existing data
    #: (drives the dedup mechanism; paper default 0.5).
    dedup_ratio: float = 0.5

    def validate(self) -> "WorkloadParams":
        if self.n_items <= 0 or self.n_transactions <= 0:
            raise SimulationError("n_items / n_transactions must be > 0")
        if self.value_size <= 0 or self.value_size % CACHE_LINE_BYTES:
            raise SimulationError(
                "value_size must be a positive multiple of 64")
        if not 0.0 <= self.dedup_ratio <= 1.0:
            raise SimulationError("dedup_ratio must be in [0, 1]")
        return self


class TransactionalWorkload:
    """Base class: hook firing, value generation, functional seeding."""

    name = "base"
    #: Whether Fig. 13/14 may scale this workload's transaction size.
    scalable = True

    def __init__(self, system, core, params: WorkloadParams,
                 plan: Optional[InstrumentationPlan] = None):
        self.system = system
        self.core = core
        self.params = params.validate()
        self.plan = plan if plan is not None \
            else InstrumentationPlan.empty(self.name)
        self.log = UndoLog(core, capacity_bytes=max(
            1 << 20, 8 * params.n_transactions
            * (params.value_size + 2 * CACHE_LINE_BYTES)))
        rng = system.rng.fork(f"{self.name}-core{core.core_id}")
        self._value_rng = rng.stream("values")
        self._choice_rng = rng.stream("choices")
        self._pool: List[bytes] = []
        self._preobjs: Dict[str, PreObj] = {}
        self.completed_transactions = 0

    # -- construction hooks (overridden) -----------------------------------
    def setup(self) -> None:
        """Allocate and functionally seed the data structure."""
        raise NotImplementedError

    def transaction(self):
        """Generator: one transaction (simulation process fragment)."""
        raise NotImplementedError

    @classmethod
    def template(cls) -> Template:
        """The static IR the compiler pass analyses."""
        raise NotImplementedError

    @classmethod
    def manual_plan(cls) -> InstrumentationPlan:
        """Best-effort hand instrumentation (§4.4)."""
        raise NotImplementedError

    @classmethod
    def auto_plan(cls) -> InstrumentationPlan:
        """What the compiler pass produces for this workload."""
        return AutoInstrumenter().instrument(cls.template())

    # -- driving -------------------------------------------------------------
    def run(self):
        """Generator: execute ``n_transactions`` transactions."""
        for _ in range(self.params.n_transactions):
            self._preobjs = {}
            yield from self.transaction()
            self.completed_transactions += 1

    # -- instrumentation ------------------------------------------------------
    def fire_hook(self, hook: str, env: Dict[str, Tuple]):
        """Issue the plan's directives for ``hook``.

        ``env`` maps object labels to ``(addr, data, size)``; entries
        the current knowledge cannot fill use ``None``.
        """
        observe = getattr(self.plan, "observe", None)
        if observe is not None:
            # Profiling run (profile-guided instrumentation, §6):
            # record what was available here instead of issuing.
            observe(hook, env)
        api = self.core.api
        if not api.enabled:
            return
        for directive in self.plan.at(hook):
            addr, data, size = env.get(directive.obj,
                                       (None, None, 0))
            obj = self._preobj_for(directive.group or directive.obj)
            kind = directive.kind
            if kind == "addr" and addr is not None:
                yield from api.pre_addr(obj, addr, size or 64)
            elif kind == "data" and data is not None:
                yield from api.pre_data(obj, data)
            elif kind == "both" and addr is not None and data is not None:
                yield from api.pre_both(obj, addr, data, size)
            elif kind == "both_val" and addr is not None \
                    and data is not None:
                yield from api.pre_both_val(obj, addr, 0, line_image=data)
            elif kind == "addr_buf" and addr is not None:
                yield from api.pre_addr_buf(obj, addr, size or 64)
            elif kind == "data_buf" and data is not None:
                yield from api.pre_data_buf(obj, data)
            elif kind == "both_buf" and addr is not None \
                    and data is not None:
                yield from api.pre_both_buf(obj, addr, data, size)
            elif kind == "start":
                yield from api.pre_start_buf(obj)

    def _preobj_for(self, obj_label: str) -> PreObj:
        if obj_label not in self._preobjs:
            self._preobjs[obj_label] = self.core.api.pre_init()
        return self._preobjs[obj_label]

    # -- value generation -------------------------------------------------------
    def make_value(self, nbytes: Optional[int] = None) -> bytes:
        """A value whose lines duplicate existing data at the target
        rate — this is what gives the dedup mechanism its hit ratio."""
        nbytes = nbytes if nbytes is not None else self.params.value_size
        nbytes = align_up(nbytes)
        lines = []
        for _ in range(nbytes // CACHE_LINE_BYTES):
            if self._pool and \
                    self._choice_rng.random() < self.params.dedup_ratio:
                lines.append(self._choice_rng.choice(self._pool))
            else:
                fresh = bytes(self._value_rng.getrandbits(8)
                              for _ in range(CACHE_LINE_BYTES))
                self._pool.append(fresh)
                lines.append(fresh)
        return b"".join(lines)

    def pick_index(self, bound: Optional[int] = None) -> int:
        return self._choice_rng.randrange(
            bound if bound is not None else self.params.n_items)

    # -- functional seeding --------------------------------------------------------
    def seed(self, addr: int, data: bytes) -> None:
        """Install initial data with consistent BMO metadata, outside
        simulated time (setup is not part of any measured figure)."""
        system = self.system
        system.volatile.write(addr, data)
        for line in line_span(addr, len(data)):
            line_data = system.volatile.read_line(line)
            ctx = system.pipeline.make_context(addr=line, data=line_data)
            system.pipeline.execute_all(ctx)
            action = system.pipeline.commit(ctx)
            if action.write_data:
                system.nvm.write_line(action.device_addr, action.payload)
        for line_offset in range(0, align_up(len(data)),
                                 CACHE_LINE_BYTES):
            chunk = data[line_offset:line_offset + CACHE_LINE_BYTES]
            if len(chunk) == CACHE_LINE_BYTES:
                self._pool.append(chunk)

    # -- resume-on-recovered-image support (soak harness) ---------------------
    def on_restore(self, read) -> None:
        """Rebuild volatile Python-side bookkeeping from a recovered
        image.  ``read(addr, size) -> bytes`` is the recovered view.

        Called by the soak harness after it reseeds this (freshly
        constructed) workload's allocations with recovered bytes, so a
        subclass can rederive cursors it normally tracks in Python
        (queue length, insert counters).  Default: nothing to do.
        """

    def refork_streams(self, tag: str) -> None:
        """Re-derive the value/choice rng streams under a cycle tag.

        A restored workload must not replay the rng positions of a
        fresh one — the soak harness tags each cycle so the resumed
        run and its reference twin draw identical, cycle-unique
        streams.
        """
        rng = self.system.rng.fork(
            f"{self.name}-core{self.core.core_id}-{tag}")
        self._value_rng = rng.stream("values")
        self._choice_rng = rng.stream("choices")

    # -- logical state (crash-campaign support) ------------------------------
    def logical_state(self, read) -> dict:
        """Structure-aware decode of the persistent image.

        ``read(addr, size) -> bytes`` abstracts over the live
        volatile image (``system.volatile.read``) and a post-crash
        ``RecoveredState.read`` — the crash campaign compares the two
        to prove recovery lands on a committed-transaction boundary.

        Subclasses return a JSON-able summary of the user-visible
        structure.  Traversals must be cycle- and size-guarded: a
        damaged image raises :class:`RecoveryError` instead of
        looping forever or decoding garbage into a plausible state.
        """
        raise NotImplementedError

    def logical_digest(self, read) -> str:
        """Canonical sha256 hex digest of :meth:`logical_state`."""
        blob = json.dumps(_jsonable(self.logical_state(read)),
                          sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- common transaction helpers ---------------------------------------------
    def commit_env(self, txn, planned_payload_sizes=()) -> Dict[str, Tuple]:
        """Environment entry for pre-executing the commit record.

        Pass the payload sizes of the backups the transaction will
        perform to predict the record's address *before* the backup
        phase — that is what opens a useful pre-execution window for
        the commit (Fig. 3c overlaps the commit BMOs with the earlier
        transaction steps).
        """
        return {"commit": (
            txn.next_commit_record_addr(planned_payload_sizes),
            txn.commit_record_preview(),
            CACHE_LINE_BYTES)}
