"""Red-black tree: insert/update random keys.

A real CLRS red-black tree over NVM-resident 64-byte nodes.  The
transaction computes the structural mutation (descent + recolouring +
rotations) first, then persists it undo-log style: back up every node
it will touch, apply the new node images, commit.

Two properties matter for Janus:

* the set of written nodes is discovered *during* the computation, so
  the update writebacks execute in a loop over a runtime-sized dirty
  set — the automated pass gives up on them (§4.5.2), which is why
  RB-Tree profits little from automated instrumentation in Fig. 11;
* the lookup-then-update shape leaves a short pre-execution window
  even for the manual plan (§5.2.1 trend 2).
"""

import struct
from typing import Dict, List, Optional, Tuple

from repro.compiler import (
    AddrGen,
    Fence,
    Hook,
    InstrumentationPlan,
    Loop,
    Store,
    Template,
    Writeback,
)
from repro.compiler.instrument import Directive
from repro.compiler.ir import LogBackup, Value
from repro.common.errors import SimulationError
from repro.common.units import CACHE_LINE_BYTES
from repro.workloads.base import TransactionalWorkload, commit_template_tail

_NODE = struct.Struct("<QQQQQB")  # key, value_ptr, left, right, parent, color
RED, BLACK = 0, 1
NIL = 0


def _pack(node: dict) -> bytes:
    return _NODE.pack(node["key"], node["value_ptr"], node["left"],
                      node["right"], node["parent"],
                      node["color"]).ljust(CACHE_LINE_BYTES, b"\x00")


def _unpack(raw: bytes) -> dict:
    key, value_ptr, left, right, parent, color = _NODE.unpack_from(raw)
    return {"key": key, "value_ptr": value_ptr, "left": left,
            "right": right, "parent": parent, "color": color}


class RBTreeWorkload(TransactionalWorkload):
    """Persistent red-black tree (Table 4, "RB-Tree")."""

    name = "rbtree"
    scalable = True

    def setup(self) -> None:
        heap = self.system.heap
        self.meta_addr = heap.alloc_line(CACHE_LINE_BYTES,
                                         label="rbt-meta")
        self.seed(self.meta_addr, bytes(CACHE_LINE_BYTES))
        self.key_space = max(2 * self.params.n_items, 16)
        for _ in range(self.params.n_items):
            self._seed_insert(self.pick_index(self.key_space))

    # -- functional (non-simulated) operations used for seeding/tests -----
    def _vread(self, addr: int) -> dict:
        return _unpack(self.system.volatile.read(addr, CACHE_LINE_BYTES))

    def _root(self) -> int:
        return int.from_bytes(
            self.system.volatile.read(self.meta_addr, 8), "little")

    def _seed_insert(self, key: int) -> None:
        cache: Dict[int, dict] = {}
        dirty: List[int] = []
        new_root, node_addr, blob = self._compute_insert(
            key, cache, dirty, reader=self._vread)
        for addr in dirty:
            self.seed(addr, _pack(cache[addr]))
        self.seed(self.meta_addr, new_root.to_bytes(8, "little").ljust(
            CACHE_LINE_BYTES, b"\x00"))

    # -- the mutation computation (shared by seeded and simulated paths) ----
    def _compute_insert(self, key: int, cache: Dict[int, dict],
                        dirty: List[int], reader,
                        fresh: Optional[set] = None
                        ) -> Tuple[int, int, int]:
        """Compute an insert/update.  ``reader(addr)`` loads a node;
        mutations land in ``cache`` and are recorded in ``dirty`` in
        first-touch order; newly-allocated node addresses are added to
        ``fresh`` (they need no undo record).  Returns
        (new_root, node_addr, blob_addr).
        """
        heap = self.system.heap
        fresh = fresh if fresh is not None else set()

        def load(addr: int) -> dict:
            if addr not in cache:
                cache[addr] = reader(addr)
            return cache[addr]

        def touch(addr: int) -> dict:
            node = load(addr)
            if addr not in dirty:
                dirty.append(addr)
            return node

        root = self._pending_root

        # Standard BST descent.
        parent, current = NIL, root
        while current != NIL:
            node = load(current)
            if key == node["key"]:
                # Update-in-place: fresh blob pointer.
                blob = heap.alloc_line(self.params.value_size,
                                       label="rbt-blob")
                touch(current)["value_ptr"] = blob
                return root, current, blob
            parent = current
            current = node["left"] if key < node["key"] else node["right"]

        blob = heap.alloc_line(self.params.value_size, label="rbt-blob")
        node_addr = heap.alloc_line(CACHE_LINE_BYTES, label="rbt-node")
        cache[node_addr] = {"key": key, "value_ptr": blob, "left": NIL,
                            "right": NIL, "parent": parent, "color": RED}
        dirty.append(node_addr)
        fresh.add(node_addr)
        if parent == NIL:
            root = node_addr
        elif key < load(parent)["key"]:
            touch(parent)["left"] = node_addr
        else:
            touch(parent)["right"] = node_addr

        # CLRS fixup.
        def rotate(x_addr: int, left: bool) -> None:
            nonlocal root
            x = touch(x_addr)
            y_addr = x["right"] if left else x["left"]
            y = touch(y_addr)
            child = y["left"] if left else y["right"]
            if left:
                x["right"] = child
            else:
                x["left"] = child
            if child != NIL:
                touch(child)["parent"] = x_addr
            y["parent"] = x["parent"]
            if x["parent"] == NIL:
                root = y_addr
            else:
                p = touch(x["parent"])
                if p["left"] == x_addr:
                    p["left"] = y_addr
                else:
                    p["right"] = y_addr
            if left:
                y["left"] = x_addr
            else:
                y["right"] = x_addr
            x["parent"] = y_addr

        z = node_addr
        while z != root and load(load(z)["parent"])["color"] == RED:
            z_parent = load(z)["parent"]
            grand = load(z_parent)["parent"]
            if grand == NIL:
                break
            parent_is_left = load(grand)["left"] == z_parent
            uncle = load(grand)["right"] if parent_is_left \
                else load(grand)["left"]
            if uncle != NIL and load(uncle)["color"] == RED:
                touch(z_parent)["color"] = BLACK
                touch(uncle)["color"] = BLACK
                touch(grand)["color"] = RED
                z = grand
            else:
                if parent_is_left and load(z_parent)["right"] == z:
                    z = z_parent
                    rotate(z, left=True)
                elif not parent_is_left and load(z_parent)["left"] == z:
                    z = z_parent
                    rotate(z, left=False)
                z_parent = load(z)["parent"]
                grand = load(z_parent)["parent"]
                touch(z_parent)["color"] = BLACK
                if grand != NIL:
                    touch(grand)["color"] = RED
                    rotate(grand, left=not parent_is_left)
        root_node = touch(root)
        root_node["color"] = BLACK
        return root, node_addr, blob

    @property
    def _pending_root(self) -> int:
        return self._root()

    # -- the simulated transaction ----------------------------------------
    def transaction(self):
        key = self.pick_index(self.key_space)
        payload = self.make_value()
        yield from self.fire_hook("entry", {
            "payload": (None, payload, self.params.value_size)})

        cache: Dict[int, dict] = {}
        dirty: List[int] = []
        reads: List[int] = []
        fresh: set = set()

        # The descent/fixup computation drives simulated reads.
        def sim_reader(addr: int) -> dict:
            reads.append(addr)
            return _unpack(self.system.volatile.read(addr,
                                                     CACHE_LINE_BYTES))

        new_root, node_addr, blob_addr = self._compute_insert(
            key, cache, dirty, reader=sim_reader, fresh=fresh)
        # Charge the traversal reads in simulation time.
        for addr in reads:
            yield from self.core.read(addr, CACHE_LINE_BYTES)

        # Fresh blob: persist before linking (no undo needed).
        yield from self.core.store(blob_addr, payload)
        yield from self.core.clwb(blob_addr, self.params.value_size)
        yield from self.core.sfence()

        root_changed = new_root != self._root()
        # The final image of every dirty node is known now, before the
        # backup phase: the manual plan pre-executes each one here
        # (one hook firing per node — loop-shaped, invisible to the
        # static pass).
        for addr in dirty:
            yield from self.fire_hook("update_iter", {
                "dirty_node": (addr, _pack(cache[addr]),
                               CACHE_LINE_BYTES)})
        txn = self.log.begin()
        planned = [CACHE_LINE_BYTES] * (
            sum(1 for a in dirty if a not in fresh)
            + (1 if root_changed else 0))
        yield from self.fire_hook("pre_commit",
                                  self.commit_env(txn, planned))
        # Back up every pre-existing node we will modify.
        for addr in dirty:
            if addr not in fresh:
                yield from txn.backup(addr, CACHE_LINE_BYTES)
        if root_changed:
            yield from txn.backup(self.meta_addr, CACHE_LINE_BYTES)
        yield from txn.fence_backups()

        for addr in dirty:
            yield from txn.write(addr, _pack(cache[addr]))
        if root_changed:
            yield from txn.write(
                self.meta_addr,
                new_root.to_bytes(8, "little").ljust(CACHE_LINE_BYTES,
                                                     b"\x00"))
        yield from txn.fence_updates()
        yield from txn.commit()

    # -- validation (tests) ----------------------------------------------------
    def validate(self) -> int:
        """Check BST order + red-black invariants; returns key count."""
        root = self._root()
        if root == NIL:
            return 0
        if self._vread(root)["color"] != BLACK:
            raise SimulationError("root must be black")

        def walk(addr: int, lo, hi) -> Tuple[int, int]:
            if addr == NIL:
                return 1, 0  # black-height, size
            node = self._vread(addr)
            if not ((lo is None or node["key"] > lo)
                    and (hi is None or node["key"] < hi)):
                raise SimulationError("BST order violated")
            if node["color"] == RED:
                for child in (node["left"], node["right"]):
                    if child != NIL and \
                            self._vread(child)["color"] == RED:
                        raise SimulationError("red-red violation")
            left_bh, left_n = walk(node["left"], lo, node["key"])
            right_bh, right_n = walk(node["right"], node["key"], hi)
            if left_bh != right_bh:
                raise SimulationError("black-height mismatch")
            bh = left_bh + (1 if node["color"] == BLACK else 0)
            return bh, left_n + right_n + 1

        _bh, size = walk(root, None, None)
        return size

    def lookup(self, key: int) -> Optional[int]:
        """Non-simulated lookup: blob pointer for a key."""
        addr = self._root()
        while addr != NIL:
            node = self._vread(addr)
            if key == node["key"]:
                return node["value_ptr"]
            addr = node["left"] if key < node["key"] else node["right"]
        return None

    # -- logical state ---------------------------------------------------------
    def logical_state(self, read) -> dict:
        from repro.common.errors import RecoveryError

        limit = self.params.n_items + self.params.n_transactions + 16
        items = []
        seen = set()

        def walk(addr: int, depth: int) -> None:
            if addr == NIL:
                return
            if addr in seen or depth > 4 * limit:
                raise RecoveryError(
                    f"rbtree walk broken at {addr:#x}")
            if len(seen) > limit:
                raise RecoveryError("rbtree node count exceeds bound")
            seen.add(addr)
            node = _unpack(read(addr, CACHE_LINE_BYTES))
            walk(node["left"], depth + 1)
            items.append(
                [node["key"],
                 read(node["value_ptr"], self.params.value_size)
                 if node["value_ptr"] else b""])
            walk(node["right"], depth + 1)

        root = int.from_bytes(read(self.meta_addr, 8), "little")
        walk(root, 0)
        keys = [k for k, _v in items]
        if sorted(keys) != keys or len(set(keys)) != len(keys):
            raise RecoveryError("rbtree keys unsorted or duplicated")
        return {"items": items}

    # -- template / plans ---------------------------------------------------------
    @classmethod
    def template(cls) -> Template:
        return Template(
            name=cls.name,
            args=("key", "payload"),
            body=[
                Hook("entry"),
                AddrGen("insert_point", inputs=("key",),
                        memory_dependent=True),
                Hook("after_descent"),
                Loop(body=[  # fixup: runtime-sized dirty set
                    AddrGen("dirty", inputs=("insert_point",),
                            memory_dependent=True),
                    Value("image"),
                    LogBackup("dirty", obj="dirty_node"),
                    Fence(),
                    Store("dirty", "image", obj="dirty_node"),
                    Writeback("dirty", obj="dirty_node"),
                    Fence(),
                ]),
            ] + commit_template_tail())

    @classmethod
    def manual_plan(cls) -> InstrumentationPlan:
        plan = InstrumentationPlan(template=f"{cls.name}-manual")
        plan.add("update_iter", Directive("both", "dirty_node"))
        plan.add("pre_commit", Directive("both_val", "commit"))
        return plan
