"""Queue: randomly enqueue/dequeue on a persistent linked list.

Pointer-heavy and loop-heavy, which is exactly why the automated pass
gains almost nothing here (paper §5.2.3): the node address comes from
the allocator at runtime, the payload writebacks sit in a loop, and
the queue-metadata update is a sub-line pointer store.  The manual
plan pre-executes the freshly-allocated node header and payload the
moment the allocator returns — the programmer knows those writes are
to private memory with both inputs ready.
"""

import struct

from repro.compiler import (
    AddrGen,
    Fence,
    Hook,
    InstrumentationPlan,
    Loop,
    Store,
    Template,
    Writeback,
)
from repro.compiler.instrument import Directive
from repro.compiler.ir import LogBackup, Value
from repro.common.units import CACHE_LINE_BYTES
from repro.workloads.base import TransactionalWorkload, commit_template_tail

_META = struct.Struct("<QQQ")   # head, tail, length
_NODE = struct.Struct("<QQ")    # value_ptr, next


class QueueWorkload(TransactionalWorkload):
    """FIFO linked-list queue (Table 4, "Queue")."""

    name = "queue"
    scalable = True

    def setup(self) -> None:
        heap = self.system.heap
        self.meta_addr = heap.alloc_line(CACHE_LINE_BYTES,
                                         label="queue-meta")
        self.seed(self.meta_addr, _META.pack(0, 0, 0).ljust(
            CACHE_LINE_BYTES, b"\x00"))
        self._length = 0
        # Pre-populate so dequeues have work from the start.
        head = tail = 0
        for _ in range(min(self.params.n_items, 64)):
            node, _blob = self._alloc_node_seeded()
            if tail:
                self._seed_next(tail, node)
            else:
                head = node
            tail = node
            self._length += 1
        self.seed(self.meta_addr, _META.pack(head, tail, self._length)
                  .ljust(CACHE_LINE_BYTES, b"\x00"))

    def _alloc_node_seeded(self):
        heap = self.system.heap
        blob = heap.alloc_line(self.params.value_size, label="q-blob")
        node = heap.alloc_line(CACHE_LINE_BYTES, label="q-node")
        self.seed(blob, self.make_value())
        self.seed(node, _NODE.pack(blob, 0).ljust(CACHE_LINE_BYTES,
                                                  b"\x00"))
        return node, blob

    def _seed_next(self, node: int, next_node: int) -> None:
        line = bytearray(self.system.volatile.read_line(node))
        line[8:16] = next_node.to_bytes(8, "little")
        self.seed(node, bytes(line))

    # -- transaction -----------------------------------------------------
    def transaction(self):
        if self._length == 0 or (self._length < 2 * self.params.n_items
                                 and self._choice_rng.random() < 0.5):
            yield from self._enqueue()
        else:
            yield from self._dequeue()

    def _enqueue(self):
        heap = self.system.heap
        size = self.params.value_size
        blob_addr = heap.alloc_line(size, label="q-blob")
        node_addr = heap.alloc_line(CACHE_LINE_BYTES, label="q-node")
        payload = self.make_value()
        header = _NODE.pack(blob_addr, 0).ljust(CACHE_LINE_BYTES, b"\x00")
        # after_alloc: the programmer knows the addresses AND the data
        # of every write to the fresh node right here.
        yield from self.fire_hook("after_alloc", {
            "blob": (blob_addr, payload, size),
            "node": (node_addr, header, CACHE_LINE_BYTES),
        })
        # Initialise the new node (fresh memory: no undo needed), and
        # persist it before it becomes reachable.
        yield from self.core.store(blob_addr, payload)
        yield from self.core.store(node_addr, header)
        yield from self.core.clwb(blob_addr, size)
        yield from self.core.clwb(node_addr, CACHE_LINE_BYTES)
        yield from self.core.sfence()

        meta = yield from self.core.read(self.meta_addr,
                                         CACHE_LINE_BYTES)
        head, tail, length = _META.unpack_from(meta)
        new_meta = _META.pack(head or node_addr, node_addr,
                              length + 1).ljust(CACHE_LINE_BYTES, b"\x00")
        yield from self.fire_hook("after_meta_read", {
            "meta": (self.meta_addr, new_meta, CACHE_LINE_BYTES),
        })

        txn = self.log.begin()
        planned = [CACHE_LINE_BYTES] * (2 if tail else 1)
        yield from self.fire_hook("pre_commit",
                                  self.commit_env(txn, planned))
        yield from txn.backup(self.meta_addr, CACHE_LINE_BYTES)
        if tail:
            yield from txn.backup(tail, CACHE_LINE_BYTES)
        yield from txn.fence_backups()
        if tail:
            # Link: sub-line pointer store into the old tail node.
            yield from txn.write(tail + 8,
                                 node_addr.to_bytes(8, "little"))
        yield from txn.write(self.meta_addr, new_meta)
        yield from txn.fence_updates()
        yield from txn.commit()
        self._length += 1

    def _dequeue(self):
        meta = yield from self.core.read(self.meta_addr,
                                         CACHE_LINE_BYTES)
        head, tail, length = _META.unpack_from(meta)
        if head == 0:
            return
        node = yield from self.core.read(head, CACHE_LINE_BYTES)
        _value_ptr, next_node = _NODE.unpack_from(node)
        new_meta = _META.pack(next_node, 0 if next_node == 0 else tail,
                              length - 1).ljust(CACHE_LINE_BYTES, b"\x00")
        yield from self.fire_hook("after_meta_read", {
            "meta": (self.meta_addr, new_meta, CACHE_LINE_BYTES),
        })
        txn = self.log.begin()
        yield from self.fire_hook(
            "pre_commit", self.commit_env(txn, [CACHE_LINE_BYTES]))
        yield from txn.backup(self.meta_addr, CACHE_LINE_BYTES)
        yield from txn.fence_backups()
        yield from txn.write(self.meta_addr, new_meta)
        yield from txn.fence_updates()
        yield from txn.commit()
        self._length -= 1

    def on_restore(self, read) -> None:
        """Rederive the Python-side length cursor from the recovered
        queue metadata line."""
        _head, _tail, length = _META.unpack_from(
            read(self.meta_addr, CACHE_LINE_BYTES))
        self._length = length

    # -- functional checks (used by tests) ---------------------------------
    def drain_values(self):
        """Non-simulated walk of the queue: payload pointers in order."""
        out = []
        meta = self.system.volatile.read(self.meta_addr, CACHE_LINE_BYTES)
        head, _tail, _length = _META.unpack_from(meta)
        node = head
        while node:
            header = self.system.volatile.read(node, CACHE_LINE_BYTES)
            value_ptr, next_node = _NODE.unpack_from(header)
            out.append(value_ptr)
            node = next_node
        return out

    # -- logical state --------------------------------------------------------
    def logical_state(self, read) -> dict:
        from repro.common.errors import RecoveryError

        head, tail, length = _META.unpack_from(
            read(self.meta_addr, CACHE_LINE_BYTES))
        limit = self.params.n_items * 2 + self.params.n_transactions + 8
        if length > limit:
            raise RecoveryError(f"queue length {length} exceeds bound")
        values = []
        node, seen = head, set()
        while node:
            if node in seen:
                raise RecoveryError(f"queue cycle at node {node:#x}")
            if len(values) >= length:
                raise RecoveryError(
                    f"queue walk exceeds recorded length {length}")
            seen.add(node)
            value_ptr, next_node = _NODE.unpack_from(
                read(node, CACHE_LINE_BYTES))
            values.append(read(value_ptr, self.params.value_size)
                          if value_ptr else b"")
            if next_node == 0 and node != tail:
                raise RecoveryError(
                    f"queue tail {tail:#x} != last node {node:#x}")
            node = next_node
        if len(values) != length:
            raise RecoveryError(
                f"queue walk found {len(values)} nodes, meta says "
                f"{length}")
        return {"length": length, "values": values}

    # -- template / plans ----------------------------------------------------
    @classmethod
    def template(cls) -> Template:
        return Template(
            name=cls.name,
            args=("payload",),
            body=[
                Hook("entry"),
                # Allocator-returned addresses exist only at runtime.
                AddrGen("node", inputs=(), memory_dependent=True),
                AddrGen("blob", inputs=("node",), memory_dependent=True),
                Hook("after_alloc"),
                Loop(body=[
                    Store("blob", "payload", obj="blob"),
                    Writeback("blob", obj="blob"),
                    Fence(),
                ]),
                AddrGen("tail", inputs=(), memory_dependent=True),
                Value("new_meta"),
                Hook("after_meta_read"),
                LogBackup("tail", obj="meta"),
                Fence(),
                Store("tail", "new_meta", obj="meta"),
                Writeback("tail", obj="meta"),
                Fence(),
            ] + commit_template_tail())

    @classmethod
    def manual_plan(cls) -> InstrumentationPlan:
        plan = InstrumentationPlan(template=f"{cls.name}-manual")
        plan.add("after_alloc", Directive("both", "blob"))
        plan.add("after_alloc", Directive("both", "node"))
        plan.add("after_meta_read", Directive("both", "meta"))
        plan.add("pre_commit", Directive("both_val", "commit"))
        return plan
