"""B-tree: insert random keys into a persistent B-tree.

Nodes are 192-byte (3-line) records holding up to 7 (key, value-ptr)
pairs plus 8 child pointers; inserts use CLRS preemptive splitting.
Multi-line node writes give this workload the highest pre-execution
resource demand in the suite — it is the workload that keeps scaling
with unlimited BMO units in the paper's Fig. 14.
"""

import struct
from typing import Dict, List, Optional, Tuple

from repro.compiler import (
    AddrGen,
    Fence,
    Hook,
    InstrumentationPlan,
    Loop,
    Store,
    Template,
    Writeback,
)
from repro.compiler.instrument import Directive
from repro.compiler.ir import LogBackup, Value
from repro.common.errors import SimulationError
from repro.common.units import CACHE_LINE_BYTES
from repro.workloads.base import TransactionalWorkload, commit_template_tail

MIN_DEGREE = 4                      # t: max keys = 2t - 1 = 7
MAX_KEYS = 2 * MIN_DEGREE - 1
NODE_BYTES = 3 * CACHE_LINE_BYTES   # 192 B
_HEADER = struct.Struct("<HB")      # n_keys, is_leaf


def _pack(node: dict) -> bytes:
    out = bytearray(NODE_BYTES)
    _HEADER.pack_into(out, 0, len(node["keys"]), 1 if node["leaf"] else 0)
    pos = 8
    for key, value_ptr in zip(node["keys"], node["values"]):
        struct.pack_into("<QQ", out, pos, key, value_ptr)
        pos += 16
    pos = 8 + MAX_KEYS * 16
    for child in node["children"]:
        struct.pack_into("<Q", out, pos, child)
        pos += 8
    return bytes(out)


def _unpack(raw: bytes) -> dict:
    n_keys, is_leaf = _HEADER.unpack_from(raw, 0)
    keys, values = [], []
    pos = 8
    for _ in range(n_keys):
        key, value_ptr = struct.unpack_from("<QQ", raw, pos)
        keys.append(key)
        values.append(value_ptr)
        pos += 16
    children = []
    if not is_leaf:
        pos = 8 + MAX_KEYS * 16
        for i in range(n_keys + 1):
            children.append(struct.unpack_from("<Q", raw,
                                               pos + 8 * i)[0])
    return {"keys": keys, "values": values, "children": children,
            "leaf": bool(is_leaf)}


class BTreeWorkload(TransactionalWorkload):
    """Persistent B-tree (Table 4, "B-Tree")."""

    name = "btree"
    scalable = True

    def setup(self) -> None:
        heap = self.system.heap
        self.meta_addr = heap.alloc_line(CACHE_LINE_BYTES,
                                         label="bt-meta")
        root = heap.alloc_line(NODE_BYTES, label="bt-node")
        self.seed(root, _pack({"keys": [], "values": [], "children": [],
                               "leaf": True}))
        self.seed(self.meta_addr, root.to_bytes(8, "little").ljust(
            CACHE_LINE_BYTES, b"\x00"))
        self.key_space = max(2 * self.params.n_items, 16)
        for _ in range(self.params.n_items):
            self._seed_insert(self.pick_index(self.key_space))

    def _vread(self, addr: int) -> dict:
        return _unpack(self.system.volatile.read(addr, NODE_BYTES))

    def _root(self) -> int:
        return int.from_bytes(
            self.system.volatile.read(self.meta_addr, 8), "little")

    def _seed_insert(self, key: int) -> None:
        cache: Dict[int, dict] = {}
        dirty: List[int] = []
        new_root, _blob = self._compute_insert(key, cache, dirty,
                                               reader=self._vread)
        for addr in dirty:
            self.seed(addr, _pack(cache[addr]))
        if new_root != self._root():
            self.seed(self.meta_addr,
                      new_root.to_bytes(8, "little").ljust(
                          CACHE_LINE_BYTES, b"\x00"))

    # -- insert computation --------------------------------------------------
    def _compute_insert(self, key: int, cache: Dict[int, dict],
                        dirty: List[int], reader,
                        fresh: Optional[set] = None) -> Tuple[int, int]:
        heap = self.system.heap
        fresh = fresh if fresh is not None else set()

        def load(addr: int) -> dict:
            if addr not in cache:
                cache[addr] = reader(addr)
            return cache[addr]

        def touch(addr: int) -> dict:
            node = load(addr)
            if addr not in dirty:
                dirty.append(addr)
            return node

        def alloc_node(node: dict) -> int:
            addr = heap.alloc_line(NODE_BYTES, label="bt-node")
            cache[addr] = node
            dirty.append(addr)
            fresh.add(addr)
            return addr

        def split_child(parent_addr: int, index: int) -> None:
            parent = touch(parent_addr)
            child_addr = parent["children"][index]
            child = touch(child_addr)
            mid = MIN_DEGREE - 1
            right = {
                "keys": child["keys"][mid + 1:],
                "values": child["values"][mid + 1:],
                "children": child["children"][MIN_DEGREE:],
                "leaf": child["leaf"],
            }
            right_addr = alloc_node(right)
            parent["keys"].insert(index, child["keys"][mid])
            parent["values"].insert(index, child["values"][mid])
            parent["children"].insert(index + 1, right_addr)
            child["keys"] = child["keys"][:mid]
            child["values"] = child["values"][:mid]
            child["children"] = child["children"][:MIN_DEGREE] \
                if not child["leaf"] else []

        root = self._root()
        blob = heap.alloc_line(self.params.value_size, label="bt-blob")

        if len(load(root)["keys"]) == MAX_KEYS:
            new_root_addr = alloc_node({"keys": [], "values": [],
                                        "children": [root],
                                        "leaf": False})
            split_child(new_root_addr, 0)
            root = new_root_addr

        addr = root
        while True:
            node = load(addr)
            if key in node["keys"]:  # update existing
                touch(addr)["values"][node["keys"].index(key)] = blob
                return root, blob
            if node["leaf"]:
                index = sum(1 for k in node["keys"] if k < key)
                node = touch(addr)
                node["keys"].insert(index, key)
                node["values"].insert(index, blob)
                return root, blob
            index = sum(1 for k in node["keys"] if k < key)
            child_addr = node["children"][index]
            if len(load(child_addr)["keys"]) == MAX_KEYS:
                split_child(addr, index)
                node = load(addr)
                if key == node["keys"][index]:
                    touch(addr)["values"][index] = blob
                    return root, blob
                if key > node["keys"][index]:
                    index += 1
            addr = load(addr)["children"][index]

    # -- the simulated transaction ----------------------------------------------
    def transaction(self):
        key = self.pick_index(self.key_space)
        payload = self.make_value()
        yield from self.fire_hook("entry", {
            "payload": (None, payload, self.params.value_size)})

        cache: Dict[int, dict] = {}
        dirty: List[int] = []
        reads: List[int] = []
        fresh: set = set()

        def sim_reader(addr: int) -> dict:
            reads.append(addr)
            return self._vread(addr)

        new_root, blob_addr = self._compute_insert(key, cache, dirty,
                                                   reader=sim_reader,
                                                   fresh=fresh)
        for addr in reads:
            yield from self.core.read(addr, NODE_BYTES)

        yield from self.core.store(blob_addr, payload)
        yield from self.core.clwb(blob_addr, self.params.value_size)
        yield from self.core.sfence()

        # Final node images known before the backup phase: manual
        # per-node pre-execution fires here (loop-shaped, beyond the
        # static pass).  The common no-split case is a straight-line
        # single-leaf update, which the *automated* pass also covers
        # through the ``leaf_update`` hook in the taken branch.
        if len(dirty) == 1:
            yield from self.fire_hook("leaf_update", {
                "dirty_node": (dirty[0], _pack(cache[dirty[0]]),
                               NODE_BYTES)})
        for addr in dirty:
            yield from self.fire_hook("update_iter", {
                "dirty_node": (addr, _pack(cache[addr]), NODE_BYTES)})
        txn = self.log.begin()
        existing_root = self._root()
        root_will_change = new_root != existing_root
        planned = [NODE_BYTES] * sum(1 for a in dirty if a not in fresh)
        if root_will_change:
            planned.append(CACHE_LINE_BYTES)
        yield from self.fire_hook("pre_commit",
                                  self.commit_env(txn, planned))
        for addr in dirty:
            # Freshly allocated nodes were never persisted; only
            # pre-existing nodes need an undo record.
            if addr not in fresh:
                yield from txn.backup(addr, NODE_BYTES)
        if new_root != existing_root:
            yield from txn.backup(self.meta_addr, CACHE_LINE_BYTES)
        yield from txn.fence_backups()

        for addr in dirty:
            yield from txn.write(addr, _pack(cache[addr]))
        if new_root != existing_root:
            yield from txn.write(
                self.meta_addr,
                new_root.to_bytes(8, "little").ljust(CACHE_LINE_BYTES,
                                                     b"\x00"))
        yield from txn.fence_updates()
        yield from txn.commit()

    # -- validation / lookup -----------------------------------------------------
    def validate(self) -> int:
        """Check key ordering and node fill invariants; returns size."""
        def walk(addr: int, lo, hi, is_root: bool) -> int:
            node = self._vread(addr)
            keys = node["keys"]
            if not is_root and not node["leaf"] and \
                    len(keys) < MIN_DEGREE - 1:
                raise SimulationError("underfull internal node")
            if sorted(keys) != keys or len(set(keys)) != len(keys):
                raise SimulationError("unsorted/duplicate keys")
            for k in keys:
                if (lo is not None and k <= lo) or \
                        (hi is not None and k >= hi):
                    raise SimulationError("key range violated")
            if node["leaf"]:
                return len(keys)
            total = len(keys)
            bounds = [lo] + keys + [hi]
            for i, child in enumerate(node["children"]):
                total += walk(child, bounds[i], bounds[i + 1], False)
            return total

        return walk(self._root(), None, None, True)

    def lookup(self, key: int) -> Optional[int]:
        addr = self._root()
        while True:
            node = self._vread(addr)
            if key in node["keys"]:
                return node["values"][node["keys"].index(key)]
            if node["leaf"]:
                return None
            index = sum(1 for k in node["keys"] if k < key)
            addr = node["children"][index]

    # -- logical state ---------------------------------------------------------
    def logical_state(self, read) -> dict:
        from repro.common.errors import RecoveryError

        limit = self.params.n_items + self.params.n_transactions + 16
        items = []
        seen = set()

        def walk(addr: int, depth: int) -> None:
            if addr == 0 or addr in seen or depth > 64:
                raise RecoveryError(
                    f"btree walk broken at {addr:#x} depth {depth}")
            if len(seen) > limit:
                raise RecoveryError("btree node count exceeds bound")
            seen.add(addr)
            node = _unpack(read(addr, NODE_BYTES))
            if len(node["keys"]) > MAX_KEYS:
                raise RecoveryError("btree node overfull")
            if node["leaf"]:
                for key, value_ptr in zip(node["keys"], node["values"]):
                    items.append(
                        [key, read(value_ptr, self.params.value_size)
                         if value_ptr else b""])
                return
            for i, child in enumerate(node["children"]):
                walk(child, depth + 1)
                if i < len(node["keys"]):
                    key, value_ptr = node["keys"][i], node["values"][i]
                    items.append(
                        [key, read(value_ptr, self.params.value_size)
                         if value_ptr else b""])

        root = int.from_bytes(read(self.meta_addr, 8), "little")
        walk(root, 0)
        keys = [k for k, _v in items]
        if sorted(keys) != keys or len(set(keys)) != len(keys):
            raise RecoveryError("btree keys unsorted or duplicated")
        return {"items": items}

    # -- template / plans -----------------------------------------------------------
    @classmethod
    def template(cls) -> Template:
        from repro.compiler import Cond
        return Template(
            name=cls.name,
            args=("key", "payload"),
            body=[
                Hook("entry"),
                AddrGen("leaf", inputs=("key",), memory_dependent=True),
                Value("leaf_image"),
                Hook("after_descent"),
                # Common case: the leaf has room — a straight-line
                # single-node update the pass CAN instrument (inside
                # the branch, per its conservative-cond rule).
                Cond(
                    then=[
                        Hook("leaf_update"),
                        LogBackup("leaf", obj="dirty_node"),
                        Fence(),
                        Store("leaf", "leaf_image", obj="dirty_node"),
                        Writeback("leaf", obj="dirty_node"),
                    ],
                    otherwise=[
                        # Split path: runtime-sized dirty set in a
                        # loop — beyond the static pass (§4.5.2).
                        Loop(body=[
                            AddrGen("dirty", inputs=("leaf",),
                                    memory_dependent=True),
                            Value("image"),
                            LogBackup("dirty", obj="split_node"),
                            Fence(),
                            Store("dirty", "image", obj="split_node"),
                            Writeback("dirty", obj="split_node"),
                        ]),
                    ]),
                Fence(),
            ] + commit_template_tail())

    @classmethod
    def manual_plan(cls) -> InstrumentationPlan:
        plan = InstrumentationPlan(template=f"{cls.name}-manual")
        plan.add("update_iter", Directive("both", "dirty_node"))
        plan.add("pre_commit", Directive("both_val", "commit"))
        return plan
