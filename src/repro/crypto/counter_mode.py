"""Counter-mode encryption engine for NVM lines.

Every cache line has a monotonically-increasing counter; encrypting a
line generates a fresh counter (sub-op E1), derives an OTP from the
counter and the line address (E2), and XORs the OTP with the data
(E3).  Decryption regenerates the same OTP from the stored counter —
which is why the counter is *unreconstructable metadata* that must be
persisted atomically with the data (paper §4.3, counter-atomicity).

The engine exposes the three sub-operations separately because the
Janus dependency graph schedules them individually: E1–E2 are
address-dependent and can be pre-executed knowing only the address.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import CryptoError
from repro.common.units import CACHE_LINE_BYTES
from repro.crypto.primitives import derive_otp, mac_of, xor_bytes


@dataclass
class EncryptedLine:
    """Result of encrypting one cache line."""

    addr: int
    counter: int
    ciphertext: bytes
    mac: bytes


class CounterModeEngine:
    """Per-line counters plus OTP generation and XOR encryption."""

    def __init__(self, key: bytes = b"janus-repro-key",
                 line_bytes: int = CACHE_LINE_BYTES):
        self.key = key
        self.line_bytes = line_bytes
        self._counters: Dict[int, int] = {}

    # -- sub-operation E1 ---------------------------------------------
    def next_counter(self, addr: int) -> int:
        """Peek the counter a write to ``addr`` *would* use.

        Pure function of current state — pre-execution uses this
        without mutating the stored counter (requirement 1 of §3.2:
        pre-execution must not change memory state).  The counter is
        only advanced by :meth:`commit_counter` when the actual write
        happens.
        """
        return self._counters.get(addr, 0) + 1

    def commit_counter(self, addr: int, counter: int) -> None:
        """Advance the stored counter when the real write completes."""
        current = self._counters.get(addr, 0)
        if counter <= current:
            raise CryptoError(
                f"counter for {addr:#x} must increase: {counter} <= {current}")
        self._counters[addr] = counter

    def current_counter(self, addr: int) -> int:
        """The counter of the data currently stored at ``addr``."""
        return self._counters.get(addr, 0)

    # -- sub-operation E2 ---------------------------------------------
    def make_otp(self, addr: int, counter: int) -> bytes:
        """Generate the one-time pad for (addr, counter)."""
        return derive_otp(self.key, counter, addr, self.line_bytes)

    # -- sub-operation E3 ---------------------------------------------
    def apply_pad(self, data: bytes, otp: bytes) -> bytes:
        """XOR ``data`` with the pad (used for encrypt and decrypt)."""
        if len(data) != self.line_bytes:
            raise CryptoError(
                f"line must be {self.line_bytes} bytes, got {len(data)}")
        return xor_bytes(data, otp)

    # -- whole-line convenience ----------------------------------------
    def encrypt(self, addr: int, data: bytes,
                counter: Optional[int] = None) -> EncryptedLine:
        """Run E1–E4 functionally and return the encrypted line.

        Does *not* commit the counter; callers decide when the write
        actually lands.
        """
        if counter is None:
            counter = self.next_counter(addr)
        otp = self.make_otp(addr, counter)
        ciphertext = self.apply_pad(data, otp)
        return EncryptedLine(addr=addr, counter=counter,
                             ciphertext=ciphertext,
                             mac=mac_of(ciphertext, counter))

    def decrypt(self, addr: int, ciphertext: bytes,
                counter: Optional[int] = None) -> bytes:
        """Decrypt a line using the stored (or supplied) counter."""
        if counter is None:
            counter = self.current_counter(addr)
        otp = self.make_otp(addr, counter)
        return self.apply_pad(ciphertext, otp)

    def verify_mac(self, line: EncryptedLine) -> bool:
        """Recompute and compare the MAC of an encrypted line."""
        return mac_of(line.ciphertext, line.counter) == line.mac

    def snapshot_counters(self) -> Dict[int, int]:
        """Copy of the counter table (for crash/recovery tests)."""
        return dict(self._counters)

    def restore_counters(self, counters: Dict[int, int]) -> None:
        """Overwrite the counter table (recovery path)."""
        self._counters = dict(counters)
