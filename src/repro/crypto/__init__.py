"""Cryptographic substrate used by the BMOs.

All engines here are *functional* — they produce real ciphertext,
fingerprints, and hash-tree roots over real bytes — while their
*timing* is parameterised with the hardware latencies from Table 1 /
Table 3 of the paper (40 ns AES-128, 40 ns SHA-1, 321 ns MD5, ~80 ns
CRC-32).  The timing constants live in
:class:`repro.common.config.BmoLatencies`; the classes here expose a
``latency_ns`` per primitive so that the BMO sub-operations can charge
simulated time while still manipulating genuine values (which is what
lets the test suite assert decryptability, duplicate detection, and
root evolution instead of trusting the model blindly).
"""

from repro.crypto.counter_mode import CounterModeEngine, EncryptedLine
from repro.crypto.merkle import MerkleTree
from repro.crypto.primitives import (
    FingerprintEngine,
    derive_otp,
    mac_of,
    xor_bytes,
)

__all__ = [
    "CounterModeEngine",
    "EncryptedLine",
    "FingerprintEngine",
    "MerkleTree",
    "derive_otp",
    "mac_of",
    "xor_bytes",
]
