"""A functional Path ORAM (Stefanov et al., CCS'13).

Path ORAM hides the memory access pattern: blocks live in a binary
tree of Z-slot buckets, every block is assigned a random leaf, and an
access reads the whole root-to-leaf path, remaps the block to a fresh
random leaf, and writes the path back with as many stash blocks as
will fit.  Table 1 of the paper cites ~1000 ns per access for
ORAM-class mechanisms.

This implementation is small but real: the invariants that make Path
ORAM correct (a block is always findable on its assigned path or in
the stash; the stash stays small under random access) are tested in
``tests/test_crypto_oram.py``.
"""

from typing import Dict, List, Optional, Tuple

from repro.common.errors import CryptoError


class PathOram:
    """Binary-tree ORAM with a client-side stash and position map."""

    def __init__(self, height: int = 6, bucket_slots: int = 4,
                 rng=None):
        if height < 1 or bucket_slots < 1:
            raise CryptoError("need height >= 1 and bucket_slots >= 1")
        import random
        self.height = height                   # levels below the root
        self.leaves = 1 << height
        self.bucket_slots = bucket_slots
        self._rng = rng if rng is not None else random.Random(0)
        #: (level, index) -> list of (block_id, payload)
        self._buckets: Dict[Tuple[int, int], List[Tuple[int, bytes]]] = {}
        self._position: Dict[int, int] = {}
        self._stash: Dict[int, bytes] = {}
        self.accesses = 0

    # -- path helpers -----------------------------------------------------
    def path_nodes(self, leaf: int) -> List[Tuple[int, int]]:
        """Bucket coordinates from the root down to ``leaf``."""
        if not 0 <= leaf < self.leaves:
            raise CryptoError(f"leaf {leaf} out of range")
        nodes = []
        for level in range(self.height + 1):
            nodes.append((level, leaf >> (self.height - level)))
        return nodes

    def _bucket(self, node) -> List[Tuple[int, bytes]]:
        return self._buckets.setdefault(node, [])

    # -- the access protocol ----------------------------------------------
    def access(self, block_id: int,
               new_payload: Optional[bytes] = None) -> Optional[bytes]:
        """Read (and optionally update) a block obliviously.

        Returns the block's previous payload (None if absent).
        """
        self.accesses += 1
        leaf = self._position.get(block_id)
        new_leaf = self._rng.randrange(self.leaves)
        self._position[block_id] = new_leaf

        # Read the whole old path into the stash.
        if leaf is not None:
            for node in self.path_nodes(leaf):
                for bid, payload in self._bucket(node):
                    self._stash[bid] = payload
                self._buckets[node] = []

        previous = self._stash.get(block_id)
        if new_payload is not None:
            self._stash[block_id] = new_payload

        # Write the path back, placing stash blocks as deep as their
        # (new) positions allow.
        if leaf is not None:
            self._write_back(leaf)
        return previous

    def _write_back(self, leaf: int) -> None:
        path = self.path_nodes(leaf)
        for level, index in reversed(path):
            bucket: List[Tuple[int, bytes]] = []
            for bid in list(self._stash):
                if len(bucket) >= self.bucket_slots:
                    break
                pos = self._position.get(bid)
                if pos is None:
                    continue
                # The block may rest here iff this node lies on its
                # assigned path.
                if (pos >> (self.height - level)) == index:
                    bucket.append((bid, self._stash.pop(bid)))
            self._buckets[(level, index)] = bucket

    # -- inspection ----------------------------------------------------------
    @property
    def stash_size(self) -> int:
        return len(self._stash)

    def position_of(self, block_id: int) -> Optional[int]:
        return self._position.get(block_id)

    def find_block(self, block_id: int) -> Optional[bytes]:
        """Locate a block without the oblivious protocol (testing)."""
        if block_id in self._stash:
            return self._stash[block_id]
        leaf = self._position.get(block_id)
        if leaf is None:
            return None
        for node in self.path_nodes(leaf):
            for bid, payload in self._bucket(node):
                if bid == block_id:
                    return payload
        return None
