"""Primitive operations: fingerprints, one-time pads, MACs.

The paper's hardware uses AES-128 for the one-time pad (OTP), SHA-1
for Merkle-tree nodes and MACs, and MD5 or CRC-32 for deduplication
fingerprints.  We model the *functional* contract of each primitive —
deterministic, collision-resistant-enough mappings over bytes — with
``hashlib``/``zlib``, and carry the paper's hardware latencies as
data.
"""

import hashlib
import zlib

from repro.common.errors import CryptoError
from repro.common.units import CACHE_LINE_BYTES


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise CryptoError(f"xor length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def derive_otp(key: bytes, counter: int, addr: int,
               length: int = CACHE_LINE_BYTES) -> bytes:
    """One-time pad for counter-mode encryption.

    Models ``OTP = AES_key(counter | address)`` (paper §3.1, sub-op
    E2).  The pad depends on *both* the per-line counter and the line
    address, which is exactly the property the paper exploits: the pad
    can be generated knowing only the address (the counter lives with
    the address's metadata), before the data arrives.
    """
    pad = b""
    block = 0
    while len(pad) < length:
        material = key + counter.to_bytes(16, "little") \
            + addr.to_bytes(8, "little") + block.to_bytes(4, "little")
        pad += hashlib.sha256(material).digest()
        block += 1
    return pad[:length]


def mac_of(enc_data: bytes, counter: int) -> bytes:
    """Message authentication code protecting an encrypted line.

    ``MAC = Hash(EncData, Counter)`` (paper §4.2, sub-op E4).
    """
    return hashlib.sha1(
        enc_data + counter.to_bytes(16, "little")).digest()


class FingerprintEngine:
    """Deduplication fingerprint generator (MD5 or CRC-32).

    MD5 is the paper's default (321 ns); CRC-32 is the DeWrite-style
    lightweight alternative examined in Fig. 12 (~80 ns, but weaker:
    only 32 bits, so the dedup mechanism must confirm candidate
    matches with a byte compare, which we do in
    :class:`repro.bmo.dedup.DedupMechanism`).
    """

    ALGORITHMS = ("md5", "crc32")

    def __init__(self, algorithm: str, latency_ns: float):
        if algorithm not in self.ALGORITHMS:
            raise CryptoError(f"unknown fingerprint algorithm {algorithm!r}")
        self.algorithm = algorithm
        self.latency_ns = latency_ns

    def fingerprint(self, data: bytes) -> bytes:
        """Return the fingerprint of ``data``."""
        if self.algorithm == "md5":
            return hashlib.md5(data).digest()
        return zlib.crc32(data).to_bytes(4, "little")

    @property
    def bits(self) -> int:
        """Fingerprint width in bits."""
        return 128 if self.algorithm == "md5" else 32

    def __repr__(self) -> str:
        return (f"FingerprintEngine({self.algorithm}, "
                f"{self.latency_ns} ns)")
