"""Sparse Bonsai Merkle tree for integrity verification.

The Bonsai Merkle tree (Rogers et al., MICRO'07) protects the
encryption counters (and, in the DeWrite-style integration the paper
uses, the co-located dedup address mappings): leaves are metadata
entries, intermediate nodes are hashes of their children, and the root
lives in a secure non-volatile register.

A 4 GB NVM with arity 8 needs a height-9 tree — far too many nodes to
materialise, so the tree is *sparse*: subtrees whose leaves were never
written hash to a precomputed "empty" digest per level.  Updating one
leaf recomputes exactly ``height`` hashes (the path to the root),
which is why the paper charges 9 x 40 ns = 360 ns per write.
"""

import hashlib
from typing import Dict, List, Tuple

from repro.common.errors import IntegrityError


_sha1 = hashlib.sha1


def _node_hash(children: bytes) -> bytes:
    """SHA-1 over concatenated child digests (paper uses SHA-1)."""
    return _sha1(children).digest()


class MerkleTree:
    """Sparse hash tree with ``arity`` fan-out and ``height`` levels.

    Level 0 holds the leaves; level ``height`` is the root.  Leaf
    indices run in ``[0, arity ** height)``.
    """

    def __init__(self, arity: int = 8, height: int = 9):
        if arity < 2 or height < 1:
            raise IntegrityError("need arity >= 2 and height >= 1")
        self.arity = arity
        self.height = height
        self.leaf_capacity = arity ** height
        # nodes[level][index] -> digest; missing nodes are "empty".
        self._nodes: List[Dict[int, bytes]] = [
            {} for _ in range(height + 1)]
        self._empty = self._empty_digests()
        #: Monotone count of tree mutations.  Two reads of the tree
        #: with the same ``mutations`` value observe identical state,
        #: which lets pre-executed path snapshots prove themselves
        #: still fresh without re-reading any node.
        self.mutations = 0

    def _empty_digests(self) -> List[bytes]:
        """Digest of an all-empty subtree at each level."""
        empties = [hashlib.sha1(b"janus-empty-leaf").digest()]
        for _ in range(self.height):
            empties.append(_node_hash(empties[-1] * self.arity))
        return empties

    # -- queries ---------------------------------------------------------
    @property
    def root(self) -> bytes:
        """Current root digest (the secure-register value)."""
        return self._nodes[self.height].get(0, self._empty[self.height])

    def node(self, level: int, index: int) -> bytes:
        """Digest of the node at ``(level, index)``."""
        if not 0 <= level <= self.height:
            raise IntegrityError(f"level {level} out of range")
        return self._nodes[level].get(index, self._empty[level])

    def leaf(self, index: int) -> bytes:
        return self.node(0, index)

    # -- updates ---------------------------------------------------------
    def _check_leaf_index(self, index: int) -> None:
        if not 0 <= index < self.leaf_capacity:
            raise IntegrityError(
                f"leaf index {index} outside [0, {self.leaf_capacity})")

    def path_digests(self, index: int,
                     leaf_value: bytes) -> List[Tuple[int, int, bytes]]:
        """Compute, without mutating the tree, every digest on the path
        from leaf ``index`` (set to ``Hash(leaf_value)``) to the root.

        Returns ``[(level, node_index, digest), ...]`` bottom-up.  This
        is the functional core of the integrity sub-operations I1–I3:
        Janus pre-executes it into the IRB and applies it later, so it
        must not touch tree state (requirement 1 of §3.2).
        """
        self._check_leaf_index(index)
        arity = self.arity
        nodes = self._nodes
        empty = self._empty
        path: List[Tuple[int, int, bytes]] = []
        digest = _sha1(leaf_value).digest()
        path.append((0, index, digest))
        node_index = index
        for level in range(1, self.height + 1):
            parent_index = node_index // arity
            first_child = parent_index * arity
            level_nodes = nodes[level - 1]
            level_empty = empty[level - 1]
            parts = [
                digest if child == node_index
                else level_nodes.get(child, level_empty)
                for child in range(first_child, first_child + arity)
            ]
            digest = _sha1(b"".join(parts)).digest()
            path.append((level, parent_index, digest))
            node_index = parent_index
        return path

    def path_with_siblings(
            self, index: int, leaf_value: bytes
    ) -> Tuple[List[Tuple[int, int, bytes]], Dict[Tuple[int, int], bytes]]:
        """Like :meth:`path_digests`, but also return the sibling
        digests that were read while hashing.

        The sibling map is what a pre-execution stores so that, when
        the actual write arrives, staleness can be judged per level:
        the deepest level whose recorded sibling no longer matches the
        live tree is the level from which hashing must be redone
        (Janus charges only that partial re-hash).
        """
        self._check_leaf_index(index)
        arity = self.arity
        nodes = self._nodes
        empty = self._empty
        path: List[Tuple[int, int, bytes]] = []
        siblings: Dict[Tuple[int, int], bytes] = {}
        digest = _sha1(leaf_value).digest()
        path.append((0, index, digest))
        node_index = index
        for level in range(1, self.height + 1):
            parent_index = node_index // arity
            first_child = parent_index * arity
            child_level = level - 1
            level_nodes = nodes[child_level]
            level_empty = empty[child_level]
            parts = []
            for child in range(first_child, first_child + arity):
                if child == node_index:
                    parts.append(digest)
                else:
                    sib = level_nodes.get(child, level_empty)
                    siblings[(child_level, child)] = sib
                    parts.append(sib)
            digest = _sha1(b"".join(parts)).digest()
            path.append((level, parent_index, digest))
            node_index = parent_index
        return path, siblings

    def stale_depth(self,
                    siblings: Dict[Tuple[int, int], bytes]) -> int:
        """Lowest tree level at which a recorded sibling changed.

        Returns ``height + 1`` if nothing changed (the pre-executed
        hashes are fully reusable); returns ``L`` if hashing must be
        redone from the node at level ``L`` upwards.
        """
        stale = self.height + 1
        nodes = self._nodes
        empty = self._empty
        for (level, child), digest in siblings.items():
            if nodes[level].get(child, empty[level]) != digest:
                stale = min(stale, level + 1)
        return stale

    def apply_path(self, path: List[Tuple[int, int, bytes]]) -> bytes:
        """Install precomputed path digests; returns the new root."""
        self.mutations += 1
        nodes = self._nodes
        for level, node_index, digest in path:
            nodes[level][node_index] = digest
        return self.root

    def update_leaf(self, index: int, leaf_value: bytes) -> bytes:
        """Convenience: compute and apply the path for one leaf."""
        return self.apply_path(self.path_digests(index, leaf_value))

    def verify_leaf(self, index: int, leaf_value: bytes) -> bool:
        """Check that ``leaf_value`` at ``index`` matches the root.

        Recomputes the path using the *stored* siblings; the leaf is
        authentic iff the recomputed root equals the stored root.
        """
        self._check_leaf_index(index)
        arity = self.arity
        nodes = self._nodes
        empty = self._empty
        digest = _sha1(leaf_value).digest()
        node_index = index
        for level in range(1, self.height + 1):
            parent_index = node_index // arity
            first_child = parent_index * arity
            level_nodes = nodes[level - 1]
            level_empty = empty[level - 1]
            parts = [
                digest if child == node_index
                else level_nodes.get(child, level_empty)
                for child in range(first_child, first_child + arity)
            ]
            digest = _sha1(b"".join(parts)).digest()
            node_index = parent_index
        return digest == self.root

    # -- persistence hooks -------------------------------------------------
    def snapshot(self) -> dict:
        """Deep copy of tree state (crash/recovery tests)."""
        return {
            "nodes": [dict(level) for level in self._nodes],
        }

    def restore(self, snap: dict) -> None:
        self._nodes = [dict(level) for level in snap["nodes"]]
        self.mutations += 1
