"""Crash-consistency mechanisms and post-crash recovery.

The paper's workloads are undo-logging transactions (§2.1's running
example); :class:`UndoLog` implements that protocol over the simulated
persist primitives, with the three fence-delimited phases the paper's
Fig. 3 timeline shows (backup -> update -> commit).  A redo-logging
variant is provided for completeness and for the programming-model
generality claims of the software interface (§3.2 requirement 4).

:mod:`repro.consistency.recovery` rebuilds program-visible plaintext
from a crash snapshot — NVM ciphertext plus the unreconstructable BMO
metadata — and rolls back uncommitted transactions from the log, which
is what makes "crash consistent" a tested property of this repo rather
than an assumption.
"""

from repro.consistency.recovery import RecoveredState, recover
from repro.consistency.redo_log import RedoLog
from repro.consistency.scrub import ScrubReport, scrub
from repro.consistency.shadow import ShadowObject
from repro.consistency.undo_log import UndoLog, UndoTransaction

__all__ = [
    "RecoveredState",
    "RedoLog",
    "ScrubReport",
    "ShadowObject",
    "UndoLog",
    "UndoTransaction",
    "recover",
    "scrub",
]
