"""Shadow paging (copy-on-write) crash consistency (paper §2.1).

The third programming model the paper lists beside undo and redo
logging: updates go to freshly-allocated *shadow* copies, and a single
atomic root-pointer switch commits the whole transaction.  Recovery is
trivial — the root pointer always names a complete version.

Shadow paging is the best case for Janus: every shadow page's address
is known the moment it is allocated and its contents the moment they
are computed — both long before the commit switch — so the entire
write set can be pre-executed with ``PRE_BOTH`` (tests show near-zero
residual BMO latency on the shadow writes).

Layout
------

* a line-sized **root cell** holding the current version's base
  address (the atomic switch target);
* versions are objects of ``object_bytes``, each a fresh line-aligned
  allocation.
"""

from typing import Optional

from repro.common.errors import SimulationError
from repro.common.units import CACHE_LINE_BYTES, align_up


class ShadowObject:
    """One crash-consistent object updated by copy-on-write."""

    def __init__(self, core, object_bytes: int,
                 initial: Optional[bytes] = None):
        self.core = core
        self.system = core.system
        self.object_bytes = align_up(object_bytes)
        heap = self.system.heap
        self.root_cell = heap.alloc_line(CACHE_LINE_BYTES,
                                         label="shadow-root")
        first = heap.alloc_line(self.object_bytes, label="shadow-v0")
        self._seed(first, (initial or b"").ljust(self.object_bytes,
                                                 b"\x00"))
        self._seed(self.root_cell,
                   first.to_bytes(8, "little").ljust(CACHE_LINE_BYTES,
                                                     b"\x00"))
        self.versions_retired = 0

    def _seed(self, addr: int, data: bytes) -> None:
        """Functional installation (setup only, no simulated time)."""
        system = self.system
        system.volatile.write(addr, data)
        from repro.common.units import line_span
        for line in line_span(addr, len(data)):
            ctx = system.pipeline.make_context(
                addr=line, data=system.volatile.read_line(line))
            system.pipeline.execute_all(ctx)
            action = system.pipeline.commit(ctx)
            if action.write_data:
                system.nvm.write_line(action.device_addr,
                                      action.payload)

    # -- reads -----------------------------------------------------------
    def current_base(self) -> int:
        return int.from_bytes(
            self.system.volatile.read(self.root_cell, 8), "little")

    def read(self):
        """Process: read the current version's contents."""
        base = self.current_base()
        value = yield from self.core.read(base, self.object_bytes)
        return value

    # -- the copy-on-write transaction -------------------------------------
    def update(self, new_contents: bytes, pre_execute: bool = True):
        """Process: atomically replace the object's contents.

        1. allocate a shadow copy (address known here -> PRE_BOTH);
        2. write + persist the shadow (off the old version's path);
        3. atomically switch the root pointer (the critical write).
        """
        if len(new_contents) != self.object_bytes:
            raise SimulationError(
                f"shadow update needs exactly {self.object_bytes} "
                f"bytes, got {len(new_contents)}")
        core = self.core
        heap = self.system.heap
        shadow = heap.alloc_line(self.object_bytes, label="shadow-v")
        new_root = shadow.to_bytes(8, "little").ljust(
            CACHE_LINE_BYTES, b"\x00")

        if pre_execute and core.api.enabled:
            obj = core.api.pre_init()
            yield from core.api.pre_both(obj, shadow, new_contents)
            root_obj = core.api.pre_init()
            yield from core.api.pre_both(root_obj, self.root_cell,
                                         new_root)

        # Phase 1: persist the complete shadow version.
        yield from core.store(shadow, new_contents)
        yield from core.clwb(shadow, self.object_bytes)
        yield from core.sfence()

        # Phase 2: the atomic switch — the consistency-critical write.
        old_base = self.current_base()
        yield from core.store(self.root_cell, new_root)
        yield from core.clwb(self.root_cell, CACHE_LINE_BYTES,
                             critical=True)
        yield from core.sfence()

        # Old version is dead; reclaim it.
        self.system.heap.free(old_base)
        self.versions_retired += 1

    # -- recovery ---------------------------------------------------------
    def recover_contents(self, state) -> bytes:
        """Read the object through a :class:`RecoveredState`: whatever
        version the persisted root cell names is complete by
        construction."""
        base = int.from_bytes(state.read(self.root_cell, 8), "little")
        return state.read(base, self.object_bytes)
