"""Post-crash recovery: NVM image + metadata -> consistent plaintext.

``recover`` consumes the snapshot produced by
:meth:`repro.core.machine.NvmSystem.crash` — the device's ciphertext
lines and the unreconstructable BMO metadata that commits at the
persist point — and rebuilds the program-visible plaintext:

1. every line is decrypted through the metadata chain it was stored
   under (dedup remap -> table entry -> (pad address, counter) ->
   counter-mode pad; or directly via its counter without dedup);
2. optionally each line's MAC is re-verified (tamper detection);
3. the undo log is scanned and transactions lacking a commit record
   are rolled back, newest-first, restoring the backed-up bytes.

The result is exactly what a real system's recovery code would hand
back to the application, which is what the crash-consistency tests
assert against a reference model of committed transactions.

**Recovery is itself crashable and idempotent.**  Every scan step,
restore/replay write, and media fetch is an instrumented *crash
point*: with a :class:`~repro.faults.FaultInjector` supplied, an
armed ``recovery_crash`` spec raises
:class:`~repro.common.errors.RecoveryCrash` there.  The contract that
makes a second recovery converge (asserted by
``repro.validate.check_recovery_idempotent``): all program-visible
writes are staged in a volatile overlay published only at the end;
the only persistent mutations before publish are (a) ECC heal-backs
into the snapshot image and (b) quarantine records — both of which a
re-run reproduces.  The media read path carries the same
:class:`~repro.faults.RetryPolicy` as
:class:`~repro.faults.DegradedModeManager`: transient damage clears
under bounded retry with deterministic exponential backoff, and
damage that survives the budget escalates to poison + torn-prefix
continuation (on log lines) instead of a hard ``RecoveryError``.
"""

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bmo.ecc import check as ecc_check
from repro.common.errors import (
    IntegrityError,
    RecoveryError,
    UncorrectableMediaError,
)
from repro.common.units import CACHE_LINE_BYTES, align_down, align_up
from repro.consistency.undo_log import (
    _COMMIT_MAGIC,
    parse_log,
    unpack_record,
)
from repro.crypto.counter_mode import CounterModeEngine
from repro.crypto.primitives import mac_of
from repro.faults.degraded import RetryPolicy
from repro.obs import log as runlog


class RecoveredState:
    """Plaintext view of post-crash NVM, with rollback applied."""

    def __init__(self, nvm_lines: Dict[int, bytes], metadata: dict,
                 verify_macs: bool = False, injector=None,
                 policy: Optional[RetryPolicy] = None,
                 quarantine: Optional[Set[int]] = None):
        self._nvm = nvm_lines
        self._metadata = metadata
        self._verify = verify_macs
        self._injector = injector
        self._policy = (policy if policy is not None
                        else RetryPolicy()).validate()
        #: Shared poison set: lines quarantined here (or by an earlier
        #: scrub/recovery when the caller passes its set) raise
        #: immediately instead of handing out garbage.
        self._quarantine: Set[int] = quarantine \
            if quarantine is not None else set()
        self._engine = CounterModeEngine()
        self._overlay: Dict[int, bytes] = {}
        enc_meta = metadata.get("encryption", {})
        self._counters = enc_meta.get("counters", {})
        self._macs = enc_meta.get("macs", {})
        #: Pads that have at least one MAC on record: a line whose
        #: *current* counter has no MAC while older ones exist means
        #: the counter store was tampered with after the last commit.
        self._pads_with_macs = {p for (p, _c) in self._macs}
        dedup_meta = metadata.get("dedup", {}).get("dedup", {})
        self._remap = dedup_meta.get("remap", {})
        self._entries = dedup_meta.get("entries", {})
        #: ECC codes committed at the persist point (when the
        #: pipeline carries the ``ecc`` BMO): recovery re-verifies
        #: each fetched ciphertext, correcting single-bit media
        #: damage and rejecting uncorrectable lines explicitly.
        self._ecc_codes = metadata.get("ecc", {}).get("codes", {})
        #: Scheduling-policy watermark from the crash snapshot
        #: (relaxed modes only — see ``docs/scheduling-modes.md``).
        #: For ``async-epoch`` it carries the ids of transactions
        #: whose containing epoch fully reached the persist domain;
        #: a commit record outside that set belongs to a *torn epoch*
        #: and is demoted to uncommitted at undo-log scan time.
        self.scheduling = metadata.get("scheduling")
        self._flushed_txns: Optional[Set[int]] = None
        if self.scheduling \
                and self.scheduling.get("mode") == "async-epoch":
            self._flushed_txns = set(
                self.scheduling.get("flushed_txns", ()))
        #: Lines whose single-bit media damage ECC corrected.
        self.media_corrected: List[int] = []
        #: Log-region lines that failed verification while scanning —
        #: treated as a torn tail (the scan stopped there cleanly).
        self.torn_log_lines: List[int] = []
        self.rolled_back: List[int] = []
        #: Transaction ids whose commit record was found by the scan.
        self.committed_txns: List[int] = []
        #: Transactions demoted to uncommitted (and rolled back)
        #: because their commit record landed in an epoch the
        #: async-epoch watermark says never fully flushed.
        self.demoted_txns: List[int] = []
        #: Lines quarantined *by this recovery* (escalations).
        self.poisoned_lines: List[int] = []
        #: Media reads retried / sim-ns spent backing off / lines
        #: escalated to poison — the recovery-path mirror of the
        #: ``faults.*`` degraded-mode counters.
        self.read_retries = 0
        self.backoff_ns = 0
        self.escalations = 0
        #: Committed-transaction backup records skipped over a CRC-
        #: failed payload (torn-prefix continuation).
        self.torn_records_skipped = 0
        #: Instrumented crash points visited so far (the idempotence
        #: oracle replays a crash at each ``1..steps``).
        self.steps = 0

    def _step(self, stage: str, **detail) -> None:
        """One instrumented crash point.  With an injector supplied an
        armed ``recovery_crash`` spec raises :class:`RecoveryCrash`
        here; without one this is just the deterministic counter the
        idempotence oracle enumerates."""
        self.steps += 1
        if self._injector is not None:
            self._injector.on_recovery_step(stage, **detail)

    def written_lines(self) -> Set[int]:
        """Line addresses the committed metadata says were written."""
        return set(self._counters) | set(self._remap)

    def overlay_snapshot(self) -> Dict[int, bytes]:
        """The materialised program-visible lines (digest/test use)."""
        return dict(self._overlay)

    # -- line materialisation ------------------------------------------------
    def read_line(self, line_addr: int) -> bytes:
        if line_addr % CACHE_LINE_BYTES:
            raise RecoveryError(f"unaligned line {line_addr:#x}")
        if line_addr in self._overlay:
            return self._overlay[line_addr]
        line = self._recover_line(line_addr)
        self._overlay[line_addr] = line
        return line

    def _fetch_cipher(self, store_addr: int) -> bytes:
        """Read stored bytes through the resilient media policy.

        ECC-covered lines get the full :class:`RetryPolicy` treatment:
        transient damage (an injector's ``media_read_transient``)
        clears under bounded retry with deterministic exponential
        backoff; correctable damage is fixed and *healed back* into
        the snapshot image; damage that survives the budget escalates
        to quarantine + an explicit raise — never a garbage line
        silently decrypted.  Already-quarantined lines raise
        immediately.
        """
        if store_addr in self._quarantine:
            raise UncorrectableMediaError(
                f"line {store_addr:#x} is quarantined",
                line_addr=store_addr)
        self._step("fetch", addr=store_addr)
        stored = self._nvm.get(store_addr, bytes(CACHE_LINE_BYTES))
        code = self._ecc_codes.get(store_addr)
        if code is None:
            return stored
        last_error = None
        for attempt in range(self._policy.max_retries + 1):
            if attempt:
                delay = self._policy.delay_for(attempt)
                self.read_retries += 1
                self.backoff_ns += delay
                runlog.event("consistency.recovery", "read-retry",
                             level="warn", addr=store_addr,
                             attempt=attempt, backoff_ns=delay)
            raw = stored
            if self._injector is not None:
                raw = self._injector.filter_read(store_addr, stored)
            try:
                fixed = ecc_check(raw, code, line_addr=store_addr)
            except UncorrectableMediaError as error:
                last_error = error
                if self._injector is None:
                    # Snapshot bytes are static: without an injector a
                    # retry re-reads identical damage — escalate now.
                    break
                continue
            if fixed != raw:
                self.media_corrected.append(store_addr)
                # Heal the snapshot image (one of the two persistent
                # mutations the idempotence contract allows before
                # publish — a re-run reproduces it exactly).
                self._step("heal", addr=store_addr)
                self._nvm[store_addr] = fixed
            return fixed
        self.escalations += 1
        self._step("poison", addr=store_addr)
        self._quarantine.add(store_addr)
        self.poisoned_lines.append(store_addr)
        runlog.event("consistency.recovery", "poison-line",
                     level="error", addr=store_addr)
        raise UncorrectableMediaError(
            f"line {store_addr:#x} uncorrectable after "
            f"{self._policy.max_retries + 1} attempts",
            line_addr=store_addr) from last_error

    def _recover_line(self, line_addr: int) -> bytes:
        fingerprint = self._remap.get(line_addr)
        if fingerprint is not None:
            entry = self._entries.get(fingerprint)
            if entry is None:
                raise RecoveryError(
                    f"remap of {line_addr:#x} points at a dropped "
                    f"dedup entry")
            cipher = self._fetch_cipher(entry.store_addr)
            return self._decrypt(entry.pad_addr, entry.counter, cipher)
        counter = self._counters.get(line_addr, 0)
        cipher = self._fetch_cipher(line_addr)
        if counter == 0:
            # Never encrypted: raw device bytes (or an unwritten line).
            return cipher
        return self._decrypt(line_addr, counter, cipher)

    def _decrypt(self, pad_addr: int, counter: int,
                 cipher: bytes) -> bytes:
        if self._verify:
            expected = self._macs.get((pad_addr, counter))
            if expected is None and pad_addr in self._pads_with_macs:
                # Every commit mints (counter, MAC) atomically, so a
                # MAC-covered pad with no MAC at its current counter
                # means the counter store was corrupted.
                raise IntegrityError(
                    f"no MAC for line stored under {pad_addr:#x} at "
                    f"counter {counter} (counter store tampered?)")
            if expected is not None and \
                    mac_of(cipher, counter) != expected:
                raise IntegrityError(
                    f"MAC mismatch for line stored under {pad_addr:#x} "
                    f"(counter {counter})")
        return self._engine.apply_pad(
            cipher, self._engine.make_otp(pad_addr, counter))

    # -- byte interface ---------------------------------------------------------
    def read(self, addr: int, size: int) -> bytes:
        out = bytearray()
        first = align_down(addr)
        last = align_down(addr + size - 1)
        line = first
        while line <= last:
            out += self.read_line(line)
            line += CACHE_LINE_BYTES
        offset = addr - first
        return bytes(out[offset:offset + size])

    def _write(self, addr: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            line_addr = align_down(addr + pos)
            start = (addr + pos) - line_addr
            chunk = min(CACHE_LINE_BYTES - start, len(data) - pos)
            if chunk == CACHE_LINE_BYTES:
                # Full-line overwrite: do not materialise the old
                # line first — rollback must be able to replace a
                # torn/damaged line without decrypting its garbage.
                self._overlay[line_addr] = bytes(
                    data[pos:pos + chunk])
                pos += chunk
                continue
            line = bytearray(self.read_line(line_addr))
            line[start:start + chunk] = data[pos:pos + chunk]
            self._overlay[line_addr] = bytes(line)
            pos += chunk

    def _scan_read_line(self, line_addr: int) -> bytes:
        """Log-scan reader: damaged lines become a torn-tail sentinel.

        A log line that fails its MAC or is uncorrectable media damage
        is, from recovery's point of view, a torn tail — the crash (or
        an ADR drop/tear) interrupted the append.  Returning zeros
        makes the record's header CRC fail, so the parser stops
        cleanly right there instead of propagating garbage.
        """
        try:
            return self.read_line(line_addr)
        except (IntegrityError, UncorrectableMediaError):
            self.torn_log_lines.append(line_addr)
            return bytes(CACHE_LINE_BYTES)

    def _commit_beyond(self, stop: int, end: int,
                       commit_magics) -> Optional[Tuple[int, int]]:
        """Probe for a commit record *after* the scan's stop point.

        A durable commit record fences on all of its transaction's
        earlier log records, so a valid commit beyond a damaged line
        means the persist-domain guarantee itself failed (an ADR
        drop/tear ate an already-accepted record).  Treating the
        damage as an ordinary torn tail would silently roll back a
        committed transaction — so the caller raises instead.
        Returns ``(line_addr, txn_id)`` so callers with an epoch
        watermark can exempt transactions that are demoted anyway.

        Only lines the metadata says were written are probed (the
        undamaged remainder of the region is unwritten space).
        """
        candidates = set(self._counters) | set(self._remap)
        for addr in sorted(a for a in candidates if stop < a < end):
            if addr % CACHE_LINE_BYTES:
                continue
            parsed = unpack_record(self._scan_read_line(addr))
            if parsed is not None and parsed[0] in commit_magics:
                return addr, parsed[1]
        return None

    # -- redo replay -----------------------------------------------------------
    def replay_redo_log(self, base: int, capacity: int) -> List[int]:
        """Scan one redo-log region; replay *committed* transactions.

        A committed redo transaction's in-place updates may not have
        reached NVM before the crash — recovery reapplies them from
        the logged new values.  Uncommitted log records are ignored
        (the in-place data was never touched).  Returns the replayed
        transaction ids, in commit order.
        """
        from repro.consistency.redo_log import (
            _RCOMMIT_MAGIC,
            parse_redo_log,
        )

        updates: List[tuple] = []
        committed: List[int] = []
        scan_stop = base
        for record in parse_redo_log(self._scan_read_line, base,
                                     capacity):
            kind, txn_id, addr, size, payload_addr = record
            self._step("scan-redo", txn=txn_id, record=kind)
            if kind == "commit":
                committed.append(txn_id)
                scan_stop = payload_addr + CACHE_LINE_BYTES
            else:
                updates.append((txn_id, addr, size, payload_addr))
                scan_stop = payload_addr + align_up(size)
        tail = self._commit_beyond(scan_stop, base + capacity,
                                   {_RCOMMIT_MAGIC})
        if tail is not None:
            raise RecoveryError(
                f"redo commit record at {tail[0]:#x} beyond a damaged "
                f"log line — the log was damaged mid-stream, refusing "
                f"to silently drop a committed transaction")
        # NOTE the redo/undo asymmetry under async-epoch: redo
        # transactions are never demoted by the epoch watermark.  A
        # redo commit means the in-place updates may already have
        # started (they happen *after* commit), and replaying from the
        # durable log is the repair — demotion would abandon a
        # half-applied transaction with no backups to restore from.
        committed_set = set(committed)
        for txn_id, addr, size, payload_addr in updates:
            if txn_id in committed_set:
                self._step("redo-replay", txn=txn_id, addr=addr)
                self._write(addr, self.read(payload_addr, size))
        self.replayed = getattr(self, "replayed", [])
        self.replayed.extend(t for t in committed)
        return committed

    # -- undo rollback --------------------------------------------------------
    def rollback_undo_log(self, base: int, capacity: int) -> List[int]:
        """Scan one log region; undo uncommitted transactions.

        Torn-prefix continuation: a backup record whose header is
        intact but whose payload CRC fails does not stop the scan —
        the header fixes the next record boundary, so the scan keeps
        going and later intact records still replay/roll back.  The
        damaged record itself is never restored from: if its
        transaction committed, the old-value image is provably never
        needed (the commit fenced on the in-place updates); if it did
        not commit, the incomplete backup means its fence never
        retired, so the in-place updates never started.  Either way
        the damaged payload lines escalate to poison.  Only a commit
        record beyond a torn *header* still hard-fails — there the
        record boundary is unknown and continuation is impossible.
        """
        backups: List[Tuple[int, int, int, int]] = []
        torn: List[Tuple[int, int, int, int]] = []
        committed = set()
        scan_stop = base
        for record in parse_log(self._scan_read_line, base, capacity):
            kind, txn_id = record[0], record[1]
            self._step("scan-undo", txn=txn_id, record=kind)
            if kind == "commit":
                committed.add(txn_id)
                scan_stop = record[4] + CACHE_LINE_BYTES
            elif kind == "torn_backup":
                _k, txn_id, addr, size, payload_addr = record
                torn.append((txn_id, addr, size, payload_addr))
                scan_stop = payload_addr + align_up(size)
            else:
                _k, txn_id, addr, size, payload_addr = record
                backups.append((txn_id, addr, size, payload_addr))
                scan_stop = payload_addr + align_up(size)
        tail = self._commit_beyond(scan_stop, base + capacity,
                                   {_COMMIT_MAGIC})
        if tail is not None:
            tail_addr, tail_txn = tail
            if self._flushed_txns is not None \
                    and tail_txn not in self._flushed_txns:
                # The beyond-damage commit belongs to a torn epoch:
                # the watermark demotes that transaction regardless,
                # so the damage really is an ordinary torn tail.
                self._step("demote-tail", txn=tail_txn)
                runlog.event("consistency.recovery",
                             "torn-epoch-commit-beyond-damage",
                             level="warn", txn=tail_txn,
                             addr=tail_addr)
            else:
                raise RecoveryError(
                    f"commit record at {tail_addr:#x} beyond a "
                    f"damaged log line — the log was damaged "
                    f"mid-stream, refusing to silently roll back a "
                    f"committed transaction")
        # Torn-epoch demotion (async-epoch mode): a commit record is
        # only *provisionally* durable until its containing epoch has
        # fully flushed.  Any committed transaction outside the
        # watermark is demoted to uncommitted and rolled back below,
        # landing recovery exactly on the last fully-flushed epoch
        # boundary (docs/scheduling-modes.md).  The demoted backups
        # are guaranteed present: the flusher persists the buffered
        # stream strictly in order, so a durable commit record implies
        # every earlier record of its transaction is durable too.
        demoted: Set[int] = set()
        if self._flushed_txns is not None:
            demoted = {t for t in committed
                       if t not in self._flushed_txns}
            for txn_id in sorted(demoted):
                self._step("demote", txn=txn_id)
                committed.discard(txn_id)
                runlog.event("consistency.recovery", "epoch-demote",
                             level="warn", txn=txn_id)
            self.demoted_txns.extend(sorted(demoted))
        for txn_id, addr, size, payload_addr in torn:
            if txn_id in demoted:
                # A demoted transaction *needs* its backups — the
                # torn-backup shortcut ("committed means the old
                # values are never needed") does not apply once the
                # commit itself is demoted.
                raise RecoveryError(
                    f"transaction {txn_id} was demoted by the epoch "
                    f"watermark but its backup record at "
                    f"{payload_addr:#x} is torn — cannot roll back "
                    f"to the epoch boundary")
            self._step("torn-skip", txn=txn_id, addr=payload_addr)
            for line in range(payload_addr,
                              payload_addr + align_up(size),
                              CACHE_LINE_BYTES):
                self._quarantine.add(line)
                self.torn_log_lines.append(line)
            self.torn_records_skipped += 1
            runlog.event("consistency.recovery", "torn-backup-skipped",
                         level="warn", txn=txn_id, addr=addr,
                         payload_addr=payload_addr,
                         committed=txn_id in committed)
        self.committed_txns.extend(sorted(committed))
        undone = []
        # Newest record first: restores nest correctly if a location
        # was backed up twice by the same transaction.
        for txn_id, addr, size, payload_addr in reversed(backups):
            if txn_id in committed:
                continue
            self._step("undo-restore", txn=txn_id, addr=addr)
            old = self.read(payload_addr, size)
            self._write(addr, old)
            if txn_id not in undone:
                undone.append(txn_id)
        self.rolled_back.extend(undone)
        return undone


def recover(snapshot: dict,
            undo_log_regions: Iterable[Tuple[int, int]] = (),
            redo_log_regions: Iterable[Tuple[int, int]] = (),
            verify_macs: bool = False, injector=None,
            policy: Optional[RetryPolicy] = None,
            quarantine: Optional[Set[int]] = None) -> RecoveredState:
    """Build a :class:`RecoveredState` from a crash snapshot.

    Redo regions are replayed first (reinstating committed updates),
    then undo regions are rolled back (removing uncommitted ones).
    With ``injector``, every instrumented step may raise
    :class:`~repro.common.errors.RecoveryCrash`; ``quarantine`` is a
    shared poison set carried across recovery attempts and scrubs.
    """
    state = RecoveredState(snapshot["nvm_lines"], snapshot["metadata"],
                           verify_macs=verify_macs, injector=injector,
                           policy=policy, quarantine=quarantine)
    for base, capacity in redo_log_regions:
        state.replay_redo_log(base, capacity)
    for base, capacity in undo_log_regions:
        state.rollback_undo_log(base, capacity)
    state._step("publish")
    # The crash window closes at publish: reads after this point are
    # the *consumer* using the recovered image, not recovery steps —
    # an armed crash spec whose step never arrived simply never fires.
    state._injector = None
    return state
