"""Post-crash recovery: NVM image + metadata -> consistent plaintext.

``recover`` consumes the snapshot produced by
:meth:`repro.core.machine.NvmSystem.crash` — the device's ciphertext
lines and the unreconstructable BMO metadata that commits at the
persist point — and rebuilds the program-visible plaintext:

1. every line is decrypted through the metadata chain it was stored
   under (dedup remap -> table entry -> (pad address, counter) ->
   counter-mode pad; or directly via its counter without dedup);
2. optionally each line's MAC is re-verified (tamper detection);
3. the undo log is scanned and transactions lacking a commit record
   are rolled back, newest-first, restoring the backed-up bytes.

The result is exactly what a real system's recovery code would hand
back to the application, which is what the crash-consistency tests
assert against a reference model of committed transactions.
"""

from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import IntegrityError, RecoveryError
from repro.common.units import CACHE_LINE_BYTES, align_down
from repro.consistency.undo_log import parse_log
from repro.crypto.counter_mode import CounterModeEngine
from repro.crypto.primitives import mac_of


class RecoveredState:
    """Plaintext view of post-crash NVM, with rollback applied."""

    def __init__(self, nvm_lines: Dict[int, bytes], metadata: dict,
                 verify_macs: bool = False):
        self._nvm = nvm_lines
        self._metadata = metadata
        self._verify = verify_macs
        self._engine = CounterModeEngine()
        self._overlay: Dict[int, bytes] = {}
        enc_meta = metadata.get("encryption", {})
        self._counters = enc_meta.get("counters", {})
        self._macs = enc_meta.get("macs", {})
        dedup_meta = metadata.get("dedup", {}).get("dedup", {})
        self._remap = dedup_meta.get("remap", {})
        self._entries = dedup_meta.get("entries", {})
        self.rolled_back: List[int] = []

    # -- line materialisation ------------------------------------------------
    def read_line(self, line_addr: int) -> bytes:
        if line_addr % CACHE_LINE_BYTES:
            raise RecoveryError(f"unaligned line {line_addr:#x}")
        if line_addr in self._overlay:
            return self._overlay[line_addr]
        line = self._recover_line(line_addr)
        self._overlay[line_addr] = line
        return line

    def _recover_line(self, line_addr: int) -> bytes:
        fingerprint = self._remap.get(line_addr)
        if fingerprint is not None:
            entry = self._entries.get(fingerprint)
            if entry is None:
                raise RecoveryError(
                    f"remap of {line_addr:#x} points at a dropped "
                    f"dedup entry")
            cipher = self._nvm.get(entry.store_addr,
                                   bytes(CACHE_LINE_BYTES))
            return self._decrypt(entry.pad_addr, entry.counter, cipher)
        counter = self._counters.get(line_addr, 0)
        cipher = self._nvm.get(line_addr, bytes(CACHE_LINE_BYTES))
        if counter == 0:
            # Never encrypted: raw device bytes (or an unwritten line).
            return cipher
        return self._decrypt(line_addr, counter, cipher)

    def _decrypt(self, pad_addr: int, counter: int,
                 cipher: bytes) -> bytes:
        if self._verify:
            expected = self._macs.get((pad_addr, counter))
            if expected is not None and \
                    mac_of(cipher, counter) != expected:
                raise IntegrityError(
                    f"MAC mismatch for line stored under {pad_addr:#x} "
                    f"(counter {counter})")
        return self._engine.apply_pad(
            cipher, self._engine.make_otp(pad_addr, counter))

    # -- byte interface ---------------------------------------------------------
    def read(self, addr: int, size: int) -> bytes:
        out = bytearray()
        first = align_down(addr)
        last = align_down(addr + size - 1)
        line = first
        while line <= last:
            out += self.read_line(line)
            line += CACHE_LINE_BYTES
        offset = addr - first
        return bytes(out[offset:offset + size])

    def _write(self, addr: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            line_addr = align_down(addr + pos)
            line = bytearray(self.read_line(line_addr))
            start = (addr + pos) - line_addr
            chunk = min(CACHE_LINE_BYTES - start, len(data) - pos)
            line[start:start + chunk] = data[pos:pos + chunk]
            self._overlay[line_addr] = bytes(line)
            pos += chunk

    # -- redo replay -----------------------------------------------------------
    def replay_redo_log(self, base: int, capacity: int) -> List[int]:
        """Scan one redo-log region; replay *committed* transactions.

        A committed redo transaction's in-place updates may not have
        reached NVM before the crash — recovery reapplies them from
        the logged new values.  Uncommitted log records are ignored
        (the in-place data was never touched).  Returns the replayed
        transaction ids, in commit order.
        """
        from repro.consistency.redo_log import parse_redo_log

        updates: List[tuple] = []
        committed: List[int] = []
        for record in parse_redo_log(self.read_line, base, capacity):
            kind, txn_id, addr, size, payload_addr = record
            if kind == "commit":
                committed.append(txn_id)
            else:
                updates.append((txn_id, addr, size, payload_addr))
        committed_set = set(committed)
        for txn_id, addr, size, payload_addr in updates:
            if txn_id in committed_set:
                self._write(addr, self.read(payload_addr, size))
        self.replayed = getattr(self, "replayed", [])
        self.replayed.extend(t for t in committed)
        return committed

    # -- undo rollback --------------------------------------------------------
    def rollback_undo_log(self, base: int, capacity: int) -> List[int]:
        """Scan one log region; undo uncommitted transactions."""
        backups: List[Tuple[int, int, int, int]] = []
        committed = set()
        for record in parse_log(self.read_line, base, capacity):
            kind, txn_id = record[0], record[1]
            if kind == "commit":
                committed.add(txn_id)
            else:
                _k, txn_id, addr, size, payload_addr = record
                backups.append((txn_id, addr, size, payload_addr))
        undone = []
        # Newest record first: restores nest correctly if a location
        # was backed up twice by the same transaction.
        for txn_id, addr, size, payload_addr in reversed(backups):
            if txn_id in committed:
                continue
            old = self.read(payload_addr, size)
            self._write(addr, old)
            if txn_id not in undone:
                undone.append(txn_id)
        self.rolled_back.extend(undone)
        return undone


def recover(snapshot: dict,
            undo_log_regions: Iterable[Tuple[int, int]] = (),
            redo_log_regions: Iterable[Tuple[int, int]] = (),
            verify_macs: bool = False) -> RecoveredState:
    """Build a :class:`RecoveredState` from a crash snapshot.

    Redo regions are replayed first (reinstating committed updates),
    then undo regions are rolled back (removing uncommitted ones).
    """
    state = RecoveredState(snapshot["nvm_lines"], snapshot["metadata"],
                           verify_macs=verify_macs)
    for base, capacity in redo_log_regions:
        state.replay_redo_log(base, capacity)
    for base, capacity in undo_log_regions:
        state.rollback_undo_log(base, capacity)
    return state
