"""Undo logging over the simulated persist primitives.

Log layout (all records line-aligned so every log write is a clean
64-byte persist):

* BACKUP record — header line ``[magic 'U', txn_id, addr, size]``
  followed by ``ceil(size / 64)`` payload lines holding the old data;
* COMMIT record — one line ``[magic 'C', txn_id]``.

Protocol per transaction (paper §2.1):

1. ``backup(addr, size)`` for every location to be modified, then
   ``fence_backups()`` — the old values must be durable before any
   in-place update;
2. ``write(addr, data)`` in place, then ``fence_updates()``;
3. ``commit()`` — the commit record is the consistency-critical write
   (it gets metadata atomicity under the selective policy).

Recovery scans the log: transactions with backups but no commit
record are rolled back oldest-record-last.
"""

import struct
import zlib
from typing import List, Optional, Tuple

from repro.common.errors import RecoveryError, SimulationError
from repro.common.units import CACHE_LINE_BYTES, align_up

_BACKUP_MAGIC = 0x554E444F  # 'UNDO'
_COMMIT_MAGIC = 0x434D4954  # 'CMIT'
_HEADER = struct.Struct("<IQQQ")  # magic, txn_id, addr, size
#: CRC trailer inside the 64-byte header line, after the 28-byte
#: header: payload_crc (crc32 of the payload bytes; 0 when there is
#: no payload) then header_crc (crc32 of bytes [0, 32)).  Recovery
#: uses them to distinguish a *torn* tail record (CRC mismatch: stop
#: the scan cleanly) from a *corrupt* log (valid CRC, insane fields:
#: raise RecoveryError).
_CRC_TRAILER = struct.Struct("<II")
_CRC_OFFSET = _HEADER.size  # 28


def pack_record(magic: int, txn_id: int, addr: int, size: int,
                payload: bytes = b"") -> bytes:
    """Build one CRC-protected 64-byte record header line."""
    head = _HEADER.pack(magic, txn_id, addr, size)
    head += zlib.crc32(payload).to_bytes(4, "little")
    head += zlib.crc32(head).to_bytes(4, "little")
    return head.ljust(CACHE_LINE_BYTES, b"\x00")


def unpack_record(line: bytes):
    """Parse one header line; returns ``(magic, txn_id, addr, size,
    payload_crc)`` or ``None`` when the header CRC does not match —
    a torn / half-written / never-written line."""
    magic, txn_id, addr, size = _HEADER.unpack_from(line)
    payload_crc, header_crc = _CRC_TRAILER.unpack_from(line, _CRC_OFFSET)
    if zlib.crc32(line[:_CRC_OFFSET + 4]) != header_crc:
        return None
    return magic, txn_id, addr, size, payload_crc


def _payload_bytes(read_line, payload_addr: int, size: int) -> bytes:
    out = bytearray()
    for offset in range(0, align_up(size), CACHE_LINE_BYTES):
        out += read_line(payload_addr + offset)
    return bytes(out[:size])


class UndoLog:
    """A per-core undo-log region in NVM."""

    def __init__(self, core, capacity_bytes: int = 1 << 20):
        self.core = core
        self.system = core.system
        self.capacity = align_up(capacity_bytes)
        self.base = self.system.heap.alloc_line(self.capacity,
                                                label=f"undo-log-"
                                                      f"{core.core_id}")
        self._head = self.base
        self.records_written = 0
        checker = getattr(self.system, "checker", None)
        if checker is not None:
            checker.register_log("undo", self)

    # -- space management --------------------------------------------------
    def _reserve(self, nbytes: int) -> int:
        nbytes = align_up(nbytes)
        if self._head + nbytes > self.base + self.capacity:
            # Simple wrap: the workloads' truncation points (commit)
            # make earlier records dead; a production log would verify
            # liveness, which the tests never violate.
            self._head = self.base
        addr = self._head
        self._head += nbytes
        return addr

    def predict_head_after(self, payload_sizes) -> int:
        """Where the head will be after appending backup records of
        the given payload sizes — pure arithmetic over the reserve
        policy, used to pre-execute the commit record before the
        backups are even written (its address and content are both
        statically determined, paper §4.4 / Fig. 4)."""
        head = self._head
        end = self.base + self.capacity
        for size in payload_sizes:
            nbytes = CACHE_LINE_BYTES + align_up(size)
            if head + nbytes > end:
                head = self.base
            head += nbytes
        if head + CACHE_LINE_BYTES > end:
            head = self.base
        return head

    def begin(self) -> "UndoTransaction":
        """Start a transaction (bumps the core's transaction id)."""
        self.core.current_txn_id += 1
        return UndoTransaction(self, self.core.current_txn_id)


class UndoTransaction:
    """One in-flight undo-logging transaction."""

    def __init__(self, log: UndoLog, txn_id: int):
        self.log = log
        self.core = log.core
        self.txn_id = txn_id
        self.backed_up: List[Tuple[int, int]] = []
        self.committed = False
        self._phase = "backup"

    # -- phase 1: backup ----------------------------------------------------
    def backup(self, addr: int, size: int):
        """Append a backup record with the current value of ``addr``."""
        if self._phase != "backup":
            raise SimulationError(
                f"backup() in phase {self._phase!r}")
        old = yield from self.core.read(addr, size)
        record_addr = self.log._reserve(
            CACHE_LINE_BYTES + align_up(size))
        header = pack_record(_BACKUP_MAGIC, self.txn_id, addr, size,
                             payload=old)
        yield from self.core.store(record_addr, header)
        yield from self.core.store(record_addr + CACHE_LINE_BYTES, old)
        yield from self.core.clwb(record_addr,
                                  CACHE_LINE_BYTES + align_up(size))
        self.backed_up.append((addr, size))
        self.log.records_written += 1

    def fence_backups(self):
        """Make every backup durable before the first in-place write."""
        yield from self.core.sfence()
        self._phase = "update"

    # -- phase 2: in-place update ---------------------------------------------
    def write(self, addr: int, data: bytes):
        """In-place update of a location that was backed up."""
        if self._phase == "backup":
            yield from self.fence_backups()
        if self._phase != "update":
            raise SimulationError(f"write() in phase {self._phase!r}")
        yield from self.core.store(addr, data)
        yield from self.core.clwb(addr, len(data))

    def fence_updates(self):
        yield from self.core.sfence()
        self._phase = "commit"

    # -- phase 3: commit -----------------------------------------------------
    def commit(self):
        """Write the commit record; the transaction becomes durable."""
        if self._phase == "backup":
            # A transaction may commit with no in-place updates (e.g.
            # it only appended fresh records); fences still apply.
            yield from self.fence_backups()
        if self._phase == "update":
            yield from self.fence_updates()
        if self._phase != "commit":
            raise SimulationError(f"commit() in phase {self._phase!r}")
        record_addr = self.log._reserve(CACHE_LINE_BYTES)
        yield from self.core.store(record_addr,
                                   self.commit_record_preview())
        # The commit record immediately mutates crash-consistency
        # status: it is the selectively metadata-atomic write (§4.3).
        yield from self.core.clwb(record_addr, CACHE_LINE_BYTES,
                                  critical=True)
        yield from self.core.sfence()
        self.committed = True
        self._phase = "done"

    # -- helpers for instrumentation -------------------------------------------
    def commit_record_preview(self) -> bytes:
        """The exact line image the commit record will hold — known
        before the commit step, so it can be pre-executed with
        PRE_BOTH_VAL (§4.4)."""
        return pack_record(_COMMIT_MAGIC, self.txn_id, 0, 0)

    def next_commit_record_addr(self, planned_payload_sizes=()) -> int:
        """Where the commit record will land.

        ``planned_payload_sizes`` lists the payload sizes of backups
        this transaction *will* write before committing; with it, the
        address is predictable before the backup phase starts.
        """
        return self.log.predict_head_after(planned_payload_sizes)


def parse_log(read_line, base: int, capacity: int):
    """Scan a log region in recovered plaintext.

    ``read_line(addr)`` returns 64 recovered bytes.  Yields
    ``("backup", txn_id, addr, size, record_addr)`` and
    ``("commit", txn_id)`` tuples in log order.

    Robustness contract: a record whose *header* CRC does not verify
    is *torn* — the crash interrupted its persist — and the scan
    stops cleanly there (without the header the next record boundary
    is unknown, so nothing after it can be trusted).  A record whose
    header verifies but whose *payload* CRC fails is a **torn
    payload**: the boundary is known, so the scan yields
    ``("torn_backup", txn_id, addr, size, payload_addr)`` and
    *continues* at the next record — the caller decides whether the
    damaged old-value image is ever needed (it is not when the
    transaction committed).  A record whose CRC verifies but whose
    fields are insane (size <= 0 or beyond the region) is *corrupt*
    and raises :class:`RecoveryError`.
    """
    offset = base
    end = base + capacity
    while offset + CACHE_LINE_BYTES <= end:
        parsed = unpack_record(read_line(offset))
        if parsed is None:
            break  # unwritten space or a torn header line
        magic, txn_id, addr, size, payload_crc = parsed
        if magic == _BACKUP_MAGIC:
            if size <= 0 or size > capacity:
                raise RecoveryError(
                    f"corrupt backup record at {offset:#x}")
            if offset + CACHE_LINE_BYTES + align_up(size) > end:
                break  # truncated: payload runs past the region
            payload = _payload_bytes(
                read_line, offset + CACHE_LINE_BYTES, size)
            if zlib.crc32(payload) != payload_crc:
                # Torn payload: the header landed (boundary known) but
                # the old data did not — report it and keep scanning.
                yield ("torn_backup", txn_id, addr, size,
                       offset + CACHE_LINE_BYTES)
            else:
                yield ("backup", txn_id, addr, size,
                       offset + CACHE_LINE_BYTES)
            offset += CACHE_LINE_BYTES + align_up(size)
        elif magic == _COMMIT_MAGIC:
            yield ("commit", txn_id, 0, 0, offset)
            offset += CACHE_LINE_BYTES
        else:
            break  # end of written log
