"""Redo logging — the alternative programming model (§2.1).

A redo transaction writes the *new* values to the log first, commits,
and only then performs the in-place updates (which may be lazy: on
crash, a committed transaction's updates are replayed from the log).

The interesting contrast with undo logging for Janus is *when inputs
become known*: a redo log knows both address and data of the final
in-place write at log-append time, so the whole BMO chain of the
in-place write can be pre-executed with ``PRE_BOTH`` during logging —
an even larger window than undo logging's.
"""

import struct
import zlib
from typing import List, Tuple

from repro.common.errors import RecoveryError, SimulationError
from repro.common.units import CACHE_LINE_BYTES, align_up
from repro.consistency.undo_log import (
    _payload_bytes,
    pack_record,
    unpack_record,
)

_REDO_MAGIC = 0x5245444F   # 'REDO'
_RCOMMIT_MAGIC = 0x52434D54  # 'RCMT'
_HEADER = struct.Struct("<IQQQ")


def parse_redo_log(read_line, base: int, capacity: int):
    """Scan a redo-log region in recovered plaintext.

    Yields ``("update", txn_id, addr, size, payload_addr)`` and
    ``("commit", txn_id, 0, 0, record_addr)`` in log order.

    Same robustness contract as ``parse_log``: torn records (CRC
    mismatch) stop the scan cleanly; CRC-valid records with insane
    fields raise :class:`RecoveryError`.
    """
    offset = base
    end = base + capacity
    while offset + CACHE_LINE_BYTES <= end:
        parsed = unpack_record(read_line(offset))
        if parsed is None:
            break  # unwritten space or a torn header line
        magic, txn_id, addr, size, payload_crc = parsed
        if magic == _REDO_MAGIC:
            if size <= 0 or size > capacity:
                raise RecoveryError(
                    f"corrupt redo record at {offset:#x}")
            if offset + CACHE_LINE_BYTES + align_up(size) > end:
                break  # truncated: payload runs past the region
            payload = _payload_bytes(
                read_line, offset + CACHE_LINE_BYTES, size)
            if zlib.crc32(payload) != payload_crc:
                break  # torn payload
            yield ("update", txn_id, addr, size,
                   offset + CACHE_LINE_BYTES)
            offset += CACHE_LINE_BYTES + align_up(size)
        elif magic == _RCOMMIT_MAGIC:
            yield ("commit", txn_id, 0, 0, offset)
            offset += CACHE_LINE_BYTES
        else:
            break


class RedoLog:
    """A per-core redo-log region in NVM."""

    def __init__(self, core, capacity_bytes: int = 1 << 20):
        self.core = core
        self.system = core.system
        self.capacity = align_up(capacity_bytes)
        self.base = self.system.heap.alloc_line(
            self.capacity, label=f"redo-log-{core.core_id}")
        self._head = self.base
        checker = getattr(self.system, "checker", None)
        if checker is not None:
            checker.register_log("redo", self)

    def _reserve(self, nbytes: int) -> int:
        nbytes = align_up(nbytes)
        if self._head + nbytes > self.base + self.capacity:
            self._head = self.base
        addr = self._head
        self._head += nbytes
        return addr

    def begin(self) -> "RedoTransaction":
        self.core.current_txn_id += 1
        return RedoTransaction(self, self.core.current_txn_id)


class RedoTransaction:
    """One in-flight redo-logging transaction."""

    def __init__(self, log: RedoLog, txn_id: int):
        self.log = log
        self.core = log.core
        self.txn_id = txn_id
        self.pending: List[Tuple[int, bytes]] = []
        self.committed = False
        self._phase = "log"

    def log_update(self, addr: int, data: bytes):
        """Append (addr, new data) to the log; defers the real write."""
        if self._phase != "log":
            raise SimulationError(f"log_update() in phase {self._phase!r}")
        record_addr = self.log._reserve(
            CACHE_LINE_BYTES + align_up(len(data)))
        header = pack_record(_REDO_MAGIC, self.txn_id, addr, len(data),
                             payload=data)
        yield from self.core.store(record_addr, header)
        yield from self.core.store(record_addr + CACHE_LINE_BYTES, data)
        yield from self.core.clwb(record_addr,
                                  CACHE_LINE_BYTES + align_up(len(data)))
        self.pending.append((addr, bytes(data)))

    def commit(self):
        """Persist the log, then the commit record; updates follow."""
        if self._phase != "log":
            raise SimulationError(f"commit() in phase {self._phase!r}")
        yield from self.core.sfence()
        record_addr = self.log._reserve(CACHE_LINE_BYTES)
        header = pack_record(_RCOMMIT_MAGIC, self.txn_id, 0, 0)
        yield from self.core.store(record_addr, header)
        yield from self.core.clwb(record_addr, CACHE_LINE_BYTES,
                                  critical=True)
        yield from self.core.sfence()
        self.committed = True
        self._phase = "apply"

    def apply_updates(self):
        """Perform the deferred in-place writes (off the commit path)."""
        if self._phase != "apply":
            raise SimulationError(
                f"apply_updates() before commit (phase {self._phase!r})")
        for addr, data in self.pending:
            yield from self.core.store(addr, data)
            yield from self.core.clwb(addr, len(data))
        yield from self.core.sfence()
        self._phase = "done"
