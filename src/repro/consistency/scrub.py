"""NVM image scrubbing — an fsck for the encrypted, deduplicated,
integrity-protected device.

``scrub(system)`` walks the quiescent system's persistent state and
verifies every protection layer end to end:

1. every mapped line's ciphertext decrypts through its metadata chain
   (dedup remap -> entry -> pad identity, or counter directly) and
   its MAC matches — catching device-level data corruption;
2. every committed metadata leaf still verifies against the Merkle
   root in the secure register — catching metadata tampering;
3. dedup invariants: every remap points at a live entry, refcounts
   equal the number of aliases, relocated ciphertexts exist.

Returns a :class:`ScrubReport`; the tests corrupt each layer in turn
and assert the scrubber localises the damage.
"""

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.common.errors import UncorrectableMediaError
from repro.crypto.primitives import mac_of


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    lines_checked: int = 0
    leaves_checked: int = 0
    mac_failures: List[int] = field(default_factory=list)
    merkle_failures: List[int] = field(default_factory=list)
    dedup_failures: List[str] = field(default_factory=list)
    #: Lines whose single-bit media damage ECC fixed during the walk.
    corrected_lines: List[int] = field(default_factory=list)
    #: Lines with uncorrectable media damage, taken out of service.
    poisoned_lines: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No *silent* damage: everything either verified, or was
        corrected/poisoned explicitly (tracked separately)."""
        return not (self.mac_failures or self.merkle_failures
                    or self.dedup_failures)

    def render(self) -> str:
        lines = [
            f"scrub: {self.lines_checked} lines, "
            f"{self.leaves_checked} leaves checked",
        ]
        if self.clean:
            lines.append("  image clean")
        for addr in self.mac_failures:
            lines.append(f"  MAC FAILURE at line {addr:#x}")
        for index in self.merkle_failures:
            lines.append(f"  MERKLE FAILURE at leaf {index}")
        for detail in self.dedup_failures:
            lines.append(f"  DEDUP INVARIANT: {detail}")
        for addr in self.corrected_lines:
            lines.append(f"  ecc-corrected line {addr:#x}")
        for addr in self.poisoned_lines:
            lines.append(f"  POISONED line {addr:#x} "
                         f"(uncorrectable media damage)")
        return "\n".join(lines)


def scrub(system, degraded=None, injector=None) -> ScrubReport:
    """Verify the persistent image of a quiescent system.

    With a :class:`repro.faults.DegradedModeManager` supplied, line
    reads go through it: correctable media damage is healed in place
    (and reported), uncorrectable lines are poisoned and reported —
    the scrubber never MAC-checks bytes ECC already rejected.

    The scrub is itself crashable: every line fetch (plus the
    degraded manager's heal and poison actions) is an instrumented
    step where an armed ``scrub_crash`` spec raises
    :class:`~repro.common.errors.RecoveryCrash`.  Re-running the
    scrub after such a crash converges — heals and quarantine records
    are idempotent, and a shared quarantine set survives the crash.
    """
    report = ScrubReport()
    pipeline = system.pipeline
    encryption = pipeline.by_name.get("encryption")
    dedup = pipeline.by_name.get("dedup")
    integrity = pipeline.by_name.get("integrity")
    if injector is None:
        injector = degraded.injector if degraded is not None \
            else getattr(system, "injector", None)

    def fetch(addr):
        """Line read for the MAC walk; None if taken out of service."""
        if injector is not None:
            injector.on_scrub_step("fetch", addr=addr)
        if degraded is None:
            return system.nvm.read_line(addr)
        try:
            return degraded.read_line(addr)
        except UncorrectableMediaError:
            report.poisoned_lines.append(addr)
            return None

    # Pads with any MAC on record: commits mint (counter, MAC)
    # atomically, so a covered pad whose current counter has no MAC
    # means the counter store was tampered with.
    pads_with_macs = {p for (p, _c) in encryption.macs} \
        if encryption is not None else set()

    # 1. data: MAC-verify every *live* ciphertext.
    if encryption is not None and dedup is not None:
        # Walk the dedup entries: each holds the single physical copy
        # of a live value (including relocated ones) and the pad
        # identity its MAC was minted under.
        for entry in dedup.table.entries.values():
            expected = encryption.macs.get(
                (entry.pad_addr, entry.counter))
            if expected is None:
                continue  # seeded functionally without MAC coverage
            cipher = fetch(entry.store_addr)
            report.lines_checked += 1
            if cipher is None:
                continue
            if mac_of(cipher, entry.counter) != expected:
                report.mac_failures.append(entry.store_addr)
    elif encryption is not None:
        for addr, counter in \
                encryption.engine.snapshot_counters().items():
            expected = encryption.macs.get((addr, counter))
            if expected is None:
                if addr in pads_with_macs:
                    report.lines_checked += 1
                    report.mac_failures.append(addr)
                continue
            cipher = fetch(addr)
            report.lines_checked += 1
            if cipher is None:
                continue
            if mac_of(cipher, counter) != expected:
                report.mac_failures.append(addr)

    # 2. metadata: every committed leaf against the secure root.
    if integrity is not None:
        for index, leaf_value in \
                sorted(integrity.committed_leaves.items()):
            report.leaves_checked += 1
            if not integrity.tree.verify_leaf(index, leaf_value):
                report.merkle_failures.append(index)

    # 3. dedup structural invariants.
    if dedup is not None:
        alias_counts = {}
        for addr, fingerprint in dedup.table.remap.items():
            entry = dedup.table.entries.get(fingerprint)
            if entry is None:
                report.dedup_failures.append(
                    f"remap {addr:#x} -> dropped entry")
                continue
            alias_counts[fingerprint] = \
                alias_counts.get(fingerprint, 0) + 1
        for fingerprint, entry in dedup.table.entries.items():
            aliases = alias_counts.get(fingerprint, 0)
            if entry.refcount != aliases:
                report.dedup_failures.append(
                    f"entry {fingerprint.hex()[:8]} refcount "
                    f"{entry.refcount} != {aliases} aliases")

    if degraded is not None:
        report.corrected_lines.extend(degraded.take_corrections())
    return report
