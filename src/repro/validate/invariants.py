"""Cross-layer runtime invariant checking (``repro run --check``).

Janus's requirement 1 (§3.2) — pre-execution is semantically
invisible — rests on a stack of per-layer invariants that no single
unit test observes *during* execution.  :class:`InvariantChecker`
attaches to a live :class:`repro.core.NvmSystem` and re-verifies them
after every BMO-pipeline commit (the one point where every layer's
state may legally change):

======================  ==================================================
invariant               layer / statement
======================  ==================================================
``irb-bijection``       janus: every resident IRB entry is filed in
                        exactly the index buckets its fields dictate, and
                        every bucket member is resident (index ↔ entry
                        bijection); ``link_seq`` strictly increases and
                        ``created_at`` never decreases in buffer order;
                        occupancy respects capacity.
``wq-epoch-order``      mem: accepted-but-undrained entries are ordered
                        by acceptance time, and
                        ``accepted - drained == outstanding``.
``merkle-root``         crypto: a Merkle tree rebuilt from scratch over
                        the committed leaves reproduces the live root
                        (the secure register matches the metadata it
                        claims to protect).
``counter-monotone``    crypto: no per-line encryption counter ever
                        decreases (counter-mode pad reuse).
``dedup-refcount``      bmo: each dedup entry's refcount equals the
                        number of remap-table aliases pointing at it;
                        no entry survives at refcount <= 0; the stored
                        plaintext re-fingerprints to its table key; every
                        remap target exists.
``log-prefix``          consistency: undo/redo logs parse cleanly over
                        their monotone transaction-id prefix, and no
                        transaction appends backup/update records after
                        its own commit record (committed-prefix rule).
``sfence-barrier``      core/mem: at every ``sfence`` retirement the
                        fence's durability contract holds on *every*
                        memory controller it may have touched — write
                        queue accounting is consistent per shard, and
                        each async-epoch shard's staleness debt is
                        within bound (one epoch of slack on sharded
                        machines for coordinator demand-closes).
======================  ==================================================

On the sharded machine (``SystemConfig.shards > 1``) the per-component
invariants run against every shard's IRB and write queue; the sfence
barrier is the genuinely cross-shard one — see ``docs/sharding.md``.

Violations raise :class:`InvariantViolation`, which carries the
invariant name, the owning layer, and a minimal state snapshot
(JSON-able) for the failure report.  The checker deliberately reads
private fields of the structures it audits — it is the second
implementation that makes index desync observable, in the same spirit
as :mod:`repro.janus.irb_linear`.

The Merkle rebuild is O(leaves x height) hashes; it runs every
``merkle_every`` commits (and always in :meth:`check_all` with
``full=True``) so checked runs stay near-linear.
"""

from typing import Dict, List, Optional

from repro.common.errors import RecoveryError, ReproError
from repro.consistency.redo_log import parse_redo_log
from repro.consistency.undo_log import parse_log
from repro.crypto.merkle import MerkleTree
from repro.obs import log as runlog


class InvariantViolation(ReproError):
    """A cross-layer invariant failed during execution.

    Structured: ``invariant`` (short name from the catalog above),
    ``layer`` (owning package), ``detail`` (human sentence), and
    ``snapshot`` — a minimal JSON-able capture of the offending state,
    enough to understand the failure without re-running.
    """

    def __init__(self, invariant: str, layer: str, detail: str,
                 snapshot: Optional[Dict] = None):
        super().__init__(f"[{layer}:{invariant}] {detail}")
        self.invariant = invariant
        self.layer = layer
        self.detail = detail
        self.snapshot = dict(snapshot or {})

    def as_dict(self) -> Dict:
        return {"invariant": self.invariant, "layer": self.layer,
                "detail": self.detail, "snapshot": self.snapshot}


def _canon_entry(entry) -> Dict:
    """Minimal JSON-able view of an IRB entry for violation snapshots."""
    return {
        "pre_id": entry.pre_id, "thread_id": entry.thread_id,
        "transaction_id": entry.transaction_id,
        "line_addr": entry.line_addr,
        "data": entry.data.hex() if entry.data else None,
        "data_seq": entry.data_seq, "created_at": entry.created_at,
        "link_seq": entry.link_seq, "complete": entry.complete,
    }


class InvariantChecker:
    """Attachable cross-layer invariant checker for one ``NvmSystem``."""

    def __init__(self, system, merkle_every: int = 16):
        self.system = system
        self.merkle_every = merkle_every
        self._commits_seen = 0
        #: addr -> highest encryption counter ever observed committed.
        self._counter_watermarks: Dict[int, int] = {}
        #: Registered ("undo" | "redo", log) pairs — the logs register
        #: themselves at construction when a checker is attached.
        self._logs: List = []
        stats = system.metrics.scope("validate")
        self._c_checks = stats.counter("checks")
        self._c_violations = stats.counter("violations")

    # -- wiring ---------------------------------------------------------
    def attach(self) -> "InvariantChecker":
        """Hook the pipeline commit point; returns self for chaining."""
        pipeline = self.system.pipeline
        original_commit = pipeline.commit

        def checked_commit(ctx):
            action = original_commit(ctx)
            self._commits_seen += 1
            self.check_all(
                full=self._commits_seen % self.merkle_every == 0)
            return action

        pipeline.commit = checked_commit
        return self

    def register_log(self, kind: str, log) -> None:
        """Called by ``UndoLog``/``RedoLog`` constructors."""
        self._logs.append((kind, log))

    # -- driver ---------------------------------------------------------
    def check_all(self, full: bool = True) -> None:
        """Run every applicable invariant; raises on the first failure.

        ``full=False`` skips the Merkle-root rebuild (the only
        super-linear check); the commit hook runs it every
        ``merkle_every`` commits instead of every time.
        """
        self._c_checks.add()
        try:
            system = self.system
            for engine in system.janus_engines:
                self.check_irb(engine.irb)
            for write_queue in system.write_queues:
                self.check_write_queue(write_queue)
            by_name = system.pipeline.by_name
            if "dedup" in by_name:
                self.check_dedup(by_name["dedup"])
            if "encryption" in by_name:
                self.check_counters(by_name["encryption"])
            if full and "integrity" in by_name:
                self.check_merkle(by_name["integrity"])
            self.check_logs()
        except InvariantViolation as violation:
            self._c_violations.add()
            tracer = getattr(self.system, "tracer", None)
            if tracer is not None and tracer.enabled:
                tracer.instant(
                    f"violation:{violation.invariant}", "validate",
                    ("validate", violation.layer),
                    ts_ns=self.system.sim.now,
                    args={"invariant": violation.invariant,
                          "layer": violation.layer,
                          "detail": violation.detail})
            runlog.event("validate", "invariant_violation",
                         sim_ns=self.system.sim.now, level="error",
                         invariant=violation.invariant,
                         layer=violation.layer,
                         detail=violation.detail)
            raise

    # -- janus: IRB index <-> entry bijection ---------------------------
    def check_irb(self, irb) -> None:
        resident = set(irb._order)
        if len(resident) > irb.capacity:
            raise InvariantViolation(
                "irb-bijection", "janus",
                f"occupancy {len(resident)} exceeds capacity "
                f"{irb.capacity}",
                {"occupancy": len(resident), "capacity": irb.capacity})
        indexes = (
            ("_by_key", irb._by_key, lambda e: e.key(), None),
            ("_by_thread", irb._by_thread, lambda e: e.thread_id, None),
            ("_by_thread_line", irb._by_thread_line,
             lambda e: (e.thread_id, e.line_addr),
             lambda e: e.line_addr is not None),
            ("_by_line", irb._by_line, lambda e: e.line_addr,
             lambda e: e.line_addr is not None),
            ("_data_only", irb._data_only, lambda e: e.thread_id,
             lambda e: e.line_addr is None),
        )
        for name, index, key_of, applies in indexes:
            # Direction 1: every bucket member is resident, correctly
            # keyed, and belongs in this index at all.
            for key, bucket in index.items():
                if not bucket:
                    raise InvariantViolation(
                        "irb-bijection", "janus",
                        f"empty bucket {key!r} left in {name}",
                        {"index": name, "key": repr(key)})
                for entry in bucket:
                    if entry not in resident:
                        raise InvariantViolation(
                            "irb-bijection", "janus",
                            f"{name}[{key!r}] holds a non-resident "
                            f"entry",
                            {"index": name, "key": repr(key),
                             "entry": _canon_entry(entry)})
                    if key_of(entry) != key or \
                            (applies is not None and not applies(entry)):
                        raise InvariantViolation(
                            "irb-bijection", "janus",
                            f"entry misfiled under {name}[{key!r}]",
                            {"index": name, "key": repr(key),
                             "entry": _canon_entry(entry)})
            # Direction 2: every resident entry that belongs in this
            # index is actually filed there.
            for entry in resident:
                if applies is not None and not applies(entry):
                    continue
                bucket = index.get(key_of(entry))
                if bucket is None or entry not in bucket:
                    raise InvariantViolation(
                        "irb-bijection", "janus",
                        f"resident entry missing from {name}",
                        {"index": name,
                         "entry": _canon_entry(entry)})
        last_link, last_created = None, None
        for entry in irb._order:
            if last_link is not None and entry.link_seq <= last_link:
                raise InvariantViolation(
                    "irb-bijection", "janus",
                    "link_seq not strictly increasing in buffer order",
                    {"entry": _canon_entry(entry),
                     "previous_link_seq": last_link})
            if last_created is not None and \
                    entry.created_at < last_created:
                raise InvariantViolation(
                    "irb-bijection", "janus",
                    "created_at decreases in buffer order",
                    {"entry": _canon_entry(entry),
                     "previous_created_at": last_created})
            last_link, last_created = entry.link_seq, entry.created_at

    # -- core/mem: cross-shard sfence barrier ---------------------------
    def check_sfence(self, core_id: int) -> None:
        """Called by ``Core.sfence`` as the fence retires: the fence's
        durability contract must hold on every controller it may have
        touched (on the sharded machine a fence is a barrier over all
        shards its writebacks landed on).

        Deliberately metric-free and O(shards): it runs on every
        fence of a checked run.
        """
        system = self.system
        sharded = len(system.controllers) > 1
        for controller in system.controllers:
            write_queue = controller.write_queue
            undrained = write_queue.accepted - write_queue.drained
            # Unlike the commit-point check, a fence can observe an
            # accept between its slot grant and its resumption, so
            # ``outstanding`` may transiently exceed the accepted
            # count — but never the reverse, and the pending list must
            # agree with the counters exactly.
            if len(write_queue._pending) != undrained \
                    or undrained > write_queue.outstanding:
                raise InvariantViolation(
                    "sfence-barrier", "mem",
                    f"shard {controller.shard_id} write-queue "
                    f"accounting inconsistent at sfence "
                    f"(core {core_id})",
                    {"core": core_id, "shard": controller.shard_id,
                     "accepted": write_queue.accepted,
                     "drained": write_queue.drained,
                     "pending": len(write_queue._pending),
                     "outstanding": write_queue.outstanding})
            policy = controller.policy
            if policy.name != "async-epoch":
                continue
            # A coordinator demand-close may seal one epoch past the
            # bound on a sharded machine (docs/sharding.md); the
            # single-shard bound is exact.
            slack = 1 if sharded else 0
            debt = policy._epochs_closed - policy._epochs_flushed
            if debt > policy.staleness_epochs + slack:
                raise InvariantViolation(
                    "sfence-barrier", "core",
                    f"shard {controller.shard_id} staleness debt "
                    f"{debt} exceeds bound "
                    f"{policy.staleness_epochs} + {slack} at sfence "
                    f"(core {core_id})",
                    {"core": core_id, "shard": controller.shard_id,
                     "epochs_closed": policy._epochs_closed,
                     "epochs_flushed": policy._epochs_flushed,
                     "staleness_epochs": policy.staleness_epochs,
                     "slack": slack})

    # -- mem: write-queue epoch ordering --------------------------------
    def check_write_queue(self, wq) -> None:
        last = None
        for entry in wq._pending:
            if last is not None and entry.accepted_at < last:
                raise InvariantViolation(
                    "wq-epoch-order", "mem",
                    "pending entries out of acceptance order",
                    {"addr": entry.addr,
                     "accepted_at": entry.accepted_at,
                     "previous_accepted_at": last})
            last = entry.accepted_at
        undrained = wq.accepted - wq.drained
        # ``outstanding`` (slots in use) may transiently exceed the
        # accepted count: a concurrent accept holds its slot from the
        # grant instant, but only counts as accepted when its process
        # resumes.  The reverse can never hold, and the pending list
        # must agree with the counters exactly.
        if len(wq._pending) != undrained or undrained > wq.outstanding:
            raise InvariantViolation(
                "wq-epoch-order", "mem",
                f"accepted({wq.accepted}) - drained({wq.drained}) "
                f"inconsistent with pending({len(wq._pending)}) / "
                f"outstanding({wq.outstanding})",
                {"accepted": wq.accepted, "drained": wq.drained,
                 "pending": len(wq._pending),
                 "outstanding": wq.outstanding})

    # -- crypto: Merkle root agreement ----------------------------------
    def check_merkle(self, integrity) -> None:
        live = integrity.tree
        rebuilt = MerkleTree(arity=live.arity, height=live.height)
        for index, value in integrity.committed_leaves.items():
            rebuilt.update_leaf(index, value)
        if rebuilt.root != live.root:
            raise InvariantViolation(
                "merkle-root", "crypto",
                "live Merkle root disagrees with a from-scratch "
                "rebuild over the committed leaves",
                {"live_root": live.root.hex(),
                 "rebuilt_root": rebuilt.root.hex(),
                 "leaves": len(integrity.committed_leaves)})

    # -- crypto: counter monotonicity -----------------------------------
    def check_counters(self, encryption) -> None:
        engine = encryption.engine
        for addr, counter in engine._counters.items():
            seen = self._counter_watermarks.get(addr)
            if seen is not None and counter < seen:
                raise InvariantViolation(
                    "counter-monotone", "crypto",
                    f"encryption counter for line {addr:#x} went "
                    f"backwards ({seen} -> {counter}): pad reuse",
                    {"addr": addr, "previous": seen,
                     "current": counter})
            self._counter_watermarks[addr] = counter

    # -- bmo: dedup refcount <-> remap agreement ------------------------
    def check_dedup(self, dedup) -> None:
        table = dedup.table
        aliases: Dict[bytes, int] = {}
        for addr, fingerprint in table.remap.items():
            aliases[fingerprint] = aliases.get(fingerprint, 0) + 1
            if fingerprint not in table.entries:
                raise InvariantViolation(
                    "dedup-refcount", "bmo",
                    f"remap for line {addr:#x} targets a dropped "
                    f"dedup entry",
                    {"addr": addr, "fingerprint": fingerprint.hex()})
        for fingerprint, entry in table.entries.items():
            if entry.refcount <= 0:
                raise InvariantViolation(
                    "dedup-refcount", "bmo",
                    "dedup entry survives at refcount <= 0",
                    {"fingerprint": fingerprint.hex(),
                     "refcount": entry.refcount})
            expected = aliases.get(fingerprint, 0)
            if entry.refcount != expected:
                raise InvariantViolation(
                    "dedup-refcount", "bmo",
                    f"refcount {entry.refcount} != {expected} remap "
                    f"aliases",
                    {"fingerprint": fingerprint.hex(),
                     "refcount": entry.refcount,
                     "aliases": expected,
                     "store_addr": entry.store_addr})
            if dedup.engine.fingerprint(entry.plaintext) != fingerprint:
                raise InvariantViolation(
                    "dedup-refcount", "bmo",
                    "stored plaintext does not re-fingerprint to its "
                    "table key (stale pre-executed fingerprint "
                    "committed)",
                    {"fingerprint": fingerprint.hex(),
                     "store_addr": entry.store_addr,
                     "plaintext": entry.plaintext.hex()})

    # -- consistency: log committed-prefix rules ------------------------
    def check_logs(self) -> None:
        read_line = self.system.volatile.read_line
        for kind, log in self._logs:
            parser = parse_log if kind == "undo" else parse_redo_log
            committed = set()
            last_txn = None
            try:
                for record in parser(read_line, log.base, log.capacity):
                    rec_kind, txn_id = record[0], record[1]
                    if last_txn is not None and txn_id < last_txn:
                        # Wrapped tail: records beyond the monotone
                        # prefix are dead space from a previous lap.
                        break
                    last_txn = txn_id
                    if rec_kind == "commit":
                        committed.add(txn_id)
                    elif txn_id in committed:
                        raise InvariantViolation(
                            "log-prefix", "consistency",
                            f"{kind} log appends a {rec_kind!r} record "
                            f"for txn {txn_id} after its commit",
                            {"log": kind, "txn_id": txn_id,
                             "record": rec_kind})
            except RecoveryError as error:
                raise InvariantViolation(
                    "log-prefix", "consistency",
                    f"{kind} log corrupt within its monotone prefix: "
                    f"{error}",
                    {"log": kind, "base": log.base,
                     "error": str(error)}) from error
