"""Seeded stateful fuzzing over the Janus API and workload kernels
(``repro fuzz``).

Pipeline:

1. **Generate** — :func:`generate_cases` derives a deterministic case
   list from one root seed: ``api`` cases (random op sequences over
   the :mod:`repro.validate.oracles` vocabulary — stale hints, split
   requests, thread clears, swaps), ``irb`` cases (random traces
   through the indexed-vs-linear lockstep), and ``workload`` cases
   (small kernels run serialized-vs-janus to a recovered digest).
2. **Execute** — every case runs under the
   :class:`~repro.validate.invariants.InvariantChecker` *and* the
   differential oracles; any ``InvariantViolation``, any
   ``OracleMismatch``, and any unexpected exception is a failure.
   Cases shard across worker processes via
   :mod:`repro.harness.parallel`; results merge in submission order,
   so the report is byte-identical at any job count.
3. **Reduce** — failing ``api`` cases go through a delta-debugging
   (ddmin-style) pass that removes op chunks while the same failure
   class reproduces, yielding a minimal deterministic repro.
4. **Report** — minimized repros land in ``results/FUZZ_<date>/`` as
   ``repro_<NNN>.json`` (replayable with ``repro fuzz --replay``),
   plus a ``fuzz_report.json`` summary.  File *content* carries no
   timestamps, so identical seeds produce byte-identical repros.
"""

import json
from dataclasses import dataclass, field
from datetime import date
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.rng import DeterministicRng
from repro.harness.parallel import ParallelExecutor, SweepTask
from repro.harness.report import ensure_parent
from repro.obs import log as runlog
from repro.validate.invariants import InvariantViolation
from repro.validate.oracles import (
    PALETTE,
    OracleMismatch,
    check_mode_equivalence,
    check_workload_equivalence,
    run_random_irb_trace,
)

SCHEMA_REPRO = "repro-fuzz-repro-v1"
SCHEMA_REPORT = "repro-fuzz-report-v1"
DEFAULT_DIR = "results"
#: Workload kernels mixed into the default case diet (small, fast,
#: structurally diverse).
DEFAULT_WORKLOADS = ("array_swap", "queue", "hash_table")
#: Cases per worker-process batch (amortizes fork cost).
BATCH = 4

#: Candidate-mode rotation for differential cases: every api/workload
#: case diffs one of these against the serialized reference, cycling
#: by case ordinal, so even a ``--quick`` (12-case) campaign covers
#: the relaxed ``coalesced``/``async-epoch`` modes alongside janus.
MODE_ROTATION = (("janus",), ("coalesced",), ("async-epoch",))

#: Op kinds with generation weights.  ``stale`` and ``split`` are
#: over-represented on purpose: they exercise IRB invalidation and
#: merge re-filing, the §4.3.1 hazards.
_OP_WEIGHTS = (
    ("store", 18), ("hinted", 18), ("stale", 14), ("split", 14),
    ("addr", 10), ("data", 10), ("clear", 6), ("swap", 5),
    ("compute", 5),
)


@dataclass
class FuzzCase:
    """One deterministic fuzz input (JSON round-trippable)."""

    kind: str            # "api" | "irb" | "workload"
    seed: int
    ops: List[tuple] = field(default_factory=list)  # api cases only
    params: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "seed": self.seed,
                "ops": [list(op) for op in self.ops],
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict) -> "FuzzCase":
        return cls(kind=data["kind"], seed=data["seed"],
                   ops=[tuple(op) for op in data.get("ops", [])],
                   params=dict(data.get("params", {})))


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------
def _pick_op(rng, n_lines: int) -> tuple:
    total = sum(w for _, w in _OP_WEIGHTS)
    roll = rng.randrange(total)
    for kind, weight in _OP_WEIGHTS:
        roll -= weight
        if roll < 0:
            break
    if kind == "stale":
        return ("stale", rng.randrange(n_lines),
                rng.randrange(len(PALETTE)), rng.randrange(len(PALETTE)))
    if kind == "clear":
        return ("clear",)
    if kind == "swap":
        lo = rng.randrange(n_lines)
        return ("swap", lo, min(n_lines, lo + 1 + rng.randrange(3)))
    if kind == "compute":
        return ("compute", 100 * (1 + rng.randrange(10)))
    return (kind, rng.randrange(n_lines), rng.randrange(len(PALETTE)))


def generate_api_case(seed: int, max_ops: int = 16,
                      n_lines: int = 8,
                      threads: int = 2) -> FuzzCase:
    """Two concurrent threads by default: one thread's pipeline
    commits land inside the other's pre-execution windows, so the
    invariant checker observes mid-flight IRB states that a
    single-threaded program would serialize away."""
    rng = DeterministicRng(seed).stream("fuzz-api")
    n_ops = 2 + rng.randrange(max(1, max_ops - 1))
    ops = [_pick_op(rng, n_lines) for _ in range(n_ops)]
    return FuzzCase(kind="api", seed=seed, ops=ops,
                    params={"n_lines": n_lines, "threads": threads})


def generate_cases(seed: int, count: int, max_ops: int = 16,
                   workloads: Sequence[str] = DEFAULT_WORKLOADS,
                   shards: int = 1) -> List[FuzzCase]:
    """The deterministic case list for one root seed.

    Diet: mostly ``api`` cases, one ``irb`` lockstep trace per 5
    cases, and one small ``workload`` kernel per 7 (round-robin over
    ``workloads``; pass an empty sequence to disable).  Differential
    cases rotate their candidate mode through :data:`MODE_ROTATION`.

    ``shards != 1`` runs every differential case's *candidate* on an
    N-way sharded machine against the unsharded serialized reference
    (docs/sharding.md); the param is omitted at 1 so default repro
    files stay byte-identical to pre-sharding campaigns.
    """
    cases: List[FuzzCase] = []
    diffed = 0
    for index in range(count):
        case_seed = seed * 1_000_003 + index
        if index % 5 == 4:
            cases.append(FuzzCase(
                kind="irb", seed=case_seed,
                params={"steps": 150, "addr_p": 0.55, "pre_ids": 3}))
            continue
        modes = MODE_ROTATION[diffed % len(MODE_ROTATION)]
        diffed += 1
        if workloads and index % 7 == 6:
            name = workloads[(index // 7) % len(workloads)]
            cases.append(FuzzCase(
                kind="workload", seed=case_seed,
                params={"workload": name, "txns": 5, "items": 10,
                        "modes": list(modes)}))
        else:
            case = generate_api_case(case_seed, max_ops=max_ops)
            case.params["modes"] = list(modes)
            cases.append(case)
        if shards != 1:
            cases[-1].params["shards"] = shards
    return cases


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------
def _jsonable(value):
    """Recursively coerce a failure payload to JSON-able types —
    oracle diffs carry raw line payloads (bytes) and tuples."""
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item)
                for key, item in value.items()}
    return value


def _failure_from(error: BaseException) -> Dict:
    if isinstance(error, InvariantViolation):
        failure = {"class": "invariant"}
        failure.update(_jsonable(error.as_dict()))
        return failure
    if isinstance(error, OracleMismatch):
        return {"class": "oracle", "detail": error.detail,
                "diff": _jsonable(list(error.diff))}
    return {"class": "exception", "type": type(error).__name__,
            "detail": str(error)}


def failure_key(failure: Dict) -> Tuple:
    """Equivalence class used by the reducer: a trial input must fail
    the *same way* to count as a reproduction."""
    return (failure.get("class"), failure.get("invariant"),
            failure.get("type"))


def run_case(case: FuzzCase) -> Optional[Dict]:
    """Execute one case; returns a failure dict or ``None``."""
    shards = (case.params.get("shards", 1),)
    try:
        if case.kind == "api":
            check_mode_equivalence(
                case.ops,
                modes=tuple(case.params.get("modes", ("janus",))),
                n_lines=case.params.get("n_lines", 8),
                seed=case.seed % 1009, check=True,
                threads=case.params.get("threads", 1),
                shards=shards)
        elif case.kind == "irb":
            rng = DeterministicRng(case.seed).stream("fuzz-irb")
            run_random_irb_trace(
                rng, steps=case.params.get("steps", 150),
                pre_ids=case.params.get("pre_ids", 3),
                addr_p=case.params.get("addr_p", 0.55))
        elif case.kind == "workload":
            check_workload_equivalence(
                case.params["workload"], seed=case.seed % 1009,
                txns=case.params.get("txns", 5),
                items=case.params.get("items", 10), check=True,
                modes=tuple(case.params.get("modes", ("janus",))),
                shards=shards)
        else:
            raise ValueError(f"unknown case kind {case.kind!r}")
    except BaseException as error:  # noqa: BLE001 — classify, don't sink
        return _failure_from(error)
    return None


def run_batch(case_dicts: List[Dict]) -> List[Optional[Dict]]:
    """Worker entry point: one failure-or-None per case, in order."""
    return [run_case(FuzzCase.from_dict(data)) for data in case_dicts]


# ---------------------------------------------------------------------------
# delta-debugging reduction (api cases)
# ---------------------------------------------------------------------------
def reduce_case(case: FuzzCase, failure: Dict,
                max_runs: int = 400) -> Tuple[FuzzCase, int]:
    """Minimize an ``api`` case's op list while the same failure class
    reproduces (greedy ddmin: halving chunk sizes down to single ops).

    Returns ``(reduced_case, runs_used)``.  Deterministic: reduction
    order depends only on the op list, never on timing or job count.
    """
    if case.kind != "api":
        return case, 0
    target = failure_key(failure)
    ops = list(case.ops)
    runs = 0

    def still_fails(trial_ops: List[tuple]) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        trial = FuzzCase(kind="api", seed=case.seed,
                         ops=list(trial_ops), params=dict(case.params))
        trial_failure = run_case(trial)
        return (trial_failure is not None
                and failure_key(trial_failure) == target)

    chunk = max(1, len(ops) // 2)
    while True:
        index = 0
        while index < len(ops):
            trial = ops[:index] + ops[index + chunk:]
            if trial and still_fails(trial):
                ops = trial
            else:
                index += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return FuzzCase(kind="api", seed=case.seed, ops=ops,
                    params=dict(case.params)), runs


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------
def fuzz_dir(base: str = DEFAULT_DIR) -> str:
    return str(Path(base) / f"FUZZ_{date.today().isoformat()}")


def run_fuzz(cases: int = 60, seed: int = 0, max_ops: int = 16,
             jobs: Optional[int] = None,
             workloads: Sequence[str] = DEFAULT_WORKLOADS,
             out_dir: Optional[str] = None, write: bool = True,
             progress=None, shards: int = 1,
             worker_fn: str = "repro.validate.fuzz:run_batch") -> Dict:
    """Run one fuzz campaign; returns the report dict.

    Deterministic contract: the report body and every repro file are
    byte-identical for the same ``(seed, cases, max_ops, workloads)``
    at any ``jobs`` count — sharding is merged in submission order and
    reduction happens in the parent.

    ``worker_fn`` names the batch runner resolved inside each worker
    process (``module:callable``, same contract as :func:`run_batch`).
    Mutation-testing harnesses point it at a wrapper that plants a
    bug before delegating — worker processes do not inherit the
    parent's monkeypatches.
    """
    runlog.event("validate.fuzz", "campaign.start", cases=cases,
                 seed=seed, max_ops=max_ops,
                 workloads=list(workloads))
    case_list = generate_cases(seed, cases, max_ops=max_ops,
                               workloads=workloads, shards=shards)
    batches = [case_list[i:i + BATCH]
               for i in range(0, len(case_list), BATCH)]
    tasks = [SweepTask(key=("fuzz", i), fn=worker_fn,
                       args=([c.to_dict() for c in batch],))
             for i, batch in enumerate(batches)]
    executor = ParallelExecutor(jobs=jobs, timeout_s=600.0,
                                progress=progress)
    results = executor.map(tasks)

    failures = []
    for batch_index, result in enumerate(results):
        if not result.ok:
            # The batch runner itself died (it classifies per-case
            # failures internally, so this is harness trouble).
            failures.append({
                "case": {"kind": "batch", "seed": seed,
                         "ops": [], "params": {"batch": batch_index}},
                "failure": {"class": "harness", "detail": result.error},
            })
            continue
        for offset, failure in enumerate(result.value):
            if failure is None:
                continue
            case = batches[batch_index][offset]
            failures.append({"case": case.to_dict(),
                             "failure": failure})

    repros = []
    for entry in failures:
        case = FuzzCase.from_dict(entry["case"]) \
            if entry["case"]["kind"] != "batch" else None
        if case is not None and case.kind == "api":
            reduced, runs = reduce_case(case, entry["failure"])
            entry["reduced"] = reduced.to_dict()
            entry["reduction_runs"] = runs
        repros.append(entry)

    for entry in repros:
        runlog.event("validate.fuzz", "case_failed", level="error",
                     kind=entry["case"]["kind"],
                     failure_class=entry["failure"].get("class"),
                     detail=entry["failure"].get("detail"))
    runlog.event("validate.fuzz", "campaign.done",
                 cases=len(case_list), failures=len(repros))
    report = {
        "schema": SCHEMA_REPORT,
        "seed": seed,
        "cases": len(case_list),
        "case_mix": _case_mix(case_list),
        "failures": len(repros),
        "repros": repros,
    }
    if write:
        directory = out_dir if out_dir is not None else fuzz_dir()
        report["dir"] = directory
        for index, entry in enumerate(repros):
            path = Path(directory) / f"repro_{index:03d}.json"
            _write_json(path, {"schema": SCHEMA_REPRO, **entry})
        _write_json(Path(directory) / "fuzz_report.json",
                    {k: v for k, v in report.items() if k != "dir"})
    return report


def _case_mix(case_list: List[FuzzCase]) -> Dict[str, int]:
    mix: Dict[str, int] = {}
    for case in case_list:
        mix[case.kind] = mix.get(case.kind, 0) + 1
    return mix


def _write_json(path: Path, payload: Dict) -> None:
    with open(ensure_parent(path), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def replay(path: str) -> Optional[Dict]:
    """Re-run the (reduced, if present) case from a repro file;
    returns the fresh failure dict, or ``None`` if it no longer
    fails."""
    with open(path) as handle:
        payload = json.load(handle)
    case = FuzzCase.from_dict(payload.get("reduced") or payload["case"])
    return run_case(case)


def render_report(report: Dict) -> str:
    lines = [f"fuzz: {report['cases']} cases "
             f"(mix {report['case_mix']}), seed {report['seed']}: "
             f"{report['failures']} failure(s)"]
    for index, entry in enumerate(report["repros"]):
        failure = entry["failure"]
        case = entry.get("reduced", entry["case"])
        label = failure.get("invariant") or failure.get("type") \
            or failure.get("detail", "")
        lines.append(
            f"  repro_{index:03d}: {entry['case']['kind']} "
            f"[{failure['class']}] {label} "
            f"({len(case.get('ops', []))} ops after reduction)")
    return "\n".join(lines)
