"""Reusable differential oracles.

Two lockstep comparisons back the repo's equivalence arguments:

* **Mode oracle** — run one op sequence under serialized (the
  reference), janus, and any other design point; crash, recover
  through ciphertext + metadata, and diff the final NVM images.  The
  paper's requirement 1 (§3.2) in its strongest form: pre-execution
  and DAG parallelization are *latency* optimizations, so recovered
  contents must be byte-identical to the serialized baseline for
  arbitrary programs.  Promoted from ``tests/test_mode_equivalence``.

* **IRB lockstep** — drive the indexed
  :class:`~repro.janus.irb.IntermediateResultBuffer` and the
  :class:`~repro.janus.irb_linear.LinearScanIrb` reference with the
  same operation stream and compare observable state after every
  step.  Promoted from ``tests/test_irb_equivalence``.

Both raise :class:`OracleMismatch` (never a bare ``AssertionError``)
so the fuzz harness can classify divergences as structured failures.

Op vocabulary (shared with :mod:`repro.validate.fuzz`) — each op is a
tuple; ``slot`` indexes a small line arena, ``v`` indexes
:data:`PALETTE`:

==========================  =========================================
``("store", slot, v)``      plain store + persist (no hint)
``("hinted", slot, v)``     correct PRE_BOTH hint, window, store
``("stale", slot, hv, v)``  PRE_BOTH hints value ``hv``, program
                            stores ``v`` — the §4.3.1 stale-data path
``("addr", slot, v)``       PRE_ADDR hint, then store
``("data", slot, v)``       PRE_DATA hint (address-less), then store
``("split", slot, v)``      PRE_ADDR + PRE_DATA on one pre_obj — the
                            two requests merge in the IRB
``("clear",)``              thread_exit: clear the thread's entries
``("swap", lo, hi)``        OS memory swap over arena slots [lo, hi)
``("compute", n)``          n instructions of core-local work
==========================  =========================================

Hint ops are free no-ops outside janus mode, so one sequence drives
every design point.
"""

import hashlib
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.common.config import default_config
from repro.common.errors import RecoveryCrash, ReproError
from repro.consistency import recover
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.core import NvmSystem
from repro.janus.irb import IntermediateResultBuffer, IrbEntry
from repro.janus.irb_linear import LinearScanIrb
from repro.sim import Resource, Simulator, Store
from repro.workloads import WorkloadParams, make_workload

LINE = 64
#: Data values the op vocabulary indexes into — small on purpose, so
#: duplicate writes (the dedup-relevant case) occur constantly.
PALETTE = [bytes([v]) * LINE for v in range(1, 7)]


class OracleMismatch(ReproError):
    """Two lockstep executions diverged."""

    def __init__(self, detail: str, diff=None):
        super().__init__(detail)
        self.detail = detail
        self.diff = diff if diff is not None else []


# ---------------------------------------------------------------------------
# Mode oracle: serialized vs janus (vs any mode) final-image diff
# ---------------------------------------------------------------------------
def apply_ops(core, base: int, ops: Sequence[tuple]):
    """Generator: interpret one op sequence on ``core`` against the
    arena at ``base``.  See the module docstring for the vocabulary."""
    api = core.api
    for op in ops:
        kind = op[0]
        if kind == "store":
            _, slot, v = op
            addr, value = base + slot * LINE, PALETTE[v]
            yield from core.store(addr, value)
            yield from core.persist(addr, LINE)
        elif kind == "hinted":
            _, slot, v = op
            addr, value = base + slot * LINE, PALETTE[v]
            obj = api.pre_init()
            yield from api.pre_both(obj, addr, value)
            yield from core.compute(800)
            yield from core.store(addr, value)
            yield from core.persist(addr, LINE)
        elif kind == "stale":
            _, slot, hv, v = op
            addr = base + slot * LINE
            obj = api.pre_init()
            yield from api.pre_both(obj, addr, PALETTE[hv])
            yield from core.compute(800)
            yield from core.store(addr, PALETTE[v])
            yield from core.persist(addr, LINE)
        elif kind == "addr":
            _, slot, v = op
            addr = base + slot * LINE
            obj = api.pre_init()
            yield from api.pre_addr(obj, addr, LINE)
            yield from core.compute(400)
            yield from core.store(addr, PALETTE[v])
            yield from core.persist(addr, LINE)
        elif kind == "data":
            _, slot, v = op
            addr = base + slot * LINE
            obj = api.pre_init()
            yield from api.pre_data(obj, PALETTE[v])
            yield from core.compute(400)
            yield from core.store(addr, PALETTE[v])
            yield from core.persist(addr, LINE)
        elif kind == "split":
            # Data-only then address-only requests on one pre_obj: the
            # decoder emits two operations that merge inside the IRB.
            # Data first, so the merged-into entry starts address-less
            # and must be *re-filed* into the address indexes when the
            # PRE_ADDR arrives — the trickiest merge direction.
            _, slot, v = op
            addr = base + slot * LINE
            obj = api.pre_init()
            yield from api.pre_data(obj, PALETTE[v])
            yield from api.pre_addr(obj, addr, LINE)
            yield from core.compute(800)
            yield from core.store(addr, PALETTE[v])
            yield from core.persist(addr, LINE)
        elif kind == "clear":
            api.thread_exit()
        elif kind == "swap":
            _, lo, hi = op
            if core.system.janus_frontend is not None:
                # The frontend broadcasts to every shard's engine (it
                # IS the engine at shards=1).
                core.system.janus_frontend.on_memory_swap(
                    base + lo * LINE, base + hi * LINE)
        elif kind == "compute":
            yield from core.compute(op[1])
        else:
            raise ValueError(f"unknown oracle op {op!r}")


def partition_ops(ops: Sequence[tuple],
                  threads: int) -> List[List[tuple]]:
    """Split one op list into per-thread streams, deterministically.

    Slotted ops go to thread ``slot % threads`` — each arena line is
    owned by exactly one thread, so the final image is
    interleaving-independent and mode equivalence still holds — while
    ``swap`` (a global IRB notification) pins to thread 0 and
    ``clear``/``compute`` round-robin by position.  Running streams
    concurrently is what lets one thread's pipeline commits land
    inside another thread's pre-execution window, which is where
    cross-layer invariant bugs hide.
    """
    if threads <= 1:
        return [list(ops)]
    streams: List[List[tuple]] = [[] for _ in range(threads)]
    for index, op in enumerate(ops):
        if op[0] in ("store", "hinted", "stale", "addr", "data",
                     "split"):
            streams[op[1] % threads].append(op)
        elif op[0] == "swap":
            streams[0].append(op)
        else:
            streams[index % threads].append(op)
    return streams


def run_write_program(mode: str, ops: Sequence[tuple],
                      n_lines: int = 12, seed: int = 11,
                      check: bool = False,
                      threads: int = 1,
                      shards: int = 1) -> List[bytes]:
    """Run ``ops`` under ``mode``; return the recovered arena image.

    The system is crashed at the end and recovered through ciphertext
    and metadata with MAC verification — the image is what a user
    would actually read back, not the volatile view.  ``check=True``
    additionally runs the :class:`InvariantChecker` on every commit.
    ``threads`` > 1 partitions the ops (see :func:`partition_ops`)
    over that many concurrent cores; ``shards`` > 1 runs the sharded
    machine (the arena interleaves across controllers).
    """
    system = NvmSystem(default_config(mode=mode, seed=seed,
                                      cores=max(1, threads),
                                      check_invariants=check,
                                      shards=shards))
    base = system.heap.alloc_line(n_lines * LINE, label="arena")
    system.run_programs(
        [apply_ops(system.cores[tid], base, stream)
         for tid, stream in enumerate(partition_ops(ops, threads))])
    if system.checker is not None:
        system.checker.check_all(full=True)
    snapshot = system.crash()
    state = recover(snapshot, verify_macs=True)
    return [state.read(base + slot * LINE, LINE)
            for slot in range(n_lines)]


def diff_images(reference: List[bytes],
                candidate: List[bytes]) -> List[Tuple[int, str, str]]:
    """Slots where two arena images disagree, as (slot, ref, got)."""
    out = []
    for slot, (ref, got) in enumerate(zip(reference, candidate)):
        if ref != got:
            out.append((slot, ref.hex(), got.hex()))
    if len(reference) != len(candidate):
        out.append((-1, f"len={len(reference)}",
                    f"len={len(candidate)}"))
    return out


def check_mode_equivalence(ops: Sequence[tuple],
                           modes: Iterable[str] = ("janus",),
                           n_lines: int = 12, seed: int = 11,
                           check: bool = True,
                           threads: int = 1,
                           shards: Iterable[int] = (1,)) -> None:
    """Raise :class:`OracleMismatch` unless every mode's recovered
    image matches the serialized reference for ``ops``.

    This is the *final-image* contract: it holds unconditionally for
    ``parallel``/``janus``/``ideal``/``coalesced`` (their relaxations
    are timing-only) and for ``async-epoch`` on **completed** runs —
    ``run_programs`` quiesces the policy, so every epoch has flushed
    by the time the crash snapshot is taken.  Mid-run crashes of
    ``async-epoch`` are covered by the *bounded-staleness* contract
    instead (:func:`check_bounded_staleness`).

    The reference is always the unsharded serialized machine; every
    candidate mode runs at every shard count in ``shards``, so the
    sharded topology must be functionally invisible too.
    """
    reference = run_write_program("serialized", ops, n_lines=n_lines,
                                  seed=seed, check=check,
                                  threads=threads)
    for n_shards in shards:
        for mode in modes:
            if mode == "serialized" and n_shards == 1:
                continue  # that is the reference itself
            image = run_write_program(mode, ops, n_lines=n_lines,
                                      seed=seed, check=check,
                                      threads=threads,
                                      shards=n_shards)
            diff = diff_images(reference, image)
            if diff:
                raise OracleMismatch(
                    f"{mode} (shards={n_shards}) image diverges from "
                    f"serialized on {len(diff)} slot(s)", diff=diff)


def run_workload_digest(mode: str, workload: str, seed: int = 7,
                        txns: int = 8, items: int = 16,
                        check: bool = True, shards: int = 1) -> str:
    """Run a workload kernel to completion, crash, recover, and return
    the logical digest of the recovered structure."""
    system = NvmSystem(default_config(mode=mode, seed=seed,
                                      check_invariants=check,
                                      shards=shards))
    params = WorkloadParams(n_items=items, n_transactions=txns)
    variant = "manual" if mode == "janus" else "baseline"
    instance = make_workload(workload, system, system.cores[0], params,
                             variant=variant)
    system.run_programs([instance.run()])
    if system.checker is not None:
        system.checker.check_all(full=True)
    snapshot = system.crash()
    state = recover(snapshot,
                    [(instance.log.base, instance.log.capacity)],
                    verify_macs=True)
    return instance.logical_digest(state.read)


def check_workload_equivalence(workload: str, seed: int = 7,
                               txns: int = 8, items: int = 16,
                               check: bool = True,
                               modes: Iterable[str] = ("janus",),
                               shards: Iterable[int] = (1,)
                               ) -> None:
    """Raise :class:`OracleMismatch` unless every candidate mode's run
    of a workload kernel recovers to the serialized run's digest.

    The reference is always the unsharded (``shards=1``) serialized
    run; candidates sweep ``modes`` x ``shards``, so a sharded
    topology of any width must recover to the identical logical
    structure."""
    reference = run_workload_digest("serialized", workload, seed=seed,
                                    txns=txns, items=items, check=check)
    for n_shards in shards:
        for mode in modes:
            if mode == "serialized" and n_shards == 1:
                continue  # that is the reference itself
            candidate = run_workload_digest(mode, workload, seed=seed,
                                            txns=txns, items=items,
                                            check=check,
                                            shards=n_shards)
            if reference != candidate:
                raise OracleMismatch(
                    f"{workload}: {mode} (shards={n_shards}) digest "
                    f"{candidate[:12]} != serialized "
                    f"{reference[:12]}",
                    diff=[("digest", reference, candidate)])


# ---------------------------------------------------------------------------
# Bounded staleness: async-epoch crashes land on epoch boundaries
# ---------------------------------------------------------------------------
def run_staleness_crash(workload: str, seed: int = 7, txns: int = 12,
                        items: int = 8, crash_fraction: float = 0.5,
                        staleness_epochs: int = 2,
                        epoch_writes: int = 32,
                        check: bool = False,
                        shards: int = 1) -> dict:
    """Crash one ``async-epoch`` run mid-stream and recover it.

    Runs the serialized reference trajectory first (per-commit
    digests are mode-independent), then a fresh ``async-epoch``
    system crashed at ``crash_fraction`` of the reference horizon.
    Returns the evidence record the bounded-staleness oracle judges:
    recovered commit ids, demoted ids, the recovered digest vs. the
    reference digest at that commit count, and the policy watermark
    from the crash snapshot.
    """
    from repro.harness.crash_campaign import reference_trajectory

    params = WorkloadParams(n_items=items, n_transactions=txns)
    digests, horizon = reference_trajectory(workload, "serialized",
                                            params, seed)
    config = default_config(mode="async-epoch", seed=seed,
                            check_invariants=check, shards=shards)
    config.scheduling.staleness_epochs = staleness_epochs
    config.scheduling.epoch_writes = epoch_writes
    system = NvmSystem(config)
    instance = make_workload(workload, system, system.cores[0],
                             params, variant="baseline")
    system.sim.process(instance.run(), name="stream")
    system.sim.run(until=horizon * crash_fraction)
    if system.checker is not None:
        system.checker.check_all(full=True)
    snapshot = system.crash()
    scheduling = snapshot["metadata"].get("scheduling", {})
    state = recover(snapshot,
                    [(instance.log.base, instance.log.capacity)],
                    verify_macs=True)
    k = len(state.committed_txns)
    return {
        "workload": workload,
        "crash_fraction": crash_fraction,
        "committed": list(state.committed_txns),
        "demoted": list(state.demoted_txns),
        "rolled_back": list(state.rolled_back),
        "digest": instance.logical_digest(state.read),
        "reference_digest": digests.get(k),
        "scheduling": scheduling,
    }


def check_bounded_staleness(workload: str, seed: int = 7,
                            txns: int = 12, items: int = 8,
                            crash_fractions: Sequence[float] =
                            (0.35, 0.6, 0.85),
                            staleness_epochs: int = 2,
                            epoch_writes: int = 32,
                            check: bool = False,
                            shards: int = 1) -> int:
    """The ``async-epoch`` consistency contract, as an oracle.

    For each crash point: (1) the recovered commit set must be the
    prefix ``1..k`` — recovery lands exactly on a closed-epoch
    boundary (on the sharded machine, the cross-shard consistent
    cut), never mid-epoch; (2) every surviving commit must be inside
    the durable watermark; (3) the recovered digest must equal the
    mode-independent reference digest at ``k``; (4) the snapshot
    watermark must witness the staleness bound — at shards=1 the
    exact ``epochs_closed - epochs_flushed <= staleness_epochs``, on
    the sharded machine per shard with one epoch of slack for
    coordinator demand-closes (docs/sharding.md).  Raises
    :class:`OracleMismatch` on any breach; returns the number of
    crash points checked.
    """
    for fraction in crash_fractions:
        record = run_staleness_crash(
            workload, seed=seed, txns=txns, items=items,
            crash_fraction=fraction,
            staleness_epochs=staleness_epochs,
            epoch_writes=epoch_writes, check=check, shards=shards)
        committed = record["committed"]
        k = len(committed)
        tag = f"{workload} @ {fraction}" if shards == 1 \
            else f"{workload} @ {fraction} (shards={shards})"
        if committed != list(range(1, k + 1)):
            raise OracleMismatch(
                f"{tag}: recovered commits {committed} are not the "
                f"prefix 1..{k}", diff=[("committed", committed)])
        flushed = set(record["scheduling"].get("flushed_txns", ()))
        outside = [t for t in committed if t not in flushed]
        if outside:
            raise OracleMismatch(
                f"{tag}: commits {outside} survived recovery outside "
                f"the durable watermark {sorted(flushed)}",
                diff=[("outside", outside)])
        if record["digest"] != record["reference_digest"]:
            raise OracleMismatch(
                f"{tag}: digest at k={k} diverges from the reference "
                f"trajectory",
                diff=[("reference", record["reference_digest"]),
                      ("got", record["digest"])])
        per_shard = record["scheduling"].get("per_shard")
        if per_shard:
            for shard_id, meta in enumerate(per_shard):
                debt = meta["epochs_closed"] - meta["epochs_flushed"]
                if debt > staleness_epochs + 1:
                    raise OracleMismatch(
                        f"{tag}: shard {shard_id} holds {debt} "
                        f"unflushed epochs, exceeding the bound "
                        f"{staleness_epochs} + 1 demand-close",
                        diff=[("scheduling",
                               record["scheduling"])])
        else:
            closed = record["scheduling"].get("epochs_closed", 0)
            done = record["scheduling"].get("epochs_flushed", 0)
            if closed - done > staleness_epochs:
                raise OracleMismatch(
                    f"{tag}: {closed - done} unflushed epochs exceeds "
                    f"the staleness bound {staleness_epochs}",
                    diff=[("scheduling", record["scheduling"])])
    return len(tuple(crash_fractions))


# ---------------------------------------------------------------------------
# Recovery idempotence: crash recovery at every step, recover again
# ---------------------------------------------------------------------------
def _recovery_digest(state) -> tuple:
    """Default observable outcome of one recovery: the transaction
    verdicts plus a hash of every materialised program-visible line."""
    digest = hashlib.sha256()
    overlay = state.overlay_snapshot()
    for addr in sorted(overlay):
        digest.update(addr.to_bytes(8, "little"))
        digest.update(overlay[addr])
    return (tuple(state.committed_txns), tuple(state.rolled_back),
            digest.hexdigest())


def check_recovery_idempotent(snapshot: dict,
                              undo_log_regions: Sequence[Tuple[int, int]] = (),
                              redo_log_regions: Sequence[Tuple[int, int]] = (),
                              verify_macs: bool = True,
                              digest_fn=None, policy=None) -> int:
    """Prove ``recover(crash(recover(s))) == recover(s)`` at *every*
    instrumented crash point.

    One reference recovery counts the instrumented steps and records
    the observable outcome (``digest_fn(state)``, defaulting to
    transaction verdicts + an overlay hash).  Then, for each step
    ``n``, a fresh copy of the snapshot is recovered with a seeded
    ``recovery_crash`` armed at step ``n`` — which must raise
    :class:`RecoveryCrash` — and recovered *again* without the
    injector.  The second recovery must reproduce the reference
    outcome exactly (including the quarantine set), or
    :class:`OracleMismatch` is raised.  Returns the number of crash
    points exercised.
    """
    digest_fn = digest_fn if digest_fn is not None else _recovery_digest

    def fresh() -> dict:
        # Recovery's only image mutations are whole-line heal-backs,
        # so a shallow per-line copy isolates each attempt (the bytes
        # themselves are immutable; metadata is only read).
        return {"nvm_lines": dict(snapshot["nvm_lines"]),
                "metadata": snapshot["metadata"]}

    ref_quarantine: set = set()
    reference = recover(fresh(), undo_log_regions, redo_log_regions,
                        verify_macs=verify_macs, policy=policy,
                        quarantine=ref_quarantine)
    n_steps = reference.steps
    ref_digest = digest_fn(reference)
    for step in range(1, n_steps + 1):
        injector = FaultInjector(FaultPlan(seed=step, specs=[
            FaultSpec(kind="recovery_crash", after_n=step)]))
        quarantine: set = set()
        snap = fresh()
        try:
            recover(snap, undo_log_regions, redo_log_regions,
                    verify_macs=verify_macs, injector=injector,
                    policy=policy, quarantine=quarantine)
        except RecoveryCrash:
            pass
        else:
            raise OracleMismatch(
                f"recovery_crash armed at step {step} never fired "
                f"({n_steps} instrumented steps)")
        retry = recover(snap, undo_log_regions, redo_log_regions,
                        verify_macs=verify_macs, policy=policy,
                        quarantine=quarantine)
        if quarantine != ref_quarantine:
            raise OracleMismatch(
                f"recovery after a crash at step {step} quarantined "
                f"{sorted(quarantine)} != reference "
                f"{sorted(ref_quarantine)}")
        got = digest_fn(retry)
        if got != ref_digest:
            raise OracleMismatch(
                f"recovery is not idempotent across a crash at step "
                f"{step}/{n_steps}",
                diff=[("reference", ref_digest), ("got", got)])
    return n_steps


# ---------------------------------------------------------------------------
# IRB lockstep: indexed implementation vs linear-scan reference
# ---------------------------------------------------------------------------
LINES = [LINE * i for i in range(12)]
PAYLOADS = [bytes([b]) * LINE for b in (0x11, 0x22, 0x33)]
THREADS = (0, 1, 2)


def canon_entry(entry) -> tuple:
    """Identity-free view of an entry for cross-implementation
    comparison."""
    return (entry.pre_id, entry.thread_id, entry.transaction_id,
            -1 if entry.line_addr is None else entry.line_addr,
            entry.data or b"", entry.data_seq, entry.created_at,
            tuple(sorted(entry.ctx.completed)))


def canon(irb) -> list:
    return sorted(canon_entry(e) for e in irb.entries())


def clone(entry: IrbEntry) -> IrbEntry:
    return IrbEntry(
        pre_id=entry.pre_id, thread_id=entry.thread_id,
        transaction_id=entry.transaction_id,
        line_addr=entry.line_addr, data=entry.data,
        data_seq=entry.data_seq)


def random_entry(rng, lines=LINES, pre_ids: int = 6, txns: int = 2,
                 addr_p: float = 0.7) -> IrbEntry:
    has_addr = rng.random() < addr_p
    has_data = rng.random() < 0.6 or not has_addr
    return IrbEntry(
        pre_id=rng.randrange(pre_ids),
        thread_id=rng.choice(THREADS),
        transaction_id=rng.randrange(txns),
        line_addr=rng.choice(lines) if has_addr else None,
        data=rng.choice(PAYLOADS) if has_data else None,
        data_seq=rng.randrange(2))


class IrbLockstep:
    """Indexed IRB and linear reference driven as one, verified after
    every operation.

    Every mutator applies the operation to both implementations,
    compares the per-op result, then :meth:`verify`-s the full
    observable state (resident entries, occupancy, stats bag).
    Divergence raises :class:`OracleMismatch` tagged with the op.
    """

    def __init__(self, capacity: int = 10, max_age_ns: float = 500.0):
        self.sim_a, self.sim_b = Simulator(), Simulator()
        self.indexed = IntermediateResultBuffer(
            self.sim_a, capacity=capacity, max_age_ns=max_age_ns)
        self.linear = LinearScanIrb(
            self.sim_b, capacity=capacity, max_age_ns=max_age_ns)
        self.steps = 0

    def advance(self, dt: float) -> None:
        """Move both clocks forward in lockstep."""
        self.sim_a.now += dt
        self.sim_b.now += dt

    def _mismatch(self, op: str, detail: str) -> OracleMismatch:
        return OracleMismatch(
            f"IRB lockstep diverged at step {self.steps} ({op}): "
            f"{detail}",
            diff=[("indexed", canon(self.indexed)),
                  ("linear", canon(self.linear))])

    def _compare_pair(self, op: str, got_a, got_b) -> None:
        if (got_a is None) != (got_b is None):
            raise self._mismatch(
                op, f"indexed -> {got_a is not None}, "
                    f"linear -> {got_b is not None}")
        if got_a is not None and canon_entry(got_a) != canon_entry(got_b):
            raise self._mismatch(op, "returned entries differ")

    def insert(self, entry: IrbEntry):
        got_a = self.indexed.insert(entry)
        got_b = self.linear.insert(clone(entry))
        self._compare_pair("insert", got_a, got_b)
        self.verify("insert")
        return got_a

    def match(self, thread_id: int, line_addr: int, data: bytes):
        got_a = self.indexed.match_write(thread_id, line_addr, data)
        got_b = self.linear.match_write(thread_id, line_addr, data)
        self._compare_pair("match", got_a, got_b)
        self.verify("match")
        return got_a

    def consume_nth(self, index: int) -> None:
        """Consume the same logical entry (canon order) on both sides."""
        resident_a = sorted(self.indexed.entries(), key=canon_entry)
        resident_b = sorted(self.linear.entries(), key=canon_entry)
        if not resident_a:
            return
        index %= len(resident_a)
        self.indexed.consume(resident_a[index])
        self.linear.consume(resident_b[index])
        self.verify("consume")

    def invalidate_line(self, line_addr: int) -> int:
        count_a = self.indexed.invalidate_line(line_addr)
        count_b = self.linear.invalidate_line(line_addr)
        if count_a != count_b:
            raise self._mismatch("invalidate_line",
                                 f"{count_a} != {count_b}")
        self.verify("invalidate_line")
        return count_a

    def invalidate_range(self, lo: int, hi: int) -> int:
        count_a = self.indexed.invalidate_range(lo, hi)
        count_b = self.linear.invalidate_range(lo, hi)
        if count_a != count_b:
            raise self._mismatch("invalidate_range",
                                 f"{count_a} != {count_b}")
        self.verify("invalidate_range")
        return count_a

    def clear_thread(self, thread_id: int) -> int:
        count_a = self.indexed.clear_thread(thread_id)
        count_b = self.linear.clear_thread(thread_id)
        if count_a != count_b:
            raise self._mismatch("clear_thread",
                                 f"{count_a} != {count_b}")
        self.verify("clear_thread")
        return count_a

    def verify(self, op: str = "verify") -> None:
        """Full observable-state comparison; raises on divergence."""
        self.steps += 1
        if len(self.indexed) != len(self.linear):
            raise self._mismatch(
                op, f"occupancy {len(self.indexed)} != "
                    f"{len(self.linear)}")
        if canon(self.indexed) != canon(self.linear):
            raise self._mismatch(op, "resident entries differ")
        if self.indexed.stats.as_dict() != self.linear.stats.as_dict():
            raise self._mismatch(op, "stats bags differ")


def run_random_irb_trace(rng, steps: int = 400, capacity: int = 10,
                         max_age_ns: float = 500.0, lines=LINES,
                         pre_ids: int = 6, txns: int = 2,
                         addr_p: float = 0.7,
                         lockstep: Optional[IrbLockstep] = None) -> None:
    """Drive a seeded random operation trace through the lockstep.

    ``rng`` is any ``random.Random``-like stream (the callers use
    ``repro.common.rng`` named streams so traces replay exactly).
    Raises :class:`OracleMismatch` on the first divergence.
    """
    pair = lockstep if lockstep is not None else IrbLockstep(
        capacity=capacity, max_age_ns=max_age_ns)
    for _ in range(steps):
        # Jumps large enough to trigger aging on both clocks.
        pair.advance(rng.choice([0, 0, 1, 5, 40, 200]))
        roll = rng.random()
        if roll < 0.45:
            pair.insert(random_entry(rng, lines=lines, pre_ids=pre_ids,
                                     txns=txns, addr_p=addr_p))
        elif roll < 0.70:
            pair.match(rng.choice(THREADS), rng.choice(lines),
                       rng.choice(PAYLOADS))
        elif roll < 0.80:
            pair.consume_nth(rng.randrange(1 << 16))
        elif roll < 0.88:
            pair.invalidate_line(rng.choice(lines))
        elif roll < 0.94:
            pair.clear_thread(rng.choice(THREADS))
        else:
            lo = rng.choice(lines)
            pair.invalidate_range(lo, lo + LINE * rng.randrange(1, 4))


# ---------------------------------------------------------------------------
# Scheduler lockstep: bucket calendar queue vs reference heap
# ---------------------------------------------------------------------------
class SchedulerPoke(ReproError):
    """Exception thrown into scheduler-lockstep workers by the
    ``interrupt`` op — a stand-in for fault-injection kills."""


def build_scheduler_program(rng, workers: int = 6, steps: int = 24,
                            shared_events: int = 4) -> List[List[tuple]]:
    """Pre-generate a random event program from ``rng``.

    The program is pure data (one op script per worker), so the exact
    same script can drive any number of :class:`Simulator` instances —
    that is what makes the scheduler comparison a true lockstep rather
    than two independently random runs.  The vocabulary deliberately
    covers every scheduling primitive the kernel exposes: timeouts,
    pooled delays (integer *and* float, to exercise quantization),
    one-shot event signal/wait, ``all_of`` joins, resource ``use``,
    store put/take, same-instant zero-delay bursts, process spawns,
    and cross-worker interrupts (which drive the cancellation paths).
    """
    program: List[List[tuple]] = []
    for _ in range(workers):
        script: List[tuple] = []
        for _ in range(steps):
            roll = rng.random()
            if roll < 0.20:
                script.append(
                    ("timeout", rng.choice([0, 1, 2, 3, 5, 7.5, 12])))
            elif roll < 0.38:
                script.append(("delay", rng.choice([0, 1, 2.5, 4, 9])))
            elif roll < 0.48:
                script.append(("signal", rng.randrange(shared_events)))
            elif roll < 0.56:
                script.append(("wait", rng.randrange(shared_events)))
            elif roll < 0.68:
                script.append(("use", rng.choice([1.5, 3, 6])))
            elif roll < 0.75:
                script.append(("put", rng.randrange(100)))
            elif roll < 0.81:
                script.append(("take",))
            elif roll < 0.87:
                script.append(("all_of", tuple(
                    rng.choice([1, 2, 4, 6.5])
                    for _ in range(rng.randrange(2, 4)))))
            elif roll < 0.91:
                script.append(("spawn", rng.choice([0, 1, 3]),
                               rng.choice([2, 5.5])))
            elif roll < 0.96:
                script.append(("interrupt", rng.randrange(workers)))
            else:
                script.append(("burst", rng.randrange(2, 5)))
        program.append(script)
    return program


def run_scheduler_program(scheduler: str,
                          program: Sequence[Sequence[tuple]]) -> dict:
    """Execute a pre-generated program under ``scheduler``; return the
    full observable outcome: the dispatch-ordered trace of completed
    ops (worker, step, sim-time, op kind), the final clock, the
    dispatched-event count, and the store's leftover items."""
    sim = Simulator(scheduler)
    n_shared = 1 + max((op[1] for script in program for op in script
                        if op[0] in ("signal", "wait")), default=0)
    shared = [sim.event(f"shared{i}") for i in range(n_shared)]
    resource = Resource(sim, capacity=2, name="lockstep-unit")
    store = Store(sim, name="lockstep-store")
    procs: dict = {}
    trace: List[tuple] = []

    def child(delay):
        yield sim.delay(delay)
        return delay

    def worker(wid: int, script):
        for step, op in enumerate(script):
            kind = op[0]
            try:
                if kind == "timeout":
                    yield sim.timeout(op[1])
                elif kind == "delay":
                    yield sim.delay(op[1])
                elif kind == "signal":
                    ev = shared[op[1]]
                    if not ev.triggered:
                        ev.succeed((wid, step))
                elif kind == "wait":
                    yield shared[op[1]]
                elif kind == "use":
                    yield from resource.use(op[1])
                elif kind == "put":
                    store.put((wid, step, op[1]))
                elif kind == "take":
                    got = yield from store.take()
                    trace.append((wid, step, sim.now, "took", got))
                    continue
                elif kind == "all_of":
                    yield sim.all_of([sim.timeout(d) for d in op[1]])
                elif kind == "spawn":
                    children = [sim.process(child(op[2]), name="spawned")
                                for _ in range(op[1])]
                    if children:
                        yield sim.all_of(children)
                elif kind == "interrupt":
                    other = procs.get(op[1])
                    if other is not None and other is not procs[wid] \
                            and not other.triggered:
                        other.interrupt(
                            SchedulerPoke(f"poke from w{wid}"))
                elif kind == "burst":
                    for _ in range(op[1]):
                        yield sim.delay(0)
                else:  # pragma: no cover - vocabulary guard
                    raise ValueError(f"unknown scheduler op {op!r}")
            except SchedulerPoke:
                trace.append((wid, step, sim.now, "poked"))
                continue
            trace.append((wid, step, sim.now, kind))

    for wid, script in enumerate(program):
        procs[wid] = sim.process(worker(wid, script), name=f"w{wid}")
    sim.run()
    return {
        "trace": trace,
        "final_now": sim.now,
        "events": sim.events,
        "store_leftover": store.peek_all(),
        "resource_in_use": resource.in_use,
        "finished": sorted(wid for wid, p in procs.items()
                           if p.triggered),
    }


def check_scheduler_equivalence(rng, workers: int = 6, steps: int = 24,
                                rounds: int = 1) -> None:
    """Raise :class:`OracleMismatch` unless the bucket scheduler
    reproduces the reference heap's behaviour — same dispatch order,
    same clocks, same dispatched-event count — on ``rounds`` random
    programs drawn from ``rng``."""
    for round_no in range(rounds):
        program = build_scheduler_program(rng, workers=workers,
                                          steps=steps)
        ref = run_scheduler_program("heap", program)
        got = run_scheduler_program("bucket", program)
        if ref == got:
            continue
        for key in ("trace", "final_now", "events", "store_leftover",
                    "resource_in_use", "finished"):
            if ref[key] != got[key]:
                detail = f"{key}: heap={ref[key]!r} bucket={got[key]!r}"
                if key == "trace":
                    for i, (a, b) in enumerate(zip(ref["trace"],
                                                   got["trace"])):
                        if a != b:
                            detail = (f"trace[{i}]: heap={a!r} "
                                      f"bucket={b!r}")
                            break
                    else:
                        detail = (f"trace length "
                                  f"{len(ref['trace'])} != "
                                  f"{len(got['trace'])}")
                raise OracleMismatch(
                    f"scheduler lockstep diverged on round {round_no}: "
                    f"{detail}",
                    diff=[("heap", ref), ("bucket", got)])
