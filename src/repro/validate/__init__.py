"""Correctness backstop: invariant checkers, differential oracles,
and the seeded stateful fuzz harness (``repro run --check`` /
``repro fuzz``).  See ``docs/validation.md``.
"""

from repro.validate.invariants import InvariantChecker, InvariantViolation
from repro.validate.oracles import (
    IrbLockstep,
    OracleMismatch,
    build_scheduler_program,
    check_recovery_idempotent,
    check_scheduler_equivalence,
    diff_images,
    run_scheduler_program,
    run_write_program,
)

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "IrbLockstep",
    "OracleMismatch",
    "build_scheduler_program",
    "check_recovery_idempotent",
    "check_scheduler_equivalence",
    "diff_images",
    "run_scheduler_program",
    "run_write_program",
]
