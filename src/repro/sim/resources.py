"""Capacity-limited resources and FIFO stores.

A :class:`Resource` models a bank of identical servers (e.g. the four
BMO units, or a memory channel).  Processes acquire a slot, hold it for
a service time, and release it; waiters queue FIFO.

A :class:`Store` is an unbounded-or-bounded FIFO of items with blocking
``get`` — used for request queues between pipeline stages.

Both primitives are **cancellation-safe**: a process killed while
parked on :meth:`Resource.acquire` or :meth:`Store.get` (fault
injection, ``Process.interrupt``, generator teardown) must withdraw
its pending request with :meth:`Resource.cancel` / :meth:`Store.cancel`
— otherwise the dead waiter would later be granted a slot that is
never released (permanent capacity leak) or handed an item that
silently vanishes from the pipeline.  The :meth:`Resource.use` and
:meth:`Store.take` helpers do this automatically.
"""

from collections import deque
from typing import Any, Deque, Optional

from repro.common.errors import SimulationError
from repro.sim.engine import SimEvent, Simulator


class Resource:
    """FIFO resource with ``capacity`` identical slots."""

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[SimEvent] = deque()
        self._acquire_name = f"{name}.acquire"
        # Utilisation accounting.
        self._busy_time = 0.0
        self._last_change = 0.0
        self.total_acquires = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def _account(self) -> None:
        self._busy_time += self._in_use * (self.sim.now - self._last_change)
        self._last_change = self.sim.now

    def acquire(self) -> SimEvent:
        """Return an event that fires once a slot is granted."""
        event = SimEvent(self.sim, self._acquire_name)
        # _account(), inlined: this is the write path's hottest
        # resource call.
        now = self.sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now
        if self._in_use < self.capacity:
            self._in_use += 1
            self.total_acquires += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        now = self.sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now
        if self._waiters:
            # Hand the slot directly to the next waiter.
            self.total_acquires += 1
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def cancel(self, grant: SimEvent) -> None:
        """Withdraw a pending :meth:`acquire` whose waiter died.

        If the grant never fired the waiter is simply removed from the
        queue.  If it *did* fire (the slot was handed over in the same
        instant the waiter was killed, so nobody will release it), the
        slot is given back.  Call this exactly once, only from the
        cancellation path of the process that owns ``grant``.
        """
        if not grant.triggered:
            try:
                self._waiters.remove(grant)
            except ValueError:
                pass
            return
        if grant._exc is not None:
            return
        self.release()

    def use(self, service_ns: float):
        """Process helper: acquire, hold for ``service_ns``, release.

        Safe against exceptions thrown into the process at any point:
        before the grant the pending acquire is cancelled; after it the
        slot is released exactly once.
        """
        grant = self.acquire()
        try:
            yield grant
        except BaseException:
            self.cancel(grant)
            raise
        try:
            yield self.sim.delay(service_ns)
        finally:
            self.release()

    def utilisation(self) -> float:
        """Time-averaged fraction of capacity in use so far."""
        self._account()
        if self.sim.now <= 0:
            return 0.0
        return self._busy_time / (self.sim.now * self.capacity)


class Store:
    """FIFO queue of items with blocking ``get`` and optional bound.

    ``put`` on a full bounded store returns ``False`` and drops the
    item (this models the Janus pre-execution request queue's
    drop-on-full policy, paper §4.6) unless ``drop_oldest`` is set, in
    which case the oldest buffered item is discarded to make room.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = "", drop_oldest: bool = False):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.drop_oldest = drop_oldest
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()
        self._get_name = f"{name}.get"
        self.dropped = 0
        self.total_puts = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> bool:
        """Enqueue ``item``; returns ``False`` if it was dropped."""
        if self._getters:
            self.total_puts += 1
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            if self.drop_oldest:
                self._items.popleft()
                self.dropped += 1
            else:
                self.dropped += 1
                return False
        self.total_puts += 1
        self._items.append(item)
        return True

    def get(self) -> SimEvent:
        """Return an event yielding the next item (FIFO)."""
        event = SimEvent(self.sim, self._get_name)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: SimEvent) -> None:
        """Withdraw a pending :meth:`get` whose waiter died.

        An untriggered getter is removed from the queue so a later
        ``put`` cannot hand its item to a dead event.  A getter that
        already received an item (killed in the same instant) hands
        the item to the next live getter, or puts it back at the front
        of the queue — nothing vanishes.
        """
        if not event.triggered:
            try:
                self._getters.remove(event)
            except ValueError:
                pass
            return
        if event._exc is not None:
            return
        if self._getters:
            self._getters.popleft().succeed(event.value)
        else:
            self._items.appendleft(event.value)

    def take(self):
        """Process helper: cancellation-safe blocking get."""
        event = self.get()
        try:
            item = yield event
        except BaseException:
            self.cancel(event)
            raise
        return item

    def peek_all(self):
        """Snapshot of buffered items (for coalescing logic)."""
        return list(self._items)

    def remove(self, item: Any) -> bool:
        """Remove a specific buffered item (used when coalescing)."""
        try:
            self._items.remove(item)
            return True
        except ValueError:
            return False
