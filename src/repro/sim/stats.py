"""Lightweight statistics collection for simulator components."""

import math
from typing import Dict, List


class Counter:
    """A named monotonically-increasing counter."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"{self.name}={self.value}"


class Histogram:
    """Streaming mean/min/max/percentile-ish summary of samples."""

    def __init__(self, name: str, keep_samples: bool = True):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = [] if keep_samples else None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if self._samples is not None:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile (requires kept samples)."""
        if not self._samples:
            return 0.0
        data = sorted(self._samples)
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class StatSet:
    """A namespaced bag of counters and histograms."""

    def __init__(self, name: str = "stats"):
        self.name = name
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, hist in self.histograms.items():
            out[f"{name}.mean"] = hist.mean
            out[f"{name}.count"] = hist.count
        return out
