"""Legacy statistics API, now backed by :mod:`repro.obs.metrics`.

``Counter``/``Histogram``/``StatSet`` remain importable from here for
backward compatibility, but they are the observability layer's types:
histograms are bounded (reservoir sampling) and a ``StatSet`` is just
a :class:`repro.obs.metrics.MetricsScope` that is not attached to any
registry.  New code should register scopes on the system-wide
``MetricsRegistry`` instead (see ``NvmSystem.metrics``).
"""

from repro.obs.metrics import Counter, Histogram, MetricsScope


class StatSet(MetricsScope):
    """A free-standing, registry-less metrics scope (legacy name)."""

    def __init__(self, name: str = "stats"):
        super().__init__(name=name, registry=None)


__all__ = ["Counter", "Histogram", "StatSet"]
