"""A small discrete-event simulation kernel (simpy-flavoured).

The simulator models time in nanoseconds.  Concurrent activities are
Python generators ("processes") that yield *waitables*:

* :class:`Timeout` — resume after a fixed delay,
* :class:`SimEvent` — resume when someone calls :meth:`SimEvent.succeed`,
* :class:`Process` — resume when another process finishes,
* :class:`AllOf` — resume when every child waitable has fired.

Shared hardware (memory channels, BMO units) is modelled with
:class:`Resource` (capacity-limited FIFO server) and :class:`Store`
(FIFO queue of items).
"""

from repro.sim.engine import (AllOf, Delay, Process, SCHEDULERS, SimEvent,
                              Simulator, Timeout, quantize_ns)
from repro.sim.resources import Resource, Store
from repro.sim.stats import Counter, Histogram, StatSet

__all__ = [
    "AllOf",
    "Counter",
    "Delay",
    "Histogram",
    "Process",
    "Resource",
    "SCHEDULERS",
    "SimEvent",
    "Simulator",
    "StatSet",
    "Store",
    "Timeout",
    "quantize_ns",
]
