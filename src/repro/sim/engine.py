"""Core event loop, events, and processes.

The clock is an **integer-nanosecond** counter.  Delays may be passed
as floats (configs keep sub-ns rates like ``instruction_ns = 0.25``);
they are quantized to the grid exactly once, at the scheduling
boundary, with round-half-up (:func:`quantize_ns`).  All arithmetic on
``Simulator.now`` is therefore exact, which kills float drift and the
cross-platform "time went backwards" hazard the old float clock had.

Two interchangeable schedulers share identical semantics:

* ``bucket`` (default) — a calendar-queue: a dict of
  ``timestamp -> [callback, ...]`` buckets plus a small heap of
  *distinct* timestamps.  Events at the same instant dispatch as one
  batch, so the per-event cost is a list append on schedule and a list
  index on dispatch; the heap is touched once per distinct timestamp
  instead of once per event.
* ``heap`` — the original per-event ``(time, seq, fn, args)`` heapq
  loop, kept as the reference implementation
  (``--scheduler=heap`` / ``REPRO_SCHEDULER=heap``).

Both dispatch events in exactly the same order: the bucket batch is
FIFO within a timestamp, which is precisely what the heap's ``seq``
tie-breaker produced.  ``repro.validate.oracles.SchedulerLockstep``
checks this on randomized programs.

:meth:`Simulator.delay` is the trampoline-bypass fast path for the
dominant "yield a timeout nobody else can see" pattern: it returns a
pooled :class:`Delay` marker that :meth:`Process._step` recognizes and
turns into a direct re-schedule of the process — no :class:`Timeout`
allocation, no callback registration, no dispatch round-trip, yet the
same single dispatched callback and the same ordering as
``yield sim.timeout(ns)``.
"""

import os
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.common.errors import SimulationError

SCHEDULERS = ("bucket", "heap")


def quantize_ns(delay) -> int:
    """Quantize a non-negative delay to the integer-ns grid.

    Integers pass through; floats round half-up (``int(d + 0.5)``), so
    sub-ns quantities computed from rate-style configs (e.g.
    ``instructions * 0.25``) land on the nearest tick deterministically
    on every platform.
    """
    if type(delay) is int:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return delay
    if delay < 0:
        raise SimulationError(f"negative delay {delay}")
    return int(delay + 0.5)


class SimEvent:
    """A one-shot event that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or
    :meth:`fail`) triggers it exactly once, resuming every waiter at
    the current simulation time.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "value", "_exc", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: List[Callable[["SimEvent"], None]] = []
        self.triggered = False
        self.value: Any = None
        self._exc: Optional[BaseException] = None

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event, delivering ``value`` to all waiters."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        self.sim._schedule_now(self._dispatch)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Trigger the event such that waiters see ``exc`` raised."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self._exc = exc
        self.sim._schedule_now(self._dispatch)
        return self

    def add_callback(self, fn: Callable[["SimEvent"], None]) -> None:
        if self.triggered and not self._callbacks:
            # Already dispatched (or dispatching): call on next tick so
            # late waiters still resume.
            self.sim._schedule_now(fn, self)
        else:
            self._callbacks.append(fn)

    def remove_callback(self, fn: Callable[["SimEvent"], None]) -> bool:
        """Deregister a waiter added with :meth:`add_callback`.

        Returns ``True`` if the callback was found and removed.  Used
        by cancellation (:meth:`Process.interrupt`,
        :meth:`repro.sim.resources.Resource.cancel`) so a dead waiter
        is never resumed.
        """
        try:
            self._callbacks.remove(fn)
            return True
        except ValueError:
            return False

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class Timeout(SimEvent):
    """An event that triggers itself after ``delay`` nanoseconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        # SimEvent.__init__, flattened: timeouts are allocated on the
        # write path's hot loops.
        self.sim = sim
        self.name = f"timeout({delay})"
        self._callbacks = []
        self.triggered = False
        self.value = None
        self._exc = None
        self.delay = delay
        sim._schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        if self.triggered:
            # succeed()/fail() completed this timeout while it was
            # pending (early wake).  The waiters were already resumed
            # with that result; dispatching again would double-trigger
            # them, so the scheduled firing becomes a no-op.  A second
            # succeed()/fail() still raises via SimEvent.
            return
        self.triggered = True
        self.value = value
        self._dispatch()


class Delay:
    """Pooled marker returned by :meth:`Simulator.delay`.

    Not an event: it has no callbacks, no trigger state, and must only
    be yielded — immediately — by the process that created it.
    :meth:`Process._step` consumes it, schedules the process's own
    resume directly, and returns the marker to the pool.  Never store
    one or yield it twice.
    """

    __slots__ = ("ns", "value")


class AllOf(SimEvent):
    """Triggers after every child event has triggered.

    The value is the list of child values in the given order.  If any
    child *failed*, the AllOf fails with that child's exception —
    waiting on a group must never swallow a member's error.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]):
        # SimEvent.__init__, flattened (one AllOf per multi-dep wait).
        self.sim = sim
        self.name = "all_of"
        self._callbacks = []
        self.triggered = False
        self.value = None
        self._exc = None
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._child_done)

    def _child_done(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class Process(SimEvent):
    """Runs a generator as a concurrent activity.

    The process itself is an event that triggers with the generator's
    return value, so processes can wait on each other.

    ``_target`` is the event the process is currently parked on (or
    ``None`` while running / sleeping on a :class:`Delay`); ``_epoch``
    counts resumptions.  Together they make :meth:`interrupt` safe: a
    stale wake-up — the original event firing after the process was
    interrupted away from it, or a pooled delay resume out-raced by an
    interrupt — is recognized and dropped.
    """

    __slots__ = ("_gen", "_send", "_throw", "_target", "_epoch")

    def __init__(self, sim: "Simulator",
                 gen: Generator[SimEvent, Any, Any], name: str = ""):
        # SimEvent.__init__, flattened: one Process per activity, the
        # hottest allocation in the kernel after Delay markers.
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "proc")
        self._callbacks = []
        self.triggered = False
        self.value = None
        self._exc = None
        self._gen = gen
        # Bound methods cached once: _step runs for every resume of
        # every process — the hottest call site in the kernel.
        self._send = gen.send
        self._throw = gen.throw
        self._target: Optional[SimEvent] = None
        self._epoch = 0
        sim._schedule_now(self._step, None, None)

    def _step(self, value: Any,
              exc: Optional[BaseException], epoch: int = -1) -> None:
        if epoch >= 0 and epoch != self._epoch:
            # Stale scheduled resume (delay out-raced by interrupt, or
            # a superseded interrupt): the process has moved on.
            return
        self._epoch += 1
        self._target = None
        try:
            if exc is not None:
                target = self._throw(exc)
            else:
                target = self._send(value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as err:
            if not self.triggered:
                self.fail(err)
                return
            raise
        if target.__class__ is Delay:
            # Fast path: resume directly after the delay — no Timeout
            # object, no callback list, no event dispatch.  Still one
            # dispatched callback at the same (time, order) slot the
            # equivalent Timeout._fire would have occupied.
            sim = self.sim
            sim._schedule(target.ns, self._step,
                          target.value, None, self._epoch)
            target.value = None
            pool = sim._delay_pool
            if len(pool) < 64:
                pool.append(target)
            return
        if not isinstance(target, SimEvent):
            self._step(None, SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        self._target = target
        target.add_callback(self._resume)

    def _resume(self, event: SimEvent) -> None:
        if self._target is not event:
            # Interrupted away from this event before it fired.
            return
        if event._exc is not None:
            self._step(None, event._exc)
        else:
            self._step(event.value, None)

    def interrupt(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at its current wait point.

        The process resumes on the next tick with ``exc`` raised at
        its ``yield``; whatever it was parked on is forgotten (the
        event may still fire — the wake-up is dropped).  The target of
        the interrupt is expected to clean up via ``try/except`` (see
        :meth:`repro.sim.resources.Resource.use`).  Interrupting an
        already-finished process is an error.
        """
        if self.triggered:
            raise SimulationError(
                f"interrupt of finished process {self.name!r}")
        target = self._target
        if target is not None:
            self._target = None
            target.remove_callback(self._resume)
        # Invalidate any in-flight delay resume, then deliver the
        # exception under the *new* epoch so a later interrupt (or
        # resumption) supersedes this one.
        self._epoch += 1
        self.sim._schedule_now(self._step, None, exc, self._epoch)


class Simulator:
    """The event loop.

    ``scheduler`` selects the dispatch structure: ``"bucket"`` (the
    default calendar queue) or ``"heap"`` (the reference per-event
    heap).  When ``None``, the ``REPRO_SCHEDULER`` environment
    variable decides, falling back to ``"bucket"`` — which is how the
    CI heap smoke leg runs the whole suite against the reference loop.
    """

    def __init__(self, scheduler: Optional[str] = None) -> None:
        if not scheduler:
            scheduler = os.environ.get("REPRO_SCHEDULER") or "bucket"
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}")
        self.scheduler = scheduler
        self.now = 0
        #: Callbacks dispatched so far (one per resumed process step,
        #: event dispatch, or fired timeout) — the denominator of the
        #: bench harness's events/sec throughput metric.  Identical
        #: under both schedulers.
        self.events: int = 0
        #: Optional :class:`repro.obs.profile.SimProfiler`.  Attach by
        #: assignment before :meth:`run`; ``None`` keeps the fast loop.
        self.profile = None
        #: Optional :class:`repro.obs.timeseries.TimeSeriesSampler`,
        #: driven from the instrumented loop at sample boundaries.
        self.sampler = None
        #: Recycled :class:`Delay` markers (bounded free list).
        self._delay_pool: List[Delay] = []
        if scheduler == "heap":
            self._heap: List = []
            self._seq = 0
            self._schedule = self._schedule_heap
            self._schedule_now = self._schedule_now_heap
            self._run_fast = self._run_heap
        else:
            #: timestamp -> list of ``(fn, args)`` in schedule order.
            self._buckets = {}
            #: Heap of *distinct* pending timestamps (each pushed once,
            #: when its bucket is created).
            self._times: List[int] = []
            #: Batch currently being drained, its cursor, and its
            #: timestamp (-1 = no batch yet).  A batch interrupted by
            #: ``stop_event`` persists here and resumes on the next
            #: :meth:`run`.
            self._batch: List = []
            self._batch_pos = 0
            self._batch_time = -1
            self._schedule = self._schedule_bucket
            self._schedule_now = self._schedule_now_bucket
            self._run_fast = self._run_bucket

    # -- scheduling ----------------------------------------------------
    def _schedule_bucket(self, delay, fn: Callable, *args) -> None:
        if type(delay) is not int:
            if delay < 0:
                raise SimulationError(f"negative delay {delay}")
            delay = int(delay + 0.5)
        elif delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        if time == self._batch_time:
            # Same-instant event scheduled while its batch is live (or
            # just drained at the current time): append to the batch so
            # it dispatches in FIFO order, exactly like the heap's seq
            # tie-breaker.
            self._batch.append((fn, args))
            return
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(fn, args)]
            heappush(self._times, time)
        else:
            bucket.append((fn, args))

    def _schedule_now_bucket(self, fn: Callable, *args) -> None:
        # Hot path: called for every process step and event dispatch.
        if self.now == self._batch_time:
            self._batch.append((fn, args))
            return
        time = self.now
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(fn, args)]
            heappush(self._times, time)
        else:
            bucket.append((fn, args))

    def _schedule_heap(self, delay, fn: Callable, *args) -> None:
        if type(delay) is not int:
            if delay < 0:
                raise SimulationError(f"negative delay {delay}")
            delay = int(delay + 0.5)
        elif delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heappush(self._heap, (self.now + delay, self._seq, fn, args))

    def _schedule_now_heap(self, fn: Callable, *args) -> None:
        self._seq += 1
        heappush(self._heap, (self.now, self._seq, fn, args))

    # -- public factory helpers ----------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create a fresh pending event."""
        return SimEvent(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ns."""
        return Timeout(self, delay, value)

    def delay(self, ns, value: Any = None) -> Delay:
        """Fast-path sleep: ``yield sim.delay(ns)`` inside a process.

        Semantically identical to ``yield sim.timeout(ns)`` — same
        quantization, same dispatch count, same ordering — but the
        process is resumed directly instead of through a Timeout event
        and its callback list.  Use only for delays nobody else waits
        on; the returned marker must be yielded immediately and never
        reused.
        """
        pool = self._delay_pool
        marker = pool.pop() if pool else Delay()
        marker.ns = ns
        marker.value = value
        return marker

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start ``gen`` as a concurrent process."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        """An event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    # -- running ---------------------------------------------------------
    def run(self, until: Optional[float] = None,
            stop_event: Optional[SimEvent] = None) -> float:
        """Drain events until the queue empties, ``until`` is reached,
        or ``stop_event`` triggers.  Returns the final simulation time.

        When the queue drains before ``until`` and the run was *not*
        ended by ``stop_event``, the clock advances to ``until`` — the
        same result whether or not a (never-triggered) ``stop_event``
        was passed.

        With a :attr:`profile` or :attr:`sampler` attached the run is
        delegated to :meth:`_run_instrumented`; the check happens once
        per ``run()`` call, never per event, so disabled-observability
        runs execute the bare scheduler loop unchanged.
        """
        if self.profile is not None or self.sampler is not None:
            return self._run_instrumented(until, stop_event)
        return self._run_fast(until, stop_event)

    def _run_bucket(self, until: Optional[float],
                    stop_event: Optional[SimEvent]) -> float:
        buckets = self._buckets
        times = self._times
        batch = self._batch
        pos = self._batch_pos
        # Entries of the live batch already dispatched (and counted) by
        # a previous run(); ``pos - base`` is this run's contribution.
        base = pos
        dispatched = 0
        stopped = False
        try:
            while True:
                if pos < len(batch):
                    if stop_event is not None and stop_event.triggered:
                        stopped = True
                        break
                    if until is not None and self._batch_time > until:
                        # Leftover batch from a stopped run lies beyond
                        # the new horizon: mirror the heap's peek path.
                        self.now = until
                        return self.now
                    if stop_event is None:
                        if pos:
                            # Resuming mid-batch: index from the cursor.
                            while pos < len(batch):
                                fn, args = batch[pos]
                                pos += 1
                                fn(*args)
                        else:
                            # Hot path: C-level list iteration with the
                            # cursor maintained by enumerate.  The
                            # iterator re-checks length each step, so
                            # same-time events appended during dispatch
                            # are picked up, exactly like the indexed
                            # loop; ``pos`` is assigned before the call,
                            # so exception-time accounting includes the
                            # failing event, like the indexed loop.
                            for pos, (fn, args) in enumerate(batch, 1):
                                fn(*args)
                    else:
                        while pos < len(batch):
                            if stop_event.triggered:
                                stopped = True
                                break
                            fn, args = batch[pos]
                            pos += 1
                            fn(*args)
                        if stopped:
                            break
                    continue
                if stop_event is not None and stop_event.triggered:
                    stopped = True
                    break
                if not times:
                    break
                time = times[0]
                if until is not None and time > until:
                    self.now = until
                    return self.now
                heappop(times)
                if time < self.now:
                    raise SimulationError("time went backwards")
                dispatched += pos - base
                self.now = time
                self._batch_time = time
                batch = self._batch = buckets.pop(time)
                pos = 0
                base = 0
        finally:
            self.events += dispatched + (pos - base)
            self._batch_pos = pos
        if until is not None and not times and pos >= len(batch) \
                and not stopped:
            self.now = max(self.now, until)
        return self.now

    def _run_heap(self, until: Optional[float],
                  stop_event: Optional[SimEvent]) -> float:
        heap = self._heap
        while heap:
            if stop_event is not None and stop_event.triggered:
                break
            time, _seq, fn, args = heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heappop(heap)
            if time < self.now:
                raise SimulationError("time went backwards")
            self.now = time
            self.events += 1
            fn(*args)
        stopped = stop_event is not None and stop_event.triggered
        if until is not None and not heap and not stopped:
            self.now = max(self.now, until)
        return self.now

    def _run_instrumented(self, until: Optional[float],
                          stop_event: Optional[SimEvent]) -> float:
        """The :meth:`run` loop with profiler / sampler hooks.

        Identical scheduling semantics to the fast loops; additionally
        times each callback for :attr:`profile` and drives
        :attr:`sampler` whenever the clock crosses its next sample
        boundary (before dispatching the crossing event, so samples
        reflect state *at* the boundary).
        """
        if self.scheduler == "heap":
            return self._run_instrumented_heap(until, stop_event)
        buckets = self._buckets
        times = self._times
        batch = self._batch
        pos = self._batch_pos
        profile = self.profile
        sampler = self.sampler
        clock = profile.clock if profile is not None else None
        stopped = False
        while True:
            if pos < len(batch):
                if stop_event is not None and stop_event.triggered:
                    stopped = True
                    break
                if until is not None and self._batch_time > until:
                    self._batch_pos = pos
                    self.now = until
                    if sampler is not None and self.now >= sampler.next_ns:
                        sampler.on_advance(self.now)
                    return self.now
                while pos < len(batch):
                    if stop_event is not None and stop_event.triggered:
                        stopped = True
                        break
                    fn, args = batch[pos]
                    pos += 1
                    self.events += 1
                    if profile is not None:
                        start = clock()
                        fn(*args)
                        profile.record(fn, clock() - start)
                    else:
                        fn(*args)
                if stopped:
                    break
                continue
            if stop_event is not None and stop_event.triggered:
                stopped = True
                break
            if not times:
                break
            time = times[0]
            if until is not None and time > until:
                self._batch_pos = pos
                self.now = until
                if sampler is not None and self.now >= sampler.next_ns:
                    sampler.on_advance(self.now)
                return self.now
            heappop(times)
            if time < self.now:
                raise SimulationError("time went backwards")
            self.now = time
            # Time only advances between batches, so one boundary
            # check per batch is equivalent to the heap loop's
            # per-event check (on_advance pushes next_ns past `time`).
            if sampler is not None and time >= sampler.next_ns:
                sampler.on_advance(time)
            self._batch_time = time
            batch = self._batch = buckets.pop(time)
            pos = 0
        self._batch_pos = pos
        if until is not None and not times and pos >= len(batch) \
                and not stopped:
            self.now = max(self.now, until)
        if sampler is not None and self.now >= sampler.next_ns:
            sampler.on_advance(self.now)
        return self.now

    def _run_instrumented_heap(self, until: Optional[float],
                               stop_event: Optional[SimEvent]) -> float:
        heap = self._heap
        profile = self.profile
        sampler = self.sampler
        clock = profile.clock if profile is not None else None
        while heap:
            if stop_event is not None and stop_event.triggered:
                break
            time, _seq, fn, args = heap[0]
            if until is not None and time > until:
                self.now = until
                if sampler is not None and self.now >= sampler.next_ns:
                    sampler.on_advance(self.now)
                return self.now
            heappop(heap)
            if time < self.now:
                raise SimulationError("time went backwards")
            self.now = time
            if sampler is not None and time >= sampler.next_ns:
                sampler.on_advance(time)
            self.events += 1
            if profile is not None:
                start = clock()
                fn(*args)
                profile.record(fn, clock() - start)
            else:
                fn(*args)
        stopped = stop_event is not None and stop_event.triggered
        if until is not None and not heap and not stopped:
            self.now = max(self.now, until)
        if sampler is not None and self.now >= sampler.next_ns:
            sampler.on_advance(self.now)
        return self.now
