"""Core event loop, events, and processes."""

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.common.errors import SimulationError


class SimEvent:
    """A one-shot event that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or
    :meth:`fail`) triggers it exactly once, resuming every waiter at
    the current simulation time.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "value", "_exc", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: List[Callable[["SimEvent"], None]] = []
        self.triggered = False
        self.value: Any = None
        self._exc: Optional[BaseException] = None

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event, delivering ``value`` to all waiters."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        self.sim._schedule_now(self._dispatch)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Trigger the event such that waiters see ``exc`` raised."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self._exc = exc
        self.sim._schedule_now(self._dispatch)
        return self

    def add_callback(self, fn: Callable[["SimEvent"], None]) -> None:
        if self.triggered and not self._callbacks:
            # Already dispatched (or dispatching): call on next tick so
            # late waiters still resume.
            self.sim._schedule_now(fn, self)
        else:
            self._callbacks.append(fn)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class Timeout(SimEvent):
    """An event that triggers itself after ``delay`` nanoseconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        sim._schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        if self.triggered:
            # succeed()/fail() completed this timeout while it was
            # pending (early wake).  The waiters were already resumed
            # with that result; dispatching again would double-trigger
            # them, so the scheduled firing becomes a no-op.  A second
            # succeed()/fail() still raises via SimEvent.
            return
        self.triggered = True
        self.value = value
        self._dispatch()


class AllOf(SimEvent):
    """Triggers after every child event has triggered.

    The value is the list of child values in the given order.  If any
    child *failed*, the AllOf fails with that child's exception —
    waiting on a group must never swallow a member's error.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]):
        super().__init__(sim, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._child_done)

    def _child_done(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class Process(SimEvent):
    """Runs a generator as a concurrent activity.

    The process itself is an event that triggers with the generator's
    return value, so processes can wait on each other.
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator",
                 gen: Generator[SimEvent, Any, Any], name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "proc"))
        self._gen = gen
        sim._schedule_now(self._step, None, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(getattr(stop, "value", None))
            return
        except BaseException as err:
            if not self.triggered:
                self.fail(err)
                return
            raise
        if not isinstance(target, SimEvent):
            self._step(None, SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        target.add_callback(self._resume)

    def _resume(self, event: SimEvent) -> None:
        if event._exc is not None:
            self._step(None, event._exc)
        else:
            self._step(event.value, None)


class Simulator:
    """The event loop: a time-ordered heap of callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List = []
        self._seq = 0
        self._finished = False
        #: Callbacks dispatched so far (one per resumed process step,
        #: event dispatch, or fired timeout) — the denominator of the
        #: bench harness's events/sec throughput metric.
        self.events: int = 0
        #: Optional :class:`repro.obs.profile.SimProfiler`.  Attach by
        #: assignment before :meth:`run`; ``None`` keeps the fast loop.
        self.profile = None
        #: Optional :class:`repro.obs.timeseries.TimeSeriesSampler`,
        #: driven from the instrumented loop at sample boundaries.
        self.sampler = None

    # -- scheduling ----------------------------------------------------
    def _schedule(self, delay: float, fn: Callable, *args) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args))

    def _schedule_now(self, fn: Callable, *args) -> None:
        # Hot path: called for every process step and event dispatch.
        # Pushing at ``self.now`` directly skips the negative-delay
        # check and float add in :meth:`_schedule`.
        self._seq += 1
        heapq.heappush(self._heap, (self.now, self._seq, fn, args))

    # -- public factory helpers ----------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create a fresh pending event."""
        return SimEvent(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ns."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start ``gen`` as a concurrent process."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        """An event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    # -- running ---------------------------------------------------------
    def run(self, until: Optional[float] = None,
            stop_event: Optional[SimEvent] = None) -> float:
        """Drain events until the heap empties, ``until`` is reached,
        or ``stop_event`` triggers.  Returns the final simulation time.

        When the heap drains before ``until`` and the run was *not*
        ended by ``stop_event``, the clock advances to ``until`` — the
        same result whether or not a (never-triggered) ``stop_event``
        was passed.

        With a :attr:`profile` or :attr:`sampler` attached the run is
        delegated to :meth:`_run_instrumented`; the check happens once
        per ``run()`` call, never per event, so disabled-observability
        runs execute this exact loop unchanged.
        """
        if self.profile is not None or self.sampler is not None:
            return self._run_instrumented(until, stop_event)
        heap = self._heap
        while heap:
            if stop_event is not None and stop_event.triggered:
                break
            time, _seq, fn, args = heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(heap)
            if time < self.now:
                raise SimulationError("time went backwards")
            self.now = time
            self.events += 1
            fn(*args)
        stopped = stop_event is not None and stop_event.triggered
        if until is not None and not heap and not stopped:
            self.now = max(self.now, until)
        return self.now

    def _run_instrumented(self, until: Optional[float],
                          stop_event: Optional[SimEvent]) -> float:
        """The :meth:`run` loop with profiler / sampler hooks.

        Identical scheduling semantics to the fast loop; additionally
        times each callback for :attr:`profile` and drives
        :attr:`sampler` whenever the clock crosses its next sample
        boundary (before dispatching the crossing event, so samples
        reflect state *at* the boundary).
        """
        heap = self._heap
        profile = self.profile
        sampler = self.sampler
        clock = profile.clock if profile is not None else None
        while heap:
            if stop_event is not None and stop_event.triggered:
                break
            time, _seq, fn, args = heap[0]
            if until is not None and time > until:
                self.now = until
                if sampler is not None and self.now >= sampler.next_ns:
                    sampler.on_advance(self.now)
                return self.now
            heapq.heappop(heap)
            if time < self.now:
                raise SimulationError("time went backwards")
            self.now = time
            if sampler is not None and time >= sampler.next_ns:
                sampler.on_advance(time)
            self.events += 1
            if profile is not None:
                start = clock()
                fn(*args)
                profile.record(fn, clock() - start)
            else:
                fn(*args)
        stopped = stop_event is not None and stop_event.triggered
        if until is not None and not heap and not stopped:
            self.now = max(self.now, until)
        if sampler is not None and self.now >= sampler.next_ns:
            sampler.on_advance(self.now)
        return self.now
