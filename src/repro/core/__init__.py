"""System assembly: cores + memory controller + BMO/Janus datapath.

:class:`NvmSystem` wires every substrate into one simulated machine
and exposes the four design points the paper evaluates:

* ``serialized`` — BMOs run as monolithic blocks on the write's
  critical path (the baseline of every figure);
* ``parallel``   — decomposed sub-operations, list-scheduled on the
  BMO units, still starting only when the write reaches the memory
  controller (the "Parallelization" bars);
* ``janus``      — parallelized *and* pre-executed through the
  software interface and the IRB (the "Pre-execution" bars);
* ``ideal``      — non-blocking writeback: BMO latency entirely off
  the critical path (Fig. 10's reference line).
"""

from repro.core.machine import Core, MemoryController, NvmSystem

__all__ = ["Core", "MemoryController", "NvmSystem"]
