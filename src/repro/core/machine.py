"""Cores, the memory controller(s), and the assembled NVM system.

The machine supports N-way sharded memory controllers
(``SystemConfig.shards``): line addresses interleave across shards via
:class:`repro.mem.shard.ShardRouter`, and each shard owns its own
write queue, NVM channel group, scheduling policy, and (in janus mode)
pre-execution engine + IRB.  One functional memory, one BMO pipeline
(dedup table / counters / Merkle tree), and one BMO-unit pool stay
global — they model chip-wide metadata structures.  ``shards=1``
constructs exactly the classic single-controller machine (same scope
names, same event order), bit-identical to the pre-sharding system.
The full contract is documented in ``docs/sharding.md``.
"""

import itertools
from typing import Dict, List, Optional

from repro.bmo.dedup import DedupTable
from repro.bmo.executor import BmoExecutor
from repro.bmo.pipeline import build_pipeline
from repro.bmo.policy import build_policy
from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.common.rng import DeterministicRng
from repro.common.units import CACHE_LINE_BYTES, line_span
from repro.janus.api import JanusInterface
from repro.janus.engine import JanusEngine
from repro.mem.cache import CacheModel
from repro.mem.heap import NvmHeap
from repro.mem.memory import FunctionalMemory, VolatileView
from repro.mem.nvm_device import NvmDevice
from repro.mem.shard import ShardRouter
from repro.mem.write_queue import WriteEntry, WriteQueue
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.sim import Resource, Simulator


class MemoryController:
    """Write path: cache writeback -> scheduling policy -> persist.

    The mode-dependent tail of each writeback (when the BMOs run and
    what completion means for durability) lives in the controller's
    :class:`repro.bmo.policy.SchedulingPolicy`; the consistency
    contract per mode is documented in ``docs/scheduling-modes.md``.

    The persist point is acceptance into the write queue (ADR); the
    device write and any relocation traffic continue in the
    background.  Metadata lines (counter / remap entry) are persisted
    alongside the data; with *selective* metadata atomicity (§4.3)
    only consistency-critical writes (transaction commits) wait for
    the metadata acceptance, other writes let it drain lazily.
    """

    #: Line in the metadata region used to model metadata writebacks.
    METADATA_REGION_LINES = 1 << 14

    def __init__(self, system: "NvmSystem", shard_id: int = 0):
        self.system = system
        self.sim = system.sim
        self.cfg = system.cfg
        self.shard_id = shard_id
        #: This shard's slice of the memory substrate.  On the
        #: unsharded machine these are the system-wide singletons.
        self.device = system.devices[shard_id]
        self.write_queue = system.write_queues[shard_id]
        self.janus = system.janus_engines[shard_id] \
            if system.janus_engines else None
        self.stats = system.metrics.scope(system.scope_name("mc",
                                                            shard_id))
        # Hot metric handles: resolved once, not per writeback.
        self._c_writebacks = self.stats.counter("writebacks")
        self._h_critical_write = \
            self.stats.histogram("critical_write_ns")
        self._c_cc_hits = self.stats.counter("counter_cache_hits")
        self._c_cc_misses = self.stats.counter("counter_cache_misses")
        self._c_writes_persisted = self.stats.counter("writes_persisted")
        self._c_metadata_lazy = self.stats.counter("metadata_lazy")
        self._c_metadata_atomic_waits = \
            self.stats.counter("metadata_atomic_waits")
        self._c_dedup_cancelled = \
            self.stats.counter("writes_cancelled_by_dedup")
        #: The system-wide span tracer (``repro.obs.tracer.Tracer``).
        #: Legacy per-write tracing is a sink on it — see
        #: :class:`repro.harness.trace.WriteTracer`.
        self.tracer = system.tracer
        # Counter cache (Table 3: 512 KB, shared): on a read miss from
        # the device, a cached counter lets the OTP generation overlap
        # the data fetch (counter-mode's read-latency trick, §2.2);
        # a counter-cache miss serialises the counter fetch + AES.
        from repro.mem.cache import _SetAssocArray
        self._has_encryption = "encryption" in system.pipeline.by_name
        counter_entry_bytes = 16
        self._counter_cache = _SetAssocArray(
            self.cfg.cache.counter_cache_bytes, ways=16,
            line_bytes=counter_entry_bytes)
        self._metadata_base = (self.cfg.memory.capacity_bytes
                               - self.METADATA_REGION_LINES
                               * CACHE_LINE_BYTES)
        #: The scheduling policy for ``cfg.mode`` — owns the
        #: mode-dependent tail of every writeback.
        self.policy = build_policy(self)

    def read_decrypt_penalty_ns(self, line_addr: int,
                                streamed: bool) -> float:
        """Extra read latency for decrypting a line fetched from NVM.

        ``streamed`` marks tail lines of a sequential access whose
        fetch overlaps the previous lines' decryption.
        """
        if not self._has_encryption:
            return 0.0
        lat = self.cfg.bmo_latencies
        # Tag the counter cache by the line's metadata entry.
        hit = self._counter_cache.access(
            (line_addr // CACHE_LINE_BYTES) * 16)
        if hit:
            self._c_cc_hits.add()
            return 0.0 if streamed else lat.xor_ns
        self._c_cc_misses.add()
        if streamed:
            return self.cfg.core.stream_line_ns
        return self.cfg.memory.read_service_ns + lat.aes_ns \
            + lat.xor_ns

    def counter_cache_hit_rate(self) -> float:
        hits = self._c_cc_hits.value
        misses = self._c_cc_misses.value
        total = hits + misses
        return hits / total if total else 0.0

    def writeback(self, thread_id: int, line_addr: int,
                  critical: bool = False):
        """Process: one cache-line writeback to the persist domain.

        Returns when the write reaches the point its scheduling policy
        calls complete — durable acceptance for the strict modes, the
        epoch buffer for ``async-epoch``.  This is what a ``clwb``'s
        completion — observed by the next ``sfence`` — waits for.
        """
        self._c_writebacks.add()
        start = self.sim.now
        # Cache hierarchy -> memory controller transfer (~15 ns).
        yield self.sim.delay(self.cfg.cache.writeback_ns)
        data = self.system.volatile.read_line(line_addr)
        yield from self.policy.writeback(thread_id, line_addr, data,
                                         critical, start)

    def _trace(self, thread_id, line_addr, start, mc_arrival,
               bmo_done, persisted, critical) -> None:
        tracer = self.tracer
        if not tracer.enabled:
            return
        track = ("write-path", f"core{thread_id}")
        # The enclosing write span carries the full phase breakdown in
        # its args — sinks (WriteTracer) reconstruct records from it.
        tracer.complete(
            "write", "write", track, start_ns=start,
            dur_ns=persisted - start,
            args={"thread_id": thread_id, "line_addr": line_addr,
                  "mc_arrival_ns": mc_arrival, "bmo_done_ns": bmo_done,
                  "persisted_ns": persisted, "critical": critical})
        tracer.complete("transfer", "write-phase", track,
                        start_ns=start, dur_ns=mc_arrival - start)
        if bmo_done > mc_arrival:
            tracer.complete("bmo", "write-phase", track,
                            start_ns=mc_arrival,
                            dur_ns=bmo_done - mc_arrival)
        if persisted > bmo_done:
            tracer.complete("persist", "write-phase", track,
                            start_ns=bmo_done,
                            dur_ns=persisted - bmo_done)

    def _persist(self, ctx, critical: bool):
        """Commit BMO state and enter the persist domain."""
        system = self.system
        # Refresh any staleness that crept in while queued (janus mode
        # already guarantees freshness; serialized/parallel contexts
        # executed just now, but concurrent cores may interleave).
        stale = system.pipeline.stale_subops(ctx)
        while stale:
            system.pipeline.invalidate(ctx, stale)
            yield from system.executor.run_subops(ctx)
            stale = system.pipeline.stale_subops(ctx)
        action = system.pipeline.commit(ctx)

        accepts = []
        if action.write_data:
            entry = WriteEntry(
                addr=action.device_addr, data=action.payload,
                on_drain=self._drain_to_nvm)
            # Route by the *device* address: dedup may have redirected
            # the payload to a shadow line on another shard, making
            # this a cross-shard transaction — the sfence barrier
            # below (``accepts`` joined by the caller) spans every
            # controller touched.
            queue = system.write_queue_for(action.device_addr)
            accepts.append(self.sim.process(
                queue.accept(entry), name="accept-data"))
        else:
            self._c_dedup_cancelled.add()
        for i in range(action.metadata_lines):
            wait_for_meta = critical or \
                not self.cfg.selective_metadata_atomicity
            if not wait_for_meta:
                # The counter/Merkle caches absorb non-critical
                # metadata updates; they reach the device lazily on
                # eviction, off both the critical path and the write
                # queue (selective counter-atomicity, §4.3).
                self._c_metadata_lazy.add()
                continue
            meta_addr = self._metadata_line_for(ctx.addr, i)
            meta_entry = WriteEntry(addr=meta_addr,
                                    data=bytes(CACHE_LINE_BYTES),
                                    metadata={"kind": "metadata"})
            proc = self.sim.process(
                system.write_queue_for(meta_addr).accept(meta_entry),
                name="accept-meta")
            accepts.append(proc)
            self._c_metadata_atomic_waits.add()
        if accepts:
            yield self.sim.all_of(accepts)
        self._c_writes_persisted.add()

    def _metadata_line_for(self, addr: int, index: int) -> int:
        line = (addr // CACHE_LINE_BYTES + index) % \
            self.METADATA_REGION_LINES
        return self._metadata_base + line * CACHE_LINE_BYTES

    def _drain_to_nvm(self, entry: WriteEntry) -> None:
        self.system.nvm.write_line(entry.addr, entry.data)


class ShardedJanusFrontend:
    """Software-visible face of N per-shard Janus engines.

    Cores hold one :class:`repro.janus.api.JanusInterface`, which
    expects a single engine; on the sharded machine that "engine" is
    this frontend.  Requests with an address fan out to every engine
    whose shard owns at least one line of the request span (each
    engine's ``owns`` filter keeps only its slice of the decoded
    operations); data-only requests — whose lines are unknown until
    the write arrives — broadcast to every engine, because any shard
    may receive the eventual write (unconsumed duplicates age out or
    clear with the thread, exactly like any unmatched entry).
    Lifecycle calls broadcast.
    """

    def __init__(self, system: "NvmSystem"):
        self.system = system
        self.engines = system.janus_engines
        self.router = system.router

    def submit(self, request) -> None:
        if request.addr is None:
            for engine in self.engines:
                engine.submit(request)
            return
        size = request.size or (len(request.data) if request.data
                                else 0)
        touched = []
        for line in line_span(request.addr, max(size, 1)):
            shard = self.router.shard_of(line)
            if shard not in touched:
                touched.append(shard)
        for shard in touched:
            self.engines[shard].submit(request)

    def start_buffered(self, pre_id: int, thread_id: int) -> int:
        released = 0
        for engine in self.engines:
            released += engine.start_buffered(pre_id, thread_id)
        return released

    def clear_thread(self, thread_id: int) -> None:
        for engine in self.engines:
            engine.clear_thread(thread_id)

    def on_memory_swap(self, lo: int, hi: int) -> None:
        for engine in self.engines:
            engine.on_memory_swap(lo, hi)


class Core:
    """One hardware thread: the API workload programs run against."""

    def __init__(self, system: "NvmSystem", core_id: int):
        self.system = system
        self.sim = system.sim
        self.cfg = system.cfg
        self.core_id = core_id
        self.cache = CacheModel(self.cfg.cache,
                                memory_read_ns=self.cfg.memory.read_service_ns)
        self._outstanding: List = []
        self.current_txn_id = 0
        self.api = JanusInterface(
            self.sim,
            system.janus_frontend if self.cfg.mode == "janus" else None,
            thread_id=core_id,
            transaction_id_provider=lambda: self.current_txn_id,
            issue_cost_ns=2 * self.cfg.core.instruction_ns * 4,
            pre_id_counter=system._pre_ids)
        self.stats = system.metrics.scope(f"core{core_id}")
        # Hot metric handles: resolved once, not per load/store/fence.
        self._c_reads = self.stats.counter("reads")
        self._c_stores = self.stats.counter("stores")
        self._c_clwbs = self.stats.counter("clwbs")
        self._c_fences = self.stats.counter("fences")
        self._h_sfence_stall = self.stats.histogram("sfence_stall_ns")

    # -- compute ---------------------------------------------------------
    def compute(self, instructions: int):
        """Charge ``instructions`` of core-local work."""
        yield self.sim.delay(
            instructions * self.cfg.core.instruction_ns)

    def _access_latency(self, addr: int, size: int,
                        is_read: bool = False) -> float:
        """Latency of touching [addr, addr+size) through the caches.

        The first line pays the full hierarchy latency; subsequent
        lines of the same (sequential) access stream behind the
        prefetcher at ``stream_line_ns`` per line.  Read misses that
        reach the device also pay the decryption penalty, moderated
        by the memory controller's counter cache.
        """
        stream_ns = self.cfg.core.stream_line_ns
        system = self.system
        latency = 0.0
        for index, line in enumerate(line_span(addr, size)):
            cost, level = self.cache.access_with_level(line)
            streamed = index > 0
            latency += min(cost, stream_ns) if streamed else cost
            if is_read and level == "mem":
                # The owning shard's controller holds this line's
                # counter-cache entry.
                latency += system.controller_for(line) \
                    .read_decrypt_penalty_ns(line, streamed=streamed)
        return latency

    # -- loads / stores -----------------------------------------------------
    def read(self, addr: int, size: int):
        """Process: load ``size`` bytes; returns them."""
        yield self.sim.delay(self._access_latency(addr, size,
                                                  is_read=True))
        self._c_reads.add()
        return self.system.volatile.read(addr, size)

    def store(self, addr: int, data: bytes):
        """Process: store ``data``; volatile until written back."""
        yield self.sim.delay(self._access_latency(addr, len(data)))
        self.system.volatile.write(addr, data)
        self._c_stores.add()

    # -- persistence primitives ----------------------------------------------
    def clwb(self, addr: int, size: int, critical: bool = False):
        """Issue writebacks for every line of [addr, addr+size).

        Non-blocking (like the instruction): completion is observed by
        the next :meth:`sfence`.
        """
        for line in line_span(addr, size):
            # Route each line to its owning shard's controller; a
            # transaction touching several shards accumulates pending
            # writebacks on all of them, and the next sfence becomes
            # a barrier over every controller touched.
            proc = self.sim.process(
                self.system.controller_for(line).writeback(
                    self.core_id, line, critical=critical),
                name="clwb")
            self._outstanding.append(proc)
            self._c_clwbs.add()
        yield self.sim.delay(self.cfg.core.instruction_ns)

    def sfence(self):
        """Block until every outstanding writeback is persistent."""
        pending, self._outstanding = self._outstanding, []
        if pending:
            start = self.sim.now
            yield self.sim.all_of(pending)
            stall = self.sim.now - start
            self._h_sfence_stall.observe(stall)
            tracer = self.system.tracer
            if tracer.enabled and stall > 0:
                tracer.complete(
                    "sfence-stall", "core",
                    ("write-path", f"core{self.core_id}"),
                    start_ns=start, dur_ns=stall,
                    args={"writebacks": len(pending)})
        self._c_fences.add()
        if self.system.checker is not None:
            # Cross-shard sfence barrier: every controller this fence
            # waited on must agree the fence's durability contract
            # holds (strict shards: nothing pending for this core;
            # async-epoch shards: staleness debt within bound).
            self.system.checker.check_sfence(self.core_id)

    def persist(self, addr: int, size: int, critical: bool = False):
        """clwb + sfence convenience."""
        yield from self.clwb(addr, size, critical=critical)
        yield from self.sfence()


class NvmSystem:
    """The whole machine for one simulation run."""

    def __init__(self, config: SystemConfig, tracer: Optional[Tracer] = None,
                 injector=None):
        self.cfg = config.validate()
        self.sim = Simulator(config.scheduler or None)
        self.rng = DeterministicRng(config.seed)
        #: Unified observability: one registry + one tracer for every
        #: component.  The tracer starts disabled (near-zero overhead)
        #: unless an enabled one is injected (CLI ``--trace``).
        self.metrics = MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        capacity = config.memory.capacity_bytes
        self.nvm = FunctionalMemory(capacity)
        self.volatile = VolatileView(capacity)
        #: Shard address map (identity at ``shards=1``).
        self.router = ShardRouter.from_config(config)
        # Per-shard devices and write queues.  ``memory.channels`` is
        # per *controller* (as in real DDR-T/NVDIMM topologies), so a
        # sharded machine fronts ``shards x channels`` channels in
        # total — the added bandwidth/queue parallelism the shards
        # figure sweeps.  At shards=1 the single device gets exactly
        # the configured channels and the legacy scope names, so the
        # machine is bit-identical to the unsharded one.
        local_addr = None
        if config.shards > 1:
            local_addr = lambda addr: self.router.to_local(addr)[1]
        self.devices = [
            NvmDevice(self.sim, config.memory,
                      stats=self.metrics.scope(
                          self.scope_name("nvm", sid)),
                      shard_id=sid, local_addr=local_addr)
            for sid in range(config.shards)
        ]
        self.write_queues = [
            WriteQueue(self.sim, config.memory, self.devices[sid],
                       stats=self.metrics.scope(
                           self.scope_name("wq", sid)),
                       tracer=self.tracer)
            for sid in range(config.shards)
        ]
        #: Shard-0 aliases: the unsharded machine's public attribute
        #: surface (tests, oracles, and tooling address the singleton
        #: through these).
        self.device = self.devices[0]
        self.write_queue = self.write_queues[0]

        # Carve the NVM address space: heap | dedup shadow | metadata.
        shadow_lines = 1 << 14
        metadata_lines = MemoryController.METADATA_REGION_LINES
        shadow_base = capacity - (metadata_lines + shadow_lines) \
            * CACHE_LINE_BYTES
        heap_limit = shadow_base
        dedup_table = DedupTable(shadow_base=shadow_base,
                                 shadow_lines=shadow_lines)
        self.pipeline = build_pipeline(
            config, dedup_table=dedup_table,
            nvm_copy_line=self._copy_nvm_line)

        units = config.janus.scaled("bmo_units") * config.cores
        if config.janus.unlimited_resources:
            units = 1 << 16
        self.bmo_units = Resource(self.sim, capacity=units,
                                  name="bmo-units")
        self.executor = BmoExecutor(
            self.sim, self.pipeline, self.bmo_units,
            stats=self.metrics.scope("bmo"),
            pipeline_fraction=config.bmo_unit_pipeline_fraction,
            tracer=self.tracer)
        #: Per-shard pre-execution engines (empty unless janus mode).
        #: Every engine subscribes its IRB to the shared pipeline's
        #: invalidation hooks, so a metadata change on one shard
        #: invalidates stale pre-executed results on every shard
        #: (cross-shard invalidation).
        self.janus_engines: List[JanusEngine] = []
        if config.mode == "janus":
            for sid in range(config.shards):
                owns = None
                if config.shards > 1:
                    owns = (lambda addr, _sid=sid:
                            self.router.shard_of(addr) == _sid)
                self.janus_engines.append(JanusEngine(
                    self.sim, self.pipeline, self.executor,
                    config.janus, cores=config.cores,
                    metrics=self.metrics, tracer=self.tracer,
                    scope=self.scope_name("janus", sid),
                    irb_scope=self.scope_name("irb", sid),
                    owns=owns))
        self.janus: Optional[JanusEngine] = \
            self.janus_engines[0] if self.janus_engines else None
        #: What workload software binds to (``JanusInterface``): the
        #: single engine, or the sharded fan-out frontend.
        self.janus_frontend = None
        if self.janus_engines:
            self.janus_frontend = self.janus if config.shards == 1 \
                else ShardedJanusFrontend(self)
        #: Cross-shard write-ahead ordering for async-epoch flushers
        #: (``None`` everywhere else — the single-shard flusher is
        #: sequential, so ordering is free).  Must exist before the
        #: controllers build their policies.
        self.txn_coordinator = None
        if config.shards > 1 and config.mode == "async-epoch":
            from repro.bmo.policy import TxnOrderCoordinator
            self.txn_coordinator = TxnOrderCoordinator(self.sim)
        self.controllers = [MemoryController(self, sid)
                            for sid in range(config.shards)]
        self.controller = self.controllers[0]
        self.heap = NvmHeap(base=CACHE_LINE_BYTES,
                            size=heap_limit - CACHE_LINE_BYTES)
        #: Per-system PRE_ID allocator shared by every core's
        #: JanusInterface: pre_ids restart at 1 for each system, so
        #: snapshots and fuzz repros are reproducible across processes.
        self._pre_ids = itertools.count(1)
        self.cores = [Core(self, i) for i in range(config.cores)]
        self.stats = self.metrics.scope("system")
        #: Optional ``repro.validate.InvariantChecker``: wraps the
        #: pipeline commit point and audits cross-layer invariants
        #: (``repro run --check``).  Undo/redo logs self-register here.
        self.checker = None
        if config.check_invariants:
            from repro.validate.invariants import InvariantChecker
            self.checker = InvariantChecker(self).attach()
        #: Optional ``repro.faults.FaultInjector``: hooks into the
        #: device, the write queue, the Janus engine, and ``crash()``.
        self.injector = injector
        if injector is not None:
            injector.attach(self)

    # -- shard topology ------------------------------------------------------
    def scope_name(self, base: str, shard_id: int) -> str:
        """Metric scope for a per-shard component.

        The unsharded machine keeps the legacy names (``mc``, ``wq``,
        ``nvm``, ``janus``, ``irb``) so its metrics snapshot is
        byte-identical to the pre-sharding system; sharded machines
        suffix the shard id (``mc0``, ``mc1``, ...).
        """
        if self.cfg.shards == 1:
            return base
        return f"{base}{shard_id}"

    def controller_for(self, addr: int) -> "MemoryController":
        """The controller owning ``addr``'s line (shard routing)."""
        controllers = self.controllers
        if len(controllers) == 1:
            return controllers[0]
        return controllers[self.router.shard_of(addr)]

    def write_queue_for(self, addr: int) -> WriteQueue:
        """The write queue owning ``addr``'s line (shard routing)."""
        queues = self.write_queues
        if len(queues) == 1:
            return queues[0]
        return queues[self.router.shard_of(addr)]

    def _copy_nvm_line(self, src: int, dst: int) -> None:
        """Dedup relocation: move ciphertext between device lines.

        The stored bytes may carry media damage (stuck cells) that the
        source line's ECC code would correct on read — the code must
        travel with the ciphertext, because the raw copy bypasses the
        write path and no fresh code is minted for the shadow line.
        """
        self.nvm.write_line(dst, self.nvm.read_line(src))
        ecc = self.pipeline.by_name.get("ecc")
        if ecc is not None:
            code = ecc.codes.get(src)
            if code is not None:
                ecc.codes[dst] = code
            else:
                # Shadow lines are pooled; drop any stale code left by
                # a previous occupant.
                ecc.codes.pop(dst, None)

    # -- running -------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def run_programs(self, programs) -> float:
        """Run one generator program per core to completion.

        ``programs`` maps core index -> generator (or a list in core
        order).  Returns the simulation time when all complete.
        """
        if isinstance(programs, dict):
            items = programs.items()
        else:
            items = enumerate(programs)
        procs = []
        for core_id, gen in items:
            if core_id >= len(self.cores):
                raise SimulationError(
                    f"program for core {core_id} but system has "
                    f"{len(self.cores)} cores")
            procs.append(self.sim.process(gen, name=f"program{core_id}"))
        all_done = self.sim.all_of(procs)
        self.sim.run(stop_event=all_done)
        elapsed = self.sim.now
        # Clean shutdown: let every shard's scheduling policy seal any
        # relaxed state (async-epoch closes its open epoch) so the
        # drain below makes a completed run fully durable.
        for controller in self.controllers:
            controller.policy.quiesce()
        # Drain background work (device writes, ideal-mode BMOs,
        # epoch flushes) so functional state is complete, without
        # charging it to the measured program time — those operations
        # are off the critical path by construction.
        self.sim.run()
        for proc in procs:
            if proc._exc is not None:
                raise proc._exc
        if not all_done.triggered:
            raise SimulationError(
                "programs deadlocked: event heap drained with "
                "programs still blocked")
        return elapsed

    # -- crash / recovery support ----------------------------------------------
    def crash(self) -> dict:
        """Simulate a power failure right now.

        ADR drains the accepted write queue (that is its guarantee),
        the volatile view is lost, and the persisted state (NVM image
        + unreconstructable metadata, which commits at the persist
        point) is returned for recovery.
        """
        # Accepted-but-undrained entries are in the ADR domain: the
        # residual-energy flush completes their device writes.  The
        # event loop does NOT run further — the cores stop dead.
        if self.injector is not None:
            # Power-failure faults strike first: metadata corruption
            # lands before the snapshot, drop/tear fates are applied
            # per entry inside the flush itself.
            self.injector.on_power_failure()
        for queue in self.write_queues:
            queue.adr_flush()
        snapshot = {
            "nvm_lines": dict(self.nvm._lines),
            "metadata": self.pipeline.unreconstructable_metadata(),
        }
        # Relaxed scheduling policies contribute their durable
        # watermark (async-epoch's flushed-epoch register) so recovery
        # can demote transactions from torn epochs.  On the sharded
        # machine the per-shard watermarks are merged into the minimum
        # cross-shard consistent cut (see docs/sharding.md); at
        # shards=1 this is the single policy's dict, verbatim.
        from repro.bmo.policy import merge_crash_metadata
        scheduling = merge_crash_metadata(
            [controller.policy for controller in self.controllers],
            self.txn_coordinator)
        if scheduling is not None:
            snapshot["metadata"]["scheduling"] = scheduling
        self.volatile = VolatileView(self.cfg.memory.capacity_bytes)
        return snapshot

    def describe(self) -> Dict[str, str]:
        info = self.cfg.describe()
        info["serial_bmo_ns"] = f"{self.pipeline.serial_latency():.0f}"
        return info
