"""Units and conversion helpers.

All simulator time is kept in *nanoseconds* as floats.  The helpers
here exist so that calling code never hard-codes magic conversion
factors.
"""

#: One nanosecond — the base time unit of the simulator.
NS = 1.0

#: One microsecond in nanoseconds.
US = 1000.0

#: One millisecond in nanoseconds.
MS = 1_000_000.0

#: 1 GHz expressed as cycles per nanosecond.
GHZ = 1.0

#: Size of a cache line in bytes (the granularity at which BMOs operate).
CACHE_LINE_BYTES = 64

#: Binary kilobyte / megabyte / gigabyte.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def ns_to_cycles(ns: float, freq_ghz: float) -> float:
    """Convert a duration in nanoseconds to core cycles at ``freq_ghz``."""
    return ns * freq_ghz


def cycles_to_ns(cycles: float, freq_ghz: float) -> float:
    """Convert a cycle count at ``freq_ghz`` to nanoseconds."""
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return cycles / freq_ghz


def align_down(addr: int, granularity: int = CACHE_LINE_BYTES) -> int:
    """Round ``addr`` down to a multiple of ``granularity``."""
    return addr - (addr % granularity)


def align_up(addr: int, granularity: int = CACHE_LINE_BYTES) -> int:
    """Round ``addr`` up to a multiple of ``granularity``."""
    rem = addr % granularity
    return addr if rem == 0 else addr + (granularity - rem)


def line_span(addr: int, size: int, granularity: int = CACHE_LINE_BYTES):
    """Yield the aligned line addresses touched by ``[addr, addr + size)``.

    This is the decomposition performed by the Janus decoder when a
    pre-execution request covering an arbitrary byte range is split
    into cache-line-sized operations (paper §4.3.2, step 2).
    """
    if size <= 0:
        return
    first = align_down(addr, granularity)
    last = align_down(addr + size - 1, granularity)
    line = first
    while line <= last:
        yield line
        line += granularity
