"""Deterministic random-number generation.

Every stochastic choice in the simulator (workload keys, payload
bytes, dedup-duplicate injection, crash points) flows through a
:class:`DeterministicRng` so that a run is exactly reproducible from
its seed.  Independent streams are derived by name so that, e.g.,
adding an extra random draw in a workload does not perturb the crash
injector's stream.
"""

import hashlib
import random


class DeterministicRng:
    """A named hierarchy of seeded :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._root = random.Random(seed)

    @property
    def seed(self) -> int:
        """The root seed this hierarchy was created from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return an independent stream derived from ``(seed, name)``.

        The same ``(seed, name)`` pair always yields an identical
        stream, regardless of how many other streams were created.
        """
        digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def randbytes(self, n: int, stream: str = "bytes") -> bytes:
        """Draw ``n`` random bytes from the named stream (stateless)."""
        rnd = self.stream(stream)
        return bytes(rnd.getrandbits(8) for _ in range(n))

    def fork(self, name: str) -> "DeterministicRng":
        """Derive a child hierarchy, e.g. one per simulated core."""
        digest = hashlib.sha256(f"{self._seed}/{name}".encode()).digest()
        return DeterministicRng(int.from_bytes(digest[:8], "big"))
