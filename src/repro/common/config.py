"""System configuration mirroring Table 3 of the paper.

The configuration is a tree of frozen-ish dataclasses.  ``SystemConfig``
is the root object handed to :class:`repro.core.system.NvmSystem`; the
sub-configs are consumed by the corresponding subsystems.  All latency
fields are nanoseconds.

Paper defaults (Table 3):

* out-of-order core at 4 GHz; L1 64 KB, L2 2 MB
* counter cache 512 KB, Merkle-tree cache 512 KB
* pre-execution request queue 16 entries/core
* pre-execution operation queue 64 entries/core
* 4 BMO units per core, cache-line granularity
* intermediate result buffer 64 entries/core
* 4 GB PCM at 533 MHz
* BMO latencies: AES-128 40 ns, SHA-1 40 ns, MD5 321 ns
"""

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import ConfigError
from repro.common.units import CACHE_LINE_BYTES, KIB, MIB


class ShardingError(ConfigError):
    """Sharding parameters failed construction-time validation.

    Mirrors :class:`repro.faults.plan.FaultPlanError`: ``problems``
    holds one dict per defect (``{"field": name, "detail": message}``)
    and the aggregated message lists every problem, so a caller that
    got three knobs wrong learns all three at once instead of playing
    whack-a-mole.
    """

    def __init__(self, problems: List[Dict]):
        self.problems = list(problems)
        detail = "; ".join(f"{p['field']}: {p['detail']}"
                           for p in self.problems)
        super().__init__(
            f"invalid sharding config ({len(self.problems)} problem"
            f"{'s' if len(self.problems) != 1 else ''}): {detail}")


def _is_power_of_two(value: int) -> bool:
    return isinstance(value, int) and value > 0 \
        and value & (value - 1) == 0


def _quantize_ns_fields(cfg) -> None:
    """Snap integral ``*_ns`` latency fields to int at load time.

    The simulator clock is integer-nanosecond; latencies that are
    whole numbers of ns become ints here so scheduling never touches
    float arithmetic for them.  Sub-ns *rates* (``instruction_ns =
    0.25``) stay float — their products are quantized once per
    scheduled delay by the simulator.
    """
    for f in dataclasses.fields(cfg):
        if not f.name.endswith("_ns"):
            continue
        value = getattr(cfg, f.name)
        if type(value) is float and value.is_integer():
            setattr(cfg, f.name, int(value))


@dataclass
class CacheConfig:
    """On-chip cache hierarchy parameters (latency model, not tags)."""

    l1_size_bytes: int = 64 * KIB
    l1_hit_ns: float = 1.0
    l2_size_bytes: int = 2 * MIB
    l2_hit_ns: float = 5.0
    #: Latency for a dirty line to travel from the cache hierarchy to
    #: the memory controller on a ``clwb`` (paper §2.3: ~15 ns).
    writeback_ns: float = 15.0
    #: Counter cache (for counter-mode encryption reads).
    counter_cache_bytes: int = 512 * KIB
    counter_cache_hit_ns: float = 2.0
    #: Merkle-tree cache (integrity verification).
    merkle_cache_bytes: int = 512 * KIB
    merkle_cache_hit_ns: float = 2.0

    def validate(self) -> None:
        if self.l1_size_bytes <= 0 or self.l2_size_bytes <= 0:
            raise ConfigError("cache sizes must be positive")
        if self.writeback_ns < 0:
            raise ConfigError("writeback latency cannot be negative")


@dataclass
class MemoryConfig:
    """NVM device timing (4 GB PCM @533 MHz in the paper)."""

    capacity_bytes: int = 4 * 1024 * MIB
    #: Service time the channel is busy for one 64 B read.
    read_service_ns: float = 60.0
    #: Service time the channel is busy for one 64 B write (tWR-dominated).
    write_service_ns: float = 150.0
    #: Number of independent bank groups serving accesses in parallel
    #: (PCM devices hide their long tWR behind bank-level parallelism;
    #: 16 concurrently-writable banks keeps even 8 KB transactions
    #: BMO-bound rather than device-bound, as in the paper's device).
    channels: int = 16
    #: Write-queue entries (the persist domain under ADR).
    write_queue_entries: int = 128

    def validate(self) -> None:
        if self.capacity_bytes % CACHE_LINE_BYTES:
            raise ConfigError("capacity must be a multiple of the line size")
        if self.channels <= 0 or self.write_queue_entries <= 0:
            raise ConfigError("channels and write queue must be positive")


@dataclass
class BmoLatencies:
    """Per-sub-operation hardware latencies (paper Tables 1 and 3)."""

    #: AES-128 OTP generation (encryption sub-op E2).
    aes_ns: float = 40.0
    #: SHA-1 hash for one Merkle-tree node / MAC (integrity I1–I3, E4).
    sha1_ns: float = 40.0
    #: MD5 fingerprint of a 64 B line (dedup D1).
    md5_ns: float = 321.0
    #: CRC-32 fingerprint (lightweight dedup alternative, Fig. 12).
    crc32_ns: float = 80.0
    #: Dedup-table lookup (D2).
    dedup_lookup_ns: float = 10.0
    #: Address-mapping-table update (D3).
    remap_update_ns: float = 10.0
    #: Counter generation/increment (E1).
    counter_gen_ns: float = 2.0
    #: XOR of OTP with data (E3).
    xor_ns: float = 1.0
    #: Compression of one line (FPC/BDI class, Table 1: 5–30 ns).
    compression_ns: float = 20.0
    #: Wear-leveling remap (Start-Gap, Table 1: ~1 ns).
    wear_leveling_ns: float = 1.0
    #: Error-correction encode (ECP, Table 1: 0.4–3 ns).
    ecc_ns: float = 2.0

    def validate(self) -> None:
        for f in dataclasses.fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigError(f"latency {f.name} cannot be negative")


@dataclass
class DedupConfig:
    """Deduplication mechanism parameters."""

    #: Fraction of writes carrying a value that already exists in
    #: memory.  The workload generators inject duplicates at this rate
    #: (paper uses 0.5 as the main ratio, following NV-Dedup/DeWrite).
    target_ratio: float = 0.5
    #: Fingerprint algorithm: ``"md5"`` or ``"crc32"``.
    algorithm: str = "md5"
    #: Number of fingerprint-table entries.
    table_entries: int = 1 << 16

    def validate(self) -> None:
        if not 0.0 <= self.target_ratio <= 1.0:
            raise ConfigError("dedup ratio must be in [0, 1]")
        if self.algorithm not in ("md5", "crc32"):
            raise ConfigError(f"unknown dedup algorithm {self.algorithm!r}")
        if self.table_entries <= 0:
            raise ConfigError("dedup table must have entries")


@dataclass
class IntegrityConfig:
    """Bonsai-Merkle-tree integrity verification parameters."""

    #: Fan-out of the hash tree (8 in the paper's example).
    arity: int = 8
    #: Tree height (levels of hashing above the leaves).  9 levels for
    #: a 4 GB NVM with arity 8 — 9 x 40 ns = 360 ns per write.
    height: int = 9
    #: Fraction of upper-level updates absorbed by the Merkle cache.
    #: 0.0 means every level is recomputed on every write (paper
    #: default for writes: the full 360 ns is charged).
    cached_levels: int = 0
    #: Ablation knob: when True, a pre-executed Merkle path is
    #: invalidated (and the stale levels re-hashed on the critical
    #: path) whenever ANY concurrent write disturbed a sibling node.
    #: The paper's model — like real BMT engines, whose update queue
    #: and Merkle cache absorb upper-level churn off the critical
    #: path — does not charge this, so the default is False.  The
    #: committed tree is recomputed functionally either way; this
    #: flag changes only the charged latency.
    strict_sibling_invalidation: bool = False

    def validate(self) -> None:
        if self.arity < 2:
            raise ConfigError("merkle arity must be >= 2")
        if self.height < 1:
            raise ConfigError("merkle height must be >= 1")
        if not 0 <= self.cached_levels < self.height:
            raise ConfigError("cached_levels must be in [0, height)")


@dataclass
class JanusConfig:
    """Janus pre-execution hardware resources (Table 3)."""

    enabled: bool = True
    request_queue_entries: int = 16
    operation_queue_entries: int = 64
    irb_entries: int = 64
    bmo_units: int = 4
    #: Resource multiplier for the Fig. 14 sweep (1x, 2x, 4x).
    resource_scale: float = 1.0
    #: ``True`` removes all resource limits (Fig. 14 "Unlimited").
    unlimited_resources: bool = False
    #: Maximum lifetime of an IRB entry before the age register
    #: discards it (paper §4.6, "unused pre-execution result").
    irb_max_age_ns: float = 1_000_000.0

    def scaled(self, name: str) -> int:
        """Entry count for resource ``name`` after scaling."""
        base = getattr(self, name)
        if self.unlimited_resources:
            return 1 << 30
        return max(1, int(base * self.resource_scale))

    def validate(self) -> None:
        for name in ("request_queue_entries", "operation_queue_entries",
                     "irb_entries", "bmo_units"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.resource_scale <= 0:
            raise ConfigError("resource_scale must be positive")


@dataclass
class SchedulingConfig:
    """Relaxed write-path scheduling parameters.

    Consumed by the ``coalesced`` and ``async-epoch`` modes (see
    ``docs/scheduling-modes.md``); ignored by the strict modes.
    """

    #: ``async-epoch``: writebacks buffered before the epoch closes
    #: and its BMO/persist work is scheduled as one batch.
    epoch_writes: int = 32
    #: ``async-epoch``: how many closed-but-unflushed epochs may be
    #: outstanding before new writebacks stall (the staleness dial —
    #: bounds post-crash data loss to ``staleness_epochs + 1`` open/
    #: in-flight epochs of writes).
    staleness_epochs: int = 2
    #: ``async-epoch``: cost charged to the critical path for parking
    #: one writeback in the volatile epoch buffer.
    buffer_ns: float = 2.0

    def validate(self) -> None:
        if self.epoch_writes <= 0:
            raise ConfigError("epoch_writes must be positive")
        if self.staleness_epochs < 1:
            raise ConfigError("staleness_epochs must be >= 1")
        if self.buffer_ns < 0:
            raise ConfigError("buffer_ns cannot be negative")


@dataclass
class CoreConfig:
    """Simulated core parameters."""

    freq_ghz: float = 4.0
    #: Fixed per-instruction cost charged for bookkeeping compute
    #: between memory operations.
    instruction_ns: float = 0.25
    #: Per-line cost for the tail of a multi-line sequential access:
    #: hardware prefetching and memory-level parallelism overlap the
    #: misses of a streaming access, so only the first line pays the
    #: full hierarchy latency.
    stream_line_ns: float = 2.0

    def validate(self) -> None:
        if self.freq_ghz <= 0:
            raise ConfigError("core frequency must be positive")


@dataclass
class SystemConfig:
    """Root configuration for one simulated NVM system."""

    cores: int = 1
    #: Write-path scheduling mode: serialized | parallel | janus |
    #: ideal | coalesced | async-epoch (docs/scheduling-modes.md).
    mode: str = "janus"
    #: Memory-controller shards (power of two).  1 keeps the classic
    #: single-controller machine, bit-identical to the pre-sharding
    #: system; N > 1 interleaves line addresses across N controllers,
    #: each with its own write queue, NVM channel group, scheduling
    #: policy, and (in janus mode) IRB — see ``docs/sharding.md``.
    shards: int = 1
    #: Interleave granularity of the shard address map, in bytes
    #: (power of two, >= the cache-line size).  Consecutive
    #: ``shard_interleave_bytes`` stripes rotate across shards.
    shard_interleave_bytes: int = CACHE_LINE_BYTES
    core: CoreConfig = field(default_factory=CoreConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    bmo_latencies: BmoLatencies = field(default_factory=BmoLatencies)
    dedup: DedupConfig = field(default_factory=DedupConfig)
    integrity: IntegrityConfig = field(default_factory=IntegrityConfig)
    janus: JanusConfig = field(default_factory=JanusConfig)
    scheduling: SchedulingConfig = field(
        default_factory=SchedulingConfig)
    #: Which BMOs are active, in pipeline order.
    bmos: tuple = ("dedup", "encryption", "integrity")
    #: Apply metadata atomicity only to consistency-critical writes
    #: (paper §4.3, selective counter-atomicity) vs. every write.
    selective_metadata_atomicity: bool = True
    #: BMO units are pipelined: a sub-operation *occupies* its unit
    #: for this fraction of its latency (initiation interval), while
    #: the full latency is still charged to the dependent chain.
    #: 1.0 degenerates to fully-occupying units (an ablation).
    bmo_unit_pipeline_fraction: float = 0.05
    #: Attach :class:`repro.validate.InvariantChecker` and run the
    #: cross-layer invariant suite after every BMO-pipeline commit
    #: (CLI ``repro run --check``).  Functional-only: violations raise
    #: ``InvariantViolation``, timing is unaffected.
    check_invariants: bool = False
    #: Event-loop scheduler: ``"bucket"`` (calendar queue, default),
    #: ``"heap"`` (reference loop), or ``""`` to defer to the
    #: ``REPRO_SCHEDULER`` environment variable / the bucket default.
    scheduler: str = ""
    seed: int = 42

    MODES = ("serialized", "parallel", "janus", "ideal",
             "coalesced", "async-epoch")
    #: Modes whose sfence completion does not imply durability (the
    #: write may still sit in a volatile epoch buffer).
    RELAXED_MODES = ("async-epoch",)
    SCHEDULERS = ("", "bucket", "heap")

    def validate(self) -> "SystemConfig":
        """Check the whole tree; returns self for chaining."""
        if self.cores <= 0:
            raise ConfigError("need at least one core")
        if self.mode not in self.MODES:
            raise ConfigError(
                f"mode must be one of {self.MODES}, got {self.mode!r}")
        if self.scheduler not in self.SCHEDULERS:
            raise ConfigError(
                f"scheduler must be one of {self.SCHEDULERS}, "
                f"got {self.scheduler!r}")
        self._validate_sharding()
        _quantize_ns_fields(self.core)
        _quantize_ns_fields(self.cache)
        _quantize_ns_fields(self.memory)
        _quantize_ns_fields(self.bmo_latencies)
        _quantize_ns_fields(self.janus)
        _quantize_ns_fields(self.scheduling)
        known_bmos = {"dedup", "encryption", "integrity", "compression",
                      "wear_leveling", "ecc", "oram"}
        for name in self.bmos:
            if name not in known_bmos:
                raise ConfigError(f"unknown BMO {name!r}")
        if len(set(self.bmos)) != len(self.bmos):
            raise ConfigError("duplicate BMO in pipeline")
        if not 0.0 < self.bmo_unit_pipeline_fraction <= 1.0:
            raise ConfigError(
                "bmo_unit_pipeline_fraction must be in (0, 1]")
        self.core.validate()
        self.cache.validate()
        self.memory.validate()
        self.bmo_latencies.validate()
        self.dedup.validate()
        self.integrity.validate()
        self.janus.validate()
        self.scheduling.validate()
        return self

    def _validate_sharding(self) -> None:
        """Collect *every* sharding defect into one ShardingError."""
        problems: List[Dict] = []
        if not _is_power_of_two(self.shards):
            problems.append({
                "field": "shards",
                "detail": f"must be a power of two >= 1, "
                          f"got {self.shards!r}"})
        if not _is_power_of_two(self.shard_interleave_bytes):
            problems.append({
                "field": "shard_interleave_bytes",
                "detail": f"must be a power of two, "
                          f"got {self.shard_interleave_bytes!r}"})
        elif self.shard_interleave_bytes < CACHE_LINE_BYTES:
            problems.append({
                "field": "shard_interleave_bytes",
                "detail": f"must be >= the cache line "
                          f"({CACHE_LINE_BYTES} B), "
                          f"got {self.shard_interleave_bytes}"})
        if not problems and isinstance(self.shards, int) \
                and self.shards > 0:
            stripe = self.shard_interleave_bytes * self.shards
            if self.memory.capacity_bytes % stripe:
                problems.append({
                    "field": "shards",
                    "detail": f"capacity {self.memory.capacity_bytes} "
                              f"is not a multiple of the full stripe "
                              f"({stripe} B = interleave x shards), so "
                              f"coverage cannot balance"})
        if problems:
            raise ShardingError(problems)

    def replace(self, **kwargs) -> "SystemConfig":
        """Return a deep-ish copy with top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def describe(self) -> Dict[str, str]:
        """Human-readable key facts (printed by bench headers)."""
        return {
            "cores": str(self.cores),
            "mode": self.mode,
            "bmos": "+".join(self.bmos),
            "dedup": f"{self.dedup.algorithm}@{self.dedup.target_ratio}",
            "janus_units": str(self.janus.scaled("bmo_units")),
            "irb_entries": str(self.janus.scaled("irb_entries")),
        }


def default_config(**overrides) -> SystemConfig:
    """A validated paper-default configuration with overrides applied."""
    cfg = SystemConfig(**overrides)
    return cfg.validate()
