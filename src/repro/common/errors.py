"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an illegal state."""


class MemoryError_(ReproError):
    """An access touched unmapped or misaligned simulated memory."""


class IntegrityError(ReproError):
    """Integrity verification failed (Merkle root / MAC mismatch)."""


class CryptoError(ReproError):
    """Encryption or decryption was used inconsistently."""


class AllocationError(ReproError):
    """The NVM heap could not satisfy an allocation request."""


class RecoveryError(ReproError):
    """Post-crash recovery found persistent state it cannot repair."""


class MediaError(ReproError):
    """A fault in the NVM media surfaced to the architecture."""


class UncorrectableMediaError(MediaError):
    """ECC detected damage beyond its correction capability.

    Carries the line address (when known) so degraded-mode handling
    can poison exactly the failing line.
    """

    def __init__(self, message: str, line_addr=None):
        super().__init__(message)
        self.line_addr = line_addr


class InstrumentationError(ReproError):
    """The compiler pass was given malformed transaction IR."""


class RecoveryCrash(Exception):
    """A seeded crash point fired inside recovery or scrub.

    Deliberately NOT a :class:`ReproError`: recovery code treats
    ``ReproError`` subclasses as *rejections* of damaged state, and a
    simulated mid-recovery power failure must never be swallowed by
    those handlers — it has to unwind all the way to the harness,
    which then starts a second recovery over the interrupted image
    (the idempotence contract in ``docs/robustness.md``).
    """

    def __init__(self, message: str, step: int = 0, stage: str = ""):
        super().__init__(message)
        self.step = step
        self.stage = stage
