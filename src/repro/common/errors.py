"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an illegal state."""


class MemoryError_(ReproError):
    """An access touched unmapped or misaligned simulated memory."""


class IntegrityError(ReproError):
    """Integrity verification failed (Merkle root / MAC mismatch)."""


class CryptoError(ReproError):
    """Encryption or decryption was used inconsistently."""


class AllocationError(ReproError):
    """The NVM heap could not satisfy an allocation request."""


class RecoveryError(ReproError):
    """Post-crash recovery found persistent state it cannot repair."""


class InstrumentationError(ReproError):
    """The compiler pass was given malformed transaction IR."""
