"""Shared infrastructure: units, errors, configuration, deterministic RNG.

Everything in this package is dependency-free and used by every other
subpackage.  Latency values are plain floats in nanoseconds (see
:mod:`repro.common.units`), and every tunable of the simulated system
lives in the dataclasses of :mod:`repro.common.config`, which mirror
Table 3 of the paper.
"""

from repro.common.config import (
    BmoLatencies,
    CacheConfig,
    DedupConfig,
    JanusConfig,
    MemoryConfig,
    SystemConfig,
)
from repro.common.errors import (
    ConfigError,
    IntegrityError,
    ReproError,
    SimulationError,
)
from repro.common.rng import DeterministicRng
from repro.common.units import (
    CACHE_LINE_BYTES,
    GHZ,
    KIB,
    MIB,
    NS,
    US,
    cycles_to_ns,
    ns_to_cycles,
)

__all__ = [
    "BmoLatencies",
    "CacheConfig",
    "CACHE_LINE_BYTES",
    "ConfigError",
    "DedupConfig",
    "DeterministicRng",
    "GHZ",
    "IntegrityError",
    "JanusConfig",
    "KIB",
    "MemoryConfig",
    "MIB",
    "NS",
    "ReproError",
    "SimulationError",
    "SystemConfig",
    "US",
    "cycles_to_ns",
    "ns_to_cycles",
]
