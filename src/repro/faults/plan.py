"""Fault plans: declarative, seeded descriptions of what goes wrong.

A :class:`FaultSpec` names one fault — its *kind* (which hook site it
fires at), the Nth eligible event it triggers on, and the bit pattern
it applies.  A :class:`FaultPlan` is an ordered bag of specs plus the
seed used to derive any randomised choices, serialisable to a plain
dict so campaign reports embed exactly what was injected.

Kinds and their hook sites:

=====================  ====================================================
``media_write_flip``   Nth device write: flip ``bits`` in the stored line
                       (``sticky=True`` models a stuck-at cell that
                       re-applies on every later write to that line).
``media_read_transient``
                       Nth resilient read: the returned bytes are
                       corrupted once; the stored line is untouched, so
                       a bounded retry recovers.
``meta_merkle``        At power failure: corrupt one committed Merkle
                       leaf in the integrity BMO.
``meta_counter``       At power failure: bump one line's encryption
                       counter, breaking the MAC/decrypt chain.
``irb_corrupt``        Nth completed IRB entry: flip a bit in its
                       buffered data copy.
``irb_stale``          Nth completed IRB entry: perturb a pre-executed
                       result (counter / duplicate verdict) so the
                       entry is stale when consumed.
``wq_drop``            Power failure: the Nth ADR-flushed entry is
                       dropped (residual energy ran out).
``wq_tear``            Power failure: the Nth ADR-flushed entry lands
                       half-new / half-old (torn line).
``recovery_crash``     Nth instrumented recovery step: power fails
                       *again*, mid-rollback/mid-replay — the hook
                       raises :class:`~repro.common.errors.RecoveryCrash`.
``scrub_crash``        Nth instrumented scrub step (fetch / heal /
                       poison): power fails mid-scrub.
=====================  ====================================================

Every spec also carries an optional ``probability`` (an eligible
event fires only with this seeded probability) and ``line_range``
(a ``[lo, hi)`` address window restricting which lines the fault can
touch).  Plans are validated **at construction**: a negative
probability, an empty/unknown kind name, or two same-kind specs with
overlapping line ranges raise a structured
:class:`FaultPlanError` listing every problem at once, instead of
surfacing as a confusing mid-run failure.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng

FAULT_KINDS = (
    "media_write_flip",
    "media_read_transient",
    "meta_merkle",
    "meta_counter",
    "irb_corrupt",
    "irb_stale",
    "wq_drop",
    "wq_tear",
    "recovery_crash",
    "scrub_crash",
)


class FaultPlanError(ConfigError):
    """A fault plan failed construction-time validation.

    ``problems`` holds one dict per defect (``{"spec": index-or-None,
    "field": name, "detail": message}``) so harnesses and tests can
    assert on the exact failures instead of string-matching.
    """

    def __init__(self, problems: List[Dict]):
        self.problems = list(problems)
        detail = "; ".join(
            f"spec[{p['spec']}].{p['field']}: {p['detail']}"
            if p.get("spec") is not None
            else f"{p['field']}: {p['detail']}"
            for p in self.problems)
        super().__init__(
            f"invalid fault plan ({len(self.problems)} problem"
            f"{'s' if len(self.problems) != 1 else ''}): {detail}")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault."""

    kind: str
    #: Fire on the Nth eligible event at this spec's hook site
    #: (1-based).  Power-failure kinds ignore it except ``wq_*``,
    #: where it indexes the flushed entries.
    after_n: int = 1
    #: Bit offsets within the 512-bit line to flip / force.
    bits: Tuple[int, ...] = (0,)
    #: ``media_write_flip`` only: model a stuck-at cell — the fault
    #: re-applies on every subsequent write to the same line.
    sticky: bool = False
    #: For sticky faults: the value the cell is stuck at (0 or 1).
    stuck_value: int = 0
    #: Probability that an otherwise-eligible event actually fires
    #: (drawn from the injector's seeded rng; 1.0 = always).
    probability: float = 1.0
    #: Optional ``(lo, hi)`` address window: the fault only touches
    #: lines with ``lo <= addr < hi`` (event counting is unaffected).
    line_range: Optional[Tuple[int, int]] = None

    def problems(self) -> List[Dict]:
        """Every validation defect of this spec (empty when valid)."""
        out: List[Dict] = []
        if not self.kind:
            out.append({"field": "kind",
                        "detail": "kind name must not be empty"})
        elif self.kind not in FAULT_KINDS:
            out.append({"field": "kind",
                        "detail": f"unknown fault kind {self.kind!r}"})
        if self.after_n < 1:
            out.append({"field": "after_n",
                        "detail": "after_n is 1-based and must be >= 1"})
        if any(not 0 <= b < 512 for b in self.bits):
            out.append({"field": "bits",
                        "detail": "fault bits must be within a "
                                  "64-byte line"})
        if self.stuck_value not in (0, 1):
            out.append({"field": "stuck_value",
                        "detail": "stuck_value must be 0 or 1"})
        if not 0.0 <= self.probability <= 1.0:
            out.append({"field": "probability",
                        "detail": f"probability {self.probability!r} "
                                  f"outside [0, 1]"})
        if self.line_range is not None:
            lo, hi = self.line_range
            if lo < 0 or hi <= lo:
                out.append({"field": "line_range",
                            "detail": f"line_range ({lo}, {hi}) must "
                                      f"satisfy 0 <= lo < hi"})
        return out

    def validate(self) -> "FaultSpec":
        problems = self.problems()
        if problems:
            raise FaultPlanError([{**p, "spec": None}
                                  for p in problems])
        return self

    def to_dict(self) -> Dict:
        out = {
            "kind": self.kind,
            "after_n": self.after_n,
            "bits": list(self.bits),
            "sticky": self.sticky,
            "stuck_value": self.stuck_value,
        }
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.line_range is not None:
            out["line_range"] = list(self.line_range)
        return out


@dataclass
class FaultPlan:
    """An ordered set of fault specs plus the choice seed."""

    seed: int = 0
    specs: List[FaultSpec] = field(default_factory=list)

    def __post_init__(self):
        problems: List[Dict] = []
        for index, spec in enumerate(self.specs):
            problems.extend({**p, "spec": index}
                            for p in spec.problems())
        # Two same-kind specs with overlapping line ranges would race
        # for the same lines nondeterministically-looking (spec order
        # decides) — reject the ambiguity outright.
        ranged: Dict[str, List[Tuple[int, Tuple[int, int]]]] = {}
        for index, spec in enumerate(self.specs):
            if spec.line_range is not None:
                ranged.setdefault(spec.kind, []).append(
                    (index, spec.line_range))
        for kind, entries in ranged.items():
            entries.sort(key=lambda e: e[1])
            for (i_a, (lo_a, hi_a)), (i_b, (lo_b, hi_b)) in zip(
                    entries, entries[1:]):
                if lo_b < hi_a:
                    problems.append({
                        "spec": i_b, "field": "line_range",
                        "detail": f"overlaps spec[{i_a}] of kind "
                                  f"{kind!r}: [{lo_a}, {hi_a}) vs "
                                  f"[{lo_b}, {hi_b})"})
        if problems:
            raise FaultPlanError(problems)

    def by_kind(self, kind: str) -> List[FaultSpec]:
        return [s for s in self.specs if s.kind == kind]

    def to_dict(self) -> Dict:
        return {"seed": self.seed,
                "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(seed=data.get("seed", 0),
                   specs=[FaultSpec(kind=s["kind"],
                                    after_n=s.get("after_n", 1),
                                    bits=tuple(s.get("bits", (0,))),
                                    sticky=s.get("sticky", False),
                                    stuck_value=s.get("stuck_value", 0),
                                    probability=s.get("probability",
                                                      1.0),
                                    line_range=tuple(s["line_range"])
                                    if s.get("line_range") else None)
                          for s in data.get("specs", ())])

    @classmethod
    def seeded(cls, seed: int, kinds: Sequence[str],
               max_event: int = 8) -> "FaultPlan":
        """Derive one spec per requested kind, deterministically.

        ``max_event`` bounds the Nth-event trigger so short runs still
        hit every fault.  Identical (seed, kinds, max_event) produce
        an identical plan — the campaign determinism guarantee rests
        on this.
        """
        rng = DeterministicRng(seed).stream("fault-plan")
        specs = []
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigError(f"unknown fault kind {kind!r}")
            after_n = 1 + rng.randrange(max_event)
            if kind in ("media_write_flip", "media_read_transient",
                        "irb_corrupt"):
                # Single-bit faults stay ECC-correctable; campaigns
                # add explicit multi-bit specs for the poison path.
                bits = (rng.randrange(512),)
            else:
                bits = (rng.randrange(512),)
            specs.append(FaultSpec(kind=kind, after_n=after_n,
                                   bits=bits))
        return cls(seed=seed, specs=specs)
