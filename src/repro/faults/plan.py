"""Fault plans: declarative, seeded descriptions of what goes wrong.

A :class:`FaultSpec` names one fault — its *kind* (which hook site it
fires at), the Nth eligible event it triggers on, and the bit pattern
it applies.  A :class:`FaultPlan` is an ordered bag of specs plus the
seed used to derive any randomised choices, serialisable to a plain
dict so campaign reports embed exactly what was injected.

Kinds and their hook sites:

=====================  ====================================================
``media_write_flip``   Nth device write: flip ``bits`` in the stored line
                       (``sticky=True`` models a stuck-at cell that
                       re-applies on every later write to that line).
``media_read_transient``
                       Nth resilient read: the returned bytes are
                       corrupted once; the stored line is untouched, so
                       a bounded retry recovers.
``meta_merkle``        At power failure: corrupt one committed Merkle
                       leaf in the integrity BMO.
``meta_counter``       At power failure: bump one line's encryption
                       counter, breaking the MAC/decrypt chain.
``irb_corrupt``        Nth completed IRB entry: flip a bit in its
                       buffered data copy.
``irb_stale``          Nth completed IRB entry: perturb a pre-executed
                       result (counter / duplicate verdict) so the
                       entry is stale when consumed.
``wq_drop``            Power failure: the Nth ADR-flushed entry is
                       dropped (residual energy ran out).
``wq_tear``            Power failure: the Nth ADR-flushed entry lands
                       half-new / half-old (torn line).
=====================  ====================================================
"""

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng

FAULT_KINDS = (
    "media_write_flip",
    "media_read_transient",
    "meta_merkle",
    "meta_counter",
    "irb_corrupt",
    "irb_stale",
    "wq_drop",
    "wq_tear",
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault."""

    kind: str
    #: Fire on the Nth eligible event at this spec's hook site
    #: (1-based).  Power-failure kinds ignore it except ``wq_*``,
    #: where it indexes the flushed entries.
    after_n: int = 1
    #: Bit offsets within the 512-bit line to flip / force.
    bits: Tuple[int, ...] = (0,)
    #: ``media_write_flip`` only: model a stuck-at cell — the fault
    #: re-applies on every subsequent write to the same line.
    sticky: bool = False
    #: For sticky faults: the value the cell is stuck at (0 or 1).
    stuck_value: int = 0

    def validate(self) -> "FaultSpec":
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.after_n < 1:
            raise ConfigError("after_n is 1-based and must be >= 1")
        if any(not 0 <= b < 512 for b in self.bits):
            raise ConfigError("fault bits must be within a 64-byte line")
        if self.stuck_value not in (0, 1):
            raise ConfigError("stuck_value must be 0 or 1")
        return self

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "after_n": self.after_n,
            "bits": list(self.bits),
            "sticky": self.sticky,
            "stuck_value": self.stuck_value,
        }


@dataclass
class FaultPlan:
    """An ordered set of fault specs plus the choice seed."""

    seed: int = 0
    specs: List[FaultSpec] = field(default_factory=list)

    def __post_init__(self):
        for spec in self.specs:
            spec.validate()

    def by_kind(self, kind: str) -> List[FaultSpec]:
        return [s for s in self.specs if s.kind == kind]

    def to_dict(self) -> Dict:
        return {"seed": self.seed,
                "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(seed=data.get("seed", 0),
                   specs=[FaultSpec(kind=s["kind"],
                                    after_n=s.get("after_n", 1),
                                    bits=tuple(s.get("bits", (0,))),
                                    sticky=s.get("sticky", False),
                                    stuck_value=s.get("stuck_value", 0))
                          for s in data.get("specs", ())])

    @classmethod
    def seeded(cls, seed: int, kinds: Sequence[str],
               max_event: int = 8) -> "FaultPlan":
        """Derive one spec per requested kind, deterministically.

        ``max_event`` bounds the Nth-event trigger so short runs still
        hit every fault.  Identical (seed, kinds, max_event) produce
        an identical plan — the campaign determinism guarantee rests
        on this.
        """
        rng = DeterministicRng(seed).stream("fault-plan")
        specs = []
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigError(f"unknown fault kind {kind!r}")
            after_n = 1 + rng.randrange(max_event)
            if kind in ("media_write_flip", "media_read_transient",
                        "irb_corrupt"):
                # Single-bit faults stay ECC-correctable; campaigns
                # add explicit multi-bit specs for the poison path.
                bits = (rng.randrange(512),)
            else:
                bits = (rng.randrange(512),)
            specs.append(FaultSpec(kind=kind, after_n=after_n,
                                   bits=bits))
        return cls(seed=seed, specs=specs)
